"""The fair-coin baseline: the optimal oblivious protocol.

Theorem 4.3 proves that among algorithms that never look at their
inputs, assigning each bin probability 1/2 is optimal for **every**
player count and capacity -- the paper's uniformity result.  This
module packages that protocol for the comparison experiments.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.model.algorithms import ObliviousCoin
from repro.model.system import DistributedSystem
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["fair_coin_profile", "fair_coin_system", "fair_coin_value"]


def fair_coin_profile(n: int) -> List[ObliviousCoin]:
    """The optimal oblivious profile: ``n`` independent fair coins."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [ObliviousCoin(Fraction(1, 2)) for _ in range(n)]


def fair_coin_system(n: int, capacity: RationalLike) -> DistributedSystem:
    """A ready-to-run system of ``n`` fair coins with the given capacity."""
    return DistributedSystem(fair_coin_profile(n), as_fraction(capacity))


def fair_coin_value(n: int, capacity: RationalLike) -> Fraction:
    """The exact winning probability of the fair-coin protocol
    (Theorem 4.3's closed form)."""
    return optimal_oblivious_winning_probability(as_fraction(capacity), n)
