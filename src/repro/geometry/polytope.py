"""Generic polytopes in halfspace (H-) representation with exact data.

A *polyhedron* is the solution set of finitely many linear inequalities
``a . x <= b``; a bounded polyhedron is a *polytope* (paper, Section
2.1).  The concrete polytopes used by the paper are special (orthogonal
simplices, boxes and their intersections, which have their own modules),
but a generic representation is still valuable: it gives a single
membership test that the Monte Carlo validator and the property-based
test-suite can trust, independent of the specialised volume formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["HalfSpace", "Polytope"]


@dataclass(frozen=True)
class HalfSpace:
    """The closed halfspace ``sum_i normal[i] * x[i] <= offset``."""

    normal: Tuple[Fraction, ...]
    offset: Fraction

    @classmethod
    def of(
        cls, normal: Sequence[RationalLike], offset: RationalLike
    ) -> "HalfSpace":
        """Construct with coercion of all entries to exact rationals."""
        return cls(tuple(as_fraction(c) for c in normal), as_fraction(offset))

    @property
    def dimension(self) -> int:
        return len(self.normal)

    def contains(self, point: Sequence[RationalLike]) -> bool:
        """Exact membership test for *point*."""
        if len(point) != len(self.normal):
            raise ValueError(
                f"dimension mismatch: halfspace is {len(self.normal)}-d, "
                f"point is {len(point)}-d"
            )
        total = Fraction(0)
        for coeff, coord in zip(self.normal, point):
            total += coeff * as_fraction(coord)
        return total <= self.offset

    def contains_float(self, point: Sequence[float]) -> bool:
        """Float membership test (fast path for Monte Carlo sampling)."""
        total = 0.0
        for coeff, coord in zip(self.normal, point):
            total += float(coeff) * coord
        return total <= float(self.offset)

    def slack(self, point: Sequence[RationalLike]) -> Fraction:
        """``offset - normal . point`` (>= 0 inside, < 0 outside)."""
        total = Fraction(0)
        for coeff, coord in zip(self.normal, point):
            total += coeff * as_fraction(coord)
        return self.offset - total

    def __str__(self) -> str:
        terms = " + ".join(f"{c}*x{i}" for i, c in enumerate(self.normal) if c != 0)
        return f"{terms or '0'} <= {self.offset}"


class Polytope:
    """A finite intersection of closed halfspaces in fixed dimension.

    The class does not attempt general vertex enumeration or volume
    computation -- the paper only ever needs those for the structured
    polytopes of :mod:`repro.geometry.volume`.  What it does provide:

    * exact and float membership tests,
    * intersection with more halfspaces or another polytope,
    * an axis-aligned bounding box when one is derivable from explicit
      coordinate bounds among the constraints (enough for the Monte
      Carlo validator, which always starts from a box-constrained set).
    """

    def __init__(self, dimension: int, halfspaces: Iterable[HalfSpace] = ()):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self._dimension = dimension
        self._halfspaces: List[HalfSpace] = []
        for hs in halfspaces:
            self.add(hs)

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def halfspaces(self) -> Tuple[HalfSpace, ...]:
        return tuple(self._halfspaces)

    def add(self, halfspace: HalfSpace) -> None:
        """Add one constraint (validated against the polytope dimension)."""
        if halfspace.dimension != self._dimension:
            raise ValueError(
                f"halfspace dimension {halfspace.dimension} != "
                f"polytope dimension {self._dimension}"
            )
        self._halfspaces.append(halfspace)

    def add_inequality(
        self, normal: Sequence[RationalLike], offset: RationalLike
    ) -> None:
        """Convenience: add ``normal . x <= offset``."""
        self.add(HalfSpace.of(normal, offset))

    def add_lower_bound(self, axis: int, bound: RationalLike) -> None:
        """Add ``x[axis] >= bound`` (stored as ``-x[axis] <= -bound``)."""
        normal = [Fraction(0)] * self._dimension
        normal[axis] = Fraction(-1)
        self.add(HalfSpace(tuple(normal), -as_fraction(bound)))

    def add_upper_bound(self, axis: int, bound: RationalLike) -> None:
        """Add ``x[axis] <= bound``."""
        normal = [Fraction(0)] * self._dimension
        normal[axis] = Fraction(1)
        self.add(HalfSpace(tuple(normal), as_fraction(bound)))

    def contains(self, point: Sequence[RationalLike]) -> bool:
        """Exact membership: inside every halfspace."""
        pt = [as_fraction(c) for c in point]
        return all(hs.contains(pt) for hs in self._halfspaces)

    def contains_float(self, point: Sequence[float]) -> bool:
        """Float membership test for sampling loops."""
        return all(hs.contains_float(point) for hs in self._halfspaces)

    def intersect(self, other: "Polytope") -> "Polytope":
        """The intersection of two polytopes (same dimension)."""
        if other.dimension != self._dimension:
            raise ValueError(
                f"cannot intersect {self._dimension}-d with {other.dimension}-d"
            )
        return Polytope(
            self._dimension, list(self._halfspaces) + list(other._halfspaces)
        )

    def coordinate_bounds(self) -> List[Tuple[Fraction, Fraction]]:
        """Per-axis ``(lower, upper)`` bounds derivable from single-variable
        constraints.

        Raises :class:`ValueError` if some axis has no explicit upper or
        lower bound among the halfspaces -- in that case the polytope
        may be unbounded and Monte Carlo sampling has no box to draw
        from.  (Constraints mentioning several variables are ignored
        here; they can only shrink the set further, which is fine for a
        bounding box.)
        """
        lows: List[Fraction] = [None] * self._dimension  # type: ignore[list-item]
        highs: List[Fraction] = [None] * self._dimension  # type: ignore[list-item]
        for hs in self._halfspaces:
            support = [i for i, c in enumerate(hs.normal) if c != 0]
            if len(support) != 1:
                continue
            axis = support[0]
            coeff = hs.normal[axis]
            bound = hs.offset / coeff
            if coeff > 0:
                if highs[axis] is None or bound < highs[axis]:
                    highs[axis] = bound
            else:
                if lows[axis] is None or bound > lows[axis]:
                    lows[axis] = bound
        missing = [
            i
            for i in range(self._dimension)
            if lows[i] is None or highs[i] is None
        ]
        if missing:
            raise ValueError(
                f"axes {missing} lack explicit bounds; bounding box unknown"
            )
        return list(zip(lows, highs))

    def __repr__(self) -> str:
        return (
            f"Polytope(dim={self._dimension}, "
            f"constraints={len(self._halfspaces)})"
        )
