"""The orthogonal simplex ``Sigma^(m)(sigma)`` of the paper (Section 2.1).

``Sigma^(m)(sigma) = { x in R^m_+ : sum_l x_l / sigma_l <= 1 }`` -- the
corner simplex in the positive orthant whose orthogonal sides have
lengths ``sigma_1 ... sigma_m``.  Lemma 2.1(1) gives its volume as
``(1/m!) * prod sigma_l``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.geometry.polytope import HalfSpace, Polytope
from repro.symbolic.rational import RationalLike, as_fraction, factorial

__all__ = ["OrthogonalSimplex"]


class OrthogonalSimplex:
    """The simplex ``{ x >= 0 : sum x_l / sigma_l <= 1 }``.

    All side lengths must be strictly positive, matching the paper's
    hypothesis ``0 < sigma_l < infinity``.
    """

    def __init__(self, sides: Sequence[RationalLike]):
        sigma = [as_fraction(s) for s in sides]
        if len(sigma) < 1:
            raise ValueError("a simplex needs at least one side")
        for i, s in enumerate(sigma):
            if s <= 0:
                raise ValueError(f"side {i} must be positive, got {s}")
        self._sides: Tuple[Fraction, ...] = tuple(sigma)

    @classmethod
    def regular(cls, dimension: int, side: RationalLike = 1) -> "OrthogonalSimplex":
        """The simplex with all sides equal (e.g. ``sum x_l <= t`` scaled)."""
        return cls([as_fraction(side)] * dimension)

    @property
    def sides(self) -> Tuple[Fraction, ...]:
        return self._sides

    @property
    def dimension(self) -> int:
        return len(self._sides)

    def volume(self) -> Fraction:
        """Lemma 2.1(1): ``(1/m!) * prod_l sigma_l``."""
        product = Fraction(1)
        for s in self._sides:
            product *= s
        return product / factorial(self.dimension)

    def contains(self, point: Sequence[RationalLike]) -> bool:
        """Exact membership: non-negative coordinates with weighted sum <= 1."""
        if len(point) != self.dimension:
            raise ValueError(
                f"point dimension {len(point)} != simplex dimension {self.dimension}"
            )
        total = Fraction(0)
        for coord, side in zip(point, self._sides):
            c = as_fraction(coord)
            if c < 0:
                return False
            total += c / side
        return total <= 1

    def vertices(self) -> List[Tuple[Fraction, ...]]:
        """The ``m + 1`` vertices: the origin and one apex per axis."""
        m = self.dimension
        origin = tuple(Fraction(0) for _ in range(m))
        verts = [origin]
        for axis, side in enumerate(self._sides):
            v = [Fraction(0)] * m
            v[axis] = side
            verts.append(tuple(v))
        return verts

    def as_polytope(self) -> Polytope:
        """H-representation: ``x_l >= 0`` for all l plus the diagonal face."""
        m = self.dimension
        poly = Polytope(m)
        for axis in range(m):
            poly.add_lower_bound(axis, 0)
            # Explicit per-axis upper bound x_l <= sigma_l; implied by the
            # diagonal face but required for coordinate_bounds().
            poly.add_upper_bound(axis, self._sides[axis])
        poly.add(
            HalfSpace(tuple(Fraction(1) / s for s in self._sides), Fraction(1))
        )
        return poly

    def scaled(self, ratio: RationalLike) -> "OrthogonalSimplex":
        """Similar simplex with every side multiplied by *ratio* (> 0).

        Used by Lemma 2.3: the corner cut off above ``x_l = pi_l`` is
        similar to the original with ratio ``1 - sum pi_l / sigma_l``.
        """
        r = as_fraction(ratio)
        if r <= 0:
            raise ValueError(f"similarity ratio must be positive, got {r}")
        return OrthogonalSimplex([s * r for s in self._sides])

    def __repr__(self) -> str:
        return f"OrthogonalSimplex(sides={[str(s) for s in self._sides]})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrthogonalSimplex):
            return NotImplemented
        return self._sides == other._sides

    def __hash__(self) -> int:
        return hash(self._sides)
