"""Deterministic random-stream management.

Every stochastic component in the package draws from a
:class:`numpy.random.Generator`.  :class:`SeedSequenceFactory` hands out
independent, named child streams derived from one root seed, so:

* re-running an experiment with the same root seed reproduces it bit
  for bit;
* adding a new consumer does not perturb the streams of existing ones
  (streams are keyed by name, not by creation order).
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

__all__ = ["SeedSequenceFactory"]


class SeedSequenceFactory:
    """Hands out named, independent random generators from one root seed."""

    def __init__(self, root_seed: Optional[int] = None):
        self._root_seed = root_seed
        self._issued: Dict[str, int] = {}

    @property
    def root_seed(self) -> Optional[int]:
        return self._root_seed

    def generator(self, name: str) -> np.random.Generator:
        """A generator for the stream *name*.

        The stream key is derived by hashing the name, so the same
        (root seed, name) pair always yields the same stream regardless
        of how many other streams were requested before it.  Requesting
        the same name twice returns a *fresh* generator over the same
        stream -- callers that need continuation should hold on to the
        generator object.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        key = zlib.crc32(name.encode("utf-8"))
        self._issued[name] = self._issued.get(name, 0) + 1
        if self._root_seed is None:
            # Non-reproducible mode: fall back to OS entropy but still
            # separate streams by name.
            return np.random.default_rng(
                np.random.SeedSequence().spawn(1)[0].entropy ^ key
            )
        seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=(key,))
        return np.random.default_rng(seq)

    def issued_streams(self) -> Dict[str, int]:
        """How many times each named stream was requested (for audits)."""
        return dict(self._issued)

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self._root_seed})"
