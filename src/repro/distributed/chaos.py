"""Deterministic network-fault injection at the frame layer.

The same :class:`~repro.simulation.faulttolerance.FaultPlan` that
schedules compute faults (crash/hang/slow/corrupt) inside the shard
worker also schedules the network kinds -- keyed by the identical
``(stream, shard, attempt)`` triple, looked up through
:meth:`~repro.simulation.faulttolerance.FaultPlan.network_fault` so
each layer sees only its own kinds.  The injection point is the one
place a lost message can change what the coordinator observes: the
worker's delivery of a shard **summary** frame.

========== ==============================================================
``drop``   the summary frame is silently discarded; the lease expires
           and the coordinator reassigns the shard
``delay``  the worker sleeps ``seconds`` before sending (late summaries
           race lease expiry; either arrival order yields the same
           result because the stream, not the schedule, is the
           randomness)
``partition`` the connection is severed instead of sending; the worker
           reconnects and the shard is reassigned
``dup``    the summary frame is sent twice; the coordinator accepts the
           first valid copy and counts the second as a duplicate
========== ==============================================================

Because faults are plan-driven and keyed deterministically, a chaos
run is exactly reproducible: the same plan severs the same connection
at the same shard's same attempt every time.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.errors import ValidationError
from repro.simulation.faulttolerance import (
    ALL_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.distributed.protocol import write_frame

__all__ = [
    "DELIVERED",
    "DROPPED",
    "PARTITIONED",
    "deliver_with_chaos",
    "parse_chaos_spec",
    "parse_chaos_specs",
]

#: Delivery outcomes reported by :func:`deliver_with_chaos`.
DELIVERED = "delivered"
DROPPED = "dropped"
PARTITIONED = "partitioned"

#: Kinds that take a duration operand in a CLI chaos spec.
_TIMED_KINDS = ("hang", "slow", "delay")


async def deliver_with_chaos(
    writer: asyncio.StreamWriter,
    payload: Dict,
    spec: Optional[FaultSpec],
    timeout: Optional[float] = None,
) -> str:
    """Deliver one summary frame, applying *spec* if present.

    Returns :data:`DELIVERED`, :data:`DROPPED` (frame discarded;
    the caller proceeds as if sent) or :data:`PARTITIONED` (transport
    severed; the caller must reconnect).  A ``dup`` delivers twice --
    still :data:`DELIVERED` from the worker's point of view.
    """
    if spec is None:
        await write_frame(writer, payload, timeout=timeout)
        return DELIVERED
    if spec.kind == "drop":
        return DROPPED
    if spec.kind == "partition":
        transport = writer.transport
        if transport is not None:
            transport.abort()
        return PARTITIONED
    if spec.kind == "delay":
        await asyncio.sleep(spec.seconds)
        await write_frame(writer, payload, timeout=timeout)
        return DELIVERED
    if spec.kind == "dup":
        await write_frame(writer, payload, timeout=timeout)
        await write_frame(writer, payload, timeout=timeout)
        return DELIVERED
    # compute kinds never reach this layer (network_fault filters
    # them); a new kind added without a handler should fail loudly
    raise ValidationError(
        f"no frame-layer handler for fault kind {spec.kind!r}"
    )


def parse_chaos_spec(text: str) -> tuple:
    """Parse one CLI chaos spec ``KIND:SHARD[:SECONDS]``.

    ``KIND`` is any fault kind (compute or network); ``SHARD`` is the
    target shard index; ``SECONDS`` is required for the timed kinds
    (hang/slow/delay) and forbidden otherwise.  The fault always
    targets attempt 0 -- chaos mode exercises first-attempt failures
    and the recovery machinery they trigger.

    Returns ``(kind, shard, seconds)``.
    """
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValidationError(
            f"chaos spec {text!r} is not KIND:SHARD[:SECONDS]"
        )
    kind = parts[0]
    if kind not in ALL_FAULT_KINDS:
        raise ValidationError(
            f"chaos spec {text!r}: unknown kind {kind!r} (expected one "
            f"of {ALL_FAULT_KINDS})"
        )
    try:
        shard = int(parts[1])
    except ValueError:
        raise ValidationError(
            f"chaos spec {text!r}: shard must be an integer"
        ) from None
    if shard < 0:
        raise ValidationError(
            f"chaos spec {text!r}: shard must be >= 0"
        )
    seconds = 0.0
    if len(parts) == 3:
        if kind not in _TIMED_KINDS:
            raise ValidationError(
                f"chaos spec {text!r}: {kind!r} takes no duration"
            )
        try:
            seconds = float(parts[2])
        except ValueError:
            raise ValidationError(
                f"chaos spec {text!r}: seconds must be a number"
            ) from None
        if seconds < 0:
            raise ValidationError(
                f"chaos spec {text!r}: seconds must be >= 0"
            )
    elif kind in _TIMED_KINDS:
        raise ValidationError(
            f"chaos spec {text!r}: {kind!r} needs KIND:SHARD:SECONDS"
        )
    return kind, shard, seconds


def parse_chaos_specs(specs) -> Optional[FaultPlan]:
    """Build one :class:`FaultPlan` from CLI ``--chaos`` occurrences.

    Specs use the ``None`` stream wildcard (matching the CLI's
    existing ``--chaos-crash`` convention); duplicate ``(shard,
    attempt)`` targets are rejected rather than silently last-wins.
    """
    if not specs:
        return None
    faults = {}
    for text in specs:
        kind, shard, seconds = parse_chaos_spec(text)
        key = (None, shard, 0)
        if key in faults:
            raise ValidationError(
                f"chaos spec {text!r} targets shard {shard} attempt 0 "
                "twice"
            )
        faults[key] = FaultSpec(kind, seconds=seconds)
    return FaultPlan(faults)
