"""Exact distributions of sums of independent uniforms (Section 2.2).

All core functions return exact :class:`fractions.Fraction` values.
The results implemented:

* **Lemma 2.4** -- for independent ``x_i ~ U[0, pi_i]``,

  ``F(t) = (1 / (m! prod pi_l)) * sum_{I : sum_{l in I} pi_l < t}
            (-1)^|I| (t - sum_{l in I} pi_l)^m``

* **Lemma 2.5** -- the density of the same sum (this answers Rota's
  research problem on "a nice formula for the density of n independent,
  uniformly distributed random variables").

* **Corollary 2.6** -- the Irwin-Hall CDF (all ``pi_i = 1``).

* **Lemma 2.7** -- for ``x_i ~ U[pi_i, 1]``,

  ``F(t) = 1 - (1 / (m! prod (1 - pi_l))) * sum_{I : |I| < m - t + sum pi_l}
             (-1)^|I| (m - t - |I| + sum_{l in I} pi_l)^m``

* The **joint probabilities** that Theorem 5.1 multiplies together:
  ``P(sum x_i <= t  and  every x_i <= alpha_i)`` and
  ``P(sum x_i <= t  and  every x_i >= alpha_i)`` for ``x_i ~ U[0, 1]``
  (i.e. the un-normalised numerators, where the paper's conditional
  probabilities have been multiplied back by ``P(y = b)``).

Boundary conventions (explicit, never left to the inclusion-exclusion
sum collapsing by accident; each is pinned by a dedicated test):

* the empty sum (``m = 0``) is the constant 0, so its CDF is 1 for
  ``t >= 0`` and 0 below, and it has no density;
* ``t <= 0`` gives CDF 0 and ``t >= sum(uppers)`` gives CDF 1 (the
  distribution is continuous, so the boundary points carry no mass
  and either closed/open convention yields the same value);
* a **zero-width interval** ``uppers[i] = 0`` is the constant 0 --
  it is dropped from the sum rather than rejected, so degenerate
  grids evaluate without special-casing by the caller.  Negative
  widths raise :class:`~repro.errors.ValidationError`.

The ``*_fast`` variants evaluate the same alternating series in
compensated float arithmetic with a running error bound (see
:mod:`repro.validation.fastpath`): they return the float when the
bound certifies it and transparently fall back to the exact
``Fraction`` path otherwise, counting the fallback in the metrics.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import combinations
from typing import List, Sequence

from repro.cache import memoized_kernel
from repro.errors import ValidationError
from repro.probability.inclusion_exclusion import alternating_symmetric_sum
from repro.symbolic.rational import (
    RationalLike,
    as_fraction,
    binomial,
    factorial,
)
from repro.validation.contracts import check_probability
from repro.validation.fastpath import (
    EPS,
    CertifiedFloat,
    certified_alternating_sum,
    resolve_guarded,
)

#: Sentinel for inputs the float tier cannot even represent: routed
#: through :func:`resolve_guarded` so the fallback policy and the
#: ``fastpath.fallbacks`` metrics apply uniformly.
_UNCERTIFIABLE = CertifiedFloat(
    value=math.nan, error_bound=math.inf, certified=False, terms=0
)

__all__ = [
    "IrwinHallFastContext",
    "SumUniformFastContext",
    "irwin_hall_cdf",
    "irwin_hall_cdf_fast",
    "irwin_hall_pdf",
    "joint_sum_below_and_inside_boxes",
    "joint_sum_below_and_inside_high",
    "joint_sum_below_and_inside_low",
    "sum_uniform_cdf",
    "sum_uniform_cdf_fast",
    "sum_uniform_pdf",
    "sum_uniform_tail_cdf",
]


def _validated_positive(
    values: Sequence[RationalLike], name: str
) -> List[Fraction]:
    out = [as_fraction(v) for v in values]
    for i, v in enumerate(out):
        if v <= 0:
            raise ValidationError(f"{name}[{i}] must be positive, got {v}")
    return out


def _validated_widths(
    values: Sequence[RationalLike], name: str
) -> List[Fraction]:
    """Interval widths: non-negative, with zero-width (constant 0)
    entries dropped -- adding the constant 0 never changes a sum."""
    out = [as_fraction(v) for v in values]
    for i, v in enumerate(out):
        if v < 0:
            raise ValidationError(
                f"{name}[{i}] must be >= 0 (a zero-width interval is "
                f"the constant 0), got {v}"
            )
    return [v for v in out if v != 0]


@memoized_kernel
def sum_uniform_cdf(t: RationalLike, uppers: Sequence[RationalLike]) -> Fraction:
    """Lemma 2.4: ``P(sum x_i <= t)`` for independent ``x_i ~ U[0, uppers[i]]``.

    For ``t <= 0`` returns 0; for ``t >= sum(uppers)`` returns 1 (both
    follow from the formula but are short-circuited for clarity and
    speed).  Zero-width entries of *uppers* are the constant 0 and are
    dropped; if every entry is zero-width the empty-sum convention
    applies.  Exponential in ``len(uppers)`` via subset enumeration --
    fine for the paper's small ``m``; use :func:`irwin_hall_cdf` for the
    identical-interval case, which is linear, or
    :func:`sum_uniform_cdf_fast` for a certified float.
    """
    pi = _validated_widths(uppers, "uppers")
    m = len(pi)
    tt = as_fraction(t)
    if m == 0:
        return Fraction(1) if tt >= 0 else Fraction(0)
    if tt <= 0:
        return Fraction(0)
    total_span = sum(pi, Fraction(0))
    if tt >= total_span:
        return Fraction(1)
    normaliser = factorial(m)
    for v in pi:
        normaliser *= v

    total = Fraction(0)
    for size in range(m + 1):
        sign = (-1) ** size
        for subset in combinations(pi, size):
            shift = sum(subset, Fraction(0))
            if shift < tt:
                total += sign * (tt - shift) ** m
    return check_probability("sum_uniform_cdf", total / normaliser)


class SumUniformFastContext:
    """Hoisted precomputation for grid evaluation of :func:`sum_uniform_cdf_fast`.

    The Lemma 2.4 series depends on *t* only through the per-subset
    base ``t - shift``: the subset enumeration, the exact subset shifts
    (an ``fsum`` each), the normaliser and the float conversions are
    all functions of *uppers* alone.  A loop over a ``t`` grid used to
    redo that ``O(2^m)`` prefix on every call; building the context
    once hoists it, and :meth:`cdf` then reuses it per point.

    The per-point arithmetic -- term order, base subtraction, error
    model, certification, fallback -- is *identical* to a fresh
    :func:`sum_uniform_cdf_fast` call, so the hoisted path returns
    bit-identical certified values (pinned by a regression test).
    """

    __slots__ = (
        "_pi",
        "_m",
        "_normaliser",
        "_normaliser_f",
        "_t_span",
        "_shifts",
        "_float_ready",
    )

    def __init__(self, uppers: Sequence[RationalLike]):
        self._pi = _validated_widths(uppers, "uppers")
        self._m = len(self._pi)
        normaliser = factorial(self._m)
        for v in self._pi:
            normaliser *= v
        self._normaliser = normaliser
        self._t_span = sum(self._pi, Fraction(0))
        # The float mirror of the exact inputs.  ``float(Fraction)``
        # RAISES OverflowError past ~1e308 (m! times wide intervals
        # gets there quickly), and extreme widths can also round the
        # normaliser to inf or to 0.0 -- in every such case the fast
        # path cannot even be attempted, so the context is marked
        # float-unready and :meth:`cdf` goes straight to the fallback
        # policy instead of blowing up.
        try:
            pi_f = [float(v) for v in self._pi]
            normaliser_f = float(normaliser)
            float_ready = (
                math.isfinite(normaliser_f)
                and normaliser_f != 0.0
                and all(map(math.isfinite, pi_f))
            )
        except OverflowError:
            pi_f = []
            normaliser_f = math.inf
            float_ready = False
        self._normaliser_f = normaliser_f
        self._float_ready = float_ready
        # (sign, shift) per subset, in the exact enumeration order of
        # the un-hoisted implementation: sizes ascending, and within a
        # size the itertools.combinations order.
        shifts = []
        if float_ready:
            for size in range(self._m + 1):
                sign = 1 if size % 2 == 0 else -1
                for subset in combinations(pi_f, size):
                    shifts.append((sign, math.fsum(subset)))
        self._shifts = tuple(shifts)

    @property
    def m(self) -> int:
        """Number of (positive-width) summands."""
        return self._m

    def cdf(
        self,
        t: RationalLike,
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-15,
        fallback: str = "exact",
    ) -> float:
        """One guarded evaluation, bit-identical to
        :func:`sum_uniform_cdf_fast` at the same arguments."""
        tt = as_fraction(t)
        if self._m == 0:
            return 1.0 if tt >= 0 else 0.0
        if tt <= 0:
            return 0.0
        if tt >= self._t_span:
            return 1.0
        t_f = math.inf
        if self._float_ready:
            try:
                t_f = float(tt)
            except OverflowError:
                t_f = math.inf
        if not math.isfinite(t_f):
            # Inputs outside float range: the fast path cannot run, but
            # the fallback contract still must -- hand resolve_guarded
            # an uncertified sentinel so the event is counted as
            # ``fastpath.fallbacks`` and the fallback="raise" policy
            # raises NumericalInstabilityError instead of OverflowError.
            guarded = _UNCERTIFIABLE
        else:

            def bases():
                for sign, shift in self._shifts:
                    # t and the shift are correctly-rounded conversions
                    # and an exact fsum; the subtraction adds one more
                    # rounding.
                    error = 3.0 * EPS * (t_f + shift)
                    yield (sign, t_f - shift, error)

            guarded = certified_alternating_sum(
                bases(),
                self._m,
                self._normaliser_f,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            )
        value = resolve_guarded(
            "sum_uniform_cdf",
            guarded,
            lambda: sum_uniform_cdf(tt, self._pi),
            fallback=fallback,
        )
        return min(1.0, max(0.0, value))


def sum_uniform_cdf_fast(
    t: RationalLike,
    uppers: Sequence[RationalLike],
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
    fallback: str = "exact",
) -> float:
    """Guarded float fast path for :func:`sum_uniform_cdf`.

    Evaluates the Lemma 2.4 alternating series in compensated float
    arithmetic with a running error bound; returns the float when the
    bound certifies it to *rel_tol* / *abs_tol* and otherwise falls
    back to the exact path (``fallback="exact"``, counted in the
    metrics as ``fastpath.fallbacks``) or raises
    :class:`~repro.errors.NumericalInstabilityError`
    (``fallback="raise"``).

    Calling this in a loop over a ``t`` grid redoes the ``O(2^m)``
    subset precomputation every time; build a
    :class:`SumUniformFastContext` once instead (this function is a
    thin wrapper over a fresh context, so the two paths cannot drift).
    """
    return SumUniformFastContext(uppers).cdf(
        t, rel_tol=rel_tol, abs_tol=abs_tol, fallback=fallback
    )


@memoized_kernel
def sum_uniform_pdf(t: RationalLike, uppers: Sequence[RationalLike]) -> Fraction:
    """Lemma 2.5: density of the sum of independent ``x_i ~ U[0, uppers[i]]``.

    This is the formula the paper offers as an answer to Rota's research
    problem.  The density is taken as the right-continuous version at
    knots; it vanishes outside ``(0, sum(uppers))``.  Zero-width
    entries of *uppers* are dropped (they shift nothing); if every
    entry is zero-width the sum is a point mass and has no density, so
    a :class:`~repro.errors.ValidationError` is raised, exactly as for
    an empty *uppers*.
    """
    pi = _validated_widths(uppers, "uppers")
    m = len(pi)
    tt = as_fraction(t)
    if m == 0:
        raise ValidationError(
            "the empty sum is a point mass; it has no density"
        )
    if tt <= 0 or tt >= sum(pi, Fraction(0)):
        return Fraction(0)
    normaliser = factorial(m - 1)
    for v in pi:
        normaliser *= v

    total = Fraction(0)
    for size in range(m + 1):
        sign = (-1) ** size
        for subset in combinations(pi, size):
            shift = sum(subset, Fraction(0))
            if shift < tt:
                total += sign * (tt - shift) ** (m - 1)
    return total / normaliser


@memoized_kernel
def irwin_hall_cdf(t: RationalLike, m: int) -> Fraction:
    """Corollary 2.6: ``P(sum of m U[0,1] <= t)``, the Irwin-Hall CDF.

    ``F(t) = (1/m!) sum_{0 <= i <= m, i < t} (-1)^i C(m, i) (t - i)^m``

    Linear in ``m``.  ``m = 0`` returns 1 for ``t >= 0`` (empty sum);
    ``t <= 0`` returns 0 and ``t >= m`` returns 1.
    """
    if m < 0:
        raise ValidationError(f"m must be >= 0, got {m}")
    tt = as_fraction(t)
    if m == 0:
        return Fraction(1) if tt >= 0 else Fraction(0)
    if tt <= 0:
        return Fraction(0)
    if tt >= m:
        return Fraction(1)
    total = alternating_symmetric_sum(
        m,
        term=lambda i: (tt - i) ** m,
        condition=lambda i: i < tt,
    )
    return check_probability("irwin_hall_cdf", total / factorial(m))


class IrwinHallFastContext:
    """Hoisted precomputation for grid evaluation of :func:`irwin_hall_cdf_fast`.

    The per-term weight ``(C(m, i)/m!)**(1/m)`` (taken via log-gamma)
    depends only on ``m`` and ``i``; a scalar loop over a ``t`` grid
    used to recompute the two ``lgamma`` calls and the ``exp`` for
    every term of every point.  The context computes the per-``i``
    ``(sign, scale, log_coeff)`` triples once; :meth:`cdf` replays the
    same term order (including the ``i < t`` truncation) with the same
    arithmetic, so certified values are bit-identical to the un-hoisted
    path (pinned by a regression test).
    """

    __slots__ = ("_m", "_terms")

    def __init__(self, m: int):
        if m < 0:
            raise ValidationError(f"m must be >= 0, got {m}")
        self._m = m
        terms = []
        for i in range(m + 1):
            sign = 1 if i % 2 == 0 else -1
            if m == 0:
                terms.append((sign, 1.0, 0.0))
                continue
            # (C(m, i) / m!) ** (1/m) = (i! (m-i)!) ** (-1/m)
            log_coeff = -(math.lgamma(i + 1) + math.lgamma(m - i + 1))
            scale = math.exp(log_coeff / m)
            terms.append((sign, scale, log_coeff))
        self._terms = tuple(terms)

    @property
    def m(self) -> int:
        """Number of unit-uniform summands."""
        return self._m

    def cdf(
        self,
        t: RationalLike,
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-15,
        fallback: str = "exact",
    ) -> float:
        """One guarded evaluation, bit-identical to
        :func:`irwin_hall_cdf_fast` at the same arguments."""
        m = self._m
        tt = as_fraction(t)
        if m == 0:
            return 1.0 if tt >= 0 else 0.0
        if tt <= 0:
            return 0.0
        if tt >= m:
            return 1.0
        t_f = float(tt)

        def bases():
            for i, (sign, scale, log_coeff) in enumerate(self._terms):
                if not i < tt:
                    break
                base = scale * (t_f - i)
                # conversion + subtraction errors, plus the log/exp
                # route's relative error amplified by the later m-th
                # power is covered by the derivative term in the
                # certifier.
                error = scale * 2.0 * EPS * (t_f + i) + abs(base) * EPS * (
                    abs(log_coeff) / m + 4.0
                )
                yield (sign, base, error)

        guarded = certified_alternating_sum(
            bases(), m, 1.0, rel_tol=rel_tol, abs_tol=abs_tol
        )
        value = resolve_guarded(
            "irwin_hall_cdf",
            guarded,
            lambda: irwin_hall_cdf(tt, m),
            fallback=fallback,
        )
        return min(1.0, max(0.0, value))


def irwin_hall_cdf_fast(
    t: RationalLike,
    m: int,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
    fallback: str = "exact",
) -> float:
    """Guarded float fast path for :func:`irwin_hall_cdf`.

    The binomial weight and the ``1/m!`` normaliser are folded into
    each term's base as ``(C(m, i)/m!)**(1/m)`` via log-gamma, so the
    evaluation neither overflows nor underflows for large ``m`` -- the
    regime where the exact path's integer arithmetic is slowest and
    where naive float summation loses every digit to cancellation
    (around ``m ~ 25`` at central ``t``).  Certification and fallback
    behave exactly as in :func:`sum_uniform_cdf_fast`.

    Calling this in a loop over a ``t`` grid recomputes the log-gamma
    weights every time; build an :class:`IrwinHallFastContext` once
    instead (this function is a thin wrapper over a fresh context, so
    the two paths cannot drift).
    """
    return IrwinHallFastContext(m).cdf(
        t, rel_tol=rel_tol, abs_tol=abs_tol, fallback=fallback
    )


@memoized_kernel
def irwin_hall_pdf(t: RationalLike, m: int) -> Fraction:
    """Density of the Irwin-Hall distribution (Lemma 2.5 with unit boxes)."""
    if m < 1:
        raise ValidationError(f"m must be >= 1 for a density, got {m}")
    tt = as_fraction(t)
    if tt <= 0 or tt >= m:
        return Fraction(0)
    total = alternating_symmetric_sum(
        m,
        term=lambda i: (tt - i) ** (m - 1),
        condition=lambda i: i < tt,
    )
    return total / factorial(m - 1)


@memoized_kernel
def sum_uniform_tail_cdf(
    t: RationalLike, lowers: Sequence[RationalLike]
) -> Fraction:
    """Lemma 2.7: ``P(sum x_i <= t)`` for independent ``x_i ~ U[lowers[i], 1]``.

    Derived in the paper by the reflection ``x'_i = 1 - x_i``:

    ``F(t) = 1 - (1/(m! prod (1 - pi_l))) *
             sum_{I : |I| < m - t + sum_{l in I} pi_l}
             (-1)^|I| (m - t - |I| + sum_{l in I} pi_l)^m``

    Every ``lowers[i]`` must lie in ``[0, 1)``; a degenerate
    ``lowers[i] = 1`` would make ``x_i`` an atom at the boundary,
    where the open/closed convention matters, so it is rejected with
    :class:`~repro.errors.ValidationError`.  Boundary behaviour: 0 for
    ``t <= sum(lowers)`` (the floor of the support), 1 for ``t >= m``,
    and the empty sum follows the ``m = 0`` convention of
    :func:`sum_uniform_cdf`.
    """
    pi = [as_fraction(v) for v in lowers]
    m = len(pi)
    tt = as_fraction(t)
    if m == 0:
        return Fraction(1) if tt >= 0 else Fraction(0)
    for i, v in enumerate(pi):
        if not 0 <= v < 1:
            raise ValidationError(
                f"lowers[{i}] must be in [0, 1), got {v}"
            )
    floor_sum = sum(pi, Fraction(0))
    if tt <= floor_sum:
        return Fraction(0)
    if tt >= m:
        return Fraction(1)
    # Reflection: 1 - x_i ~ U[0, 1 - pi_i]; P(sum x <= t) =
    # 1 - P(sum (1 - x) <= m - t) evaluated with Lemma 2.4.
    return check_probability(
        "sum_uniform_tail_cdf",
        1 - sum_uniform_cdf(m - tt, [1 - v for v in pi]),
    )


@memoized_kernel
def joint_sum_below_and_inside_low(
    t: RationalLike, alphas: Sequence[RationalLike]
) -> Fraction:
    """``P(sum x_i <= t  and  x_i <= alphas[i] for all i)`` with ``x_i ~ U[0,1]``.

    This is the first factor in Theorem 5.1 (the "bin 0" factor): the
    players whose output bit is 0 have, by the single-threshold rule,
    inputs in ``[0, alpha_i]``, and the bin wins when their sum stays
    below the capacity.  Equals the volume

    ``Vol(SigmaPi(t * 1, alpha)) =
      (1/m!) sum_{I : sum alpha_l < t} (-1)^|I| (t - sum_{l in I} alpha_l)^m``

    (no normalisation: the ambient density on the unit cube is 1).
    Empty *alphas* gives 1 for ``t >= 0``.
    """
    alpha = [as_fraction(v) for v in alphas]
    m = len(alpha)
    tt = as_fraction(t)
    if m == 0:
        return Fraction(1) if tt >= 0 else Fraction(0)
    for i, v in enumerate(alpha):
        if not 0 <= v <= 1:
            raise ValidationError(
                f"alphas[{i}] must be in [0, 1], got {v}"
            )
        if v == 0:
            # P(x_i <= 0) = 0: the joint event is null.
            return Fraction(0)
    if tt <= 0:
        return Fraction(0)

    total = Fraction(0)
    for size in range(m + 1):
        sign = (-1) ** size
        for subset in combinations(alpha, size):
            shift = sum(subset, Fraction(0))
            if shift < tt:
                total += sign * (tt - shift) ** m
    return check_probability(
        "joint_sum_below_and_inside_low", total / factorial(m)
    )


@memoized_kernel
def joint_sum_below_and_inside_boxes(
    t: RationalLike, intervals: Sequence
) -> Fraction:
    """``P(sum x_i <= t  and  x_i in [l_i, u_i] for all i)``, ``x_i ~ U[0,1]``.

    The common generalisation of the two threshold joints: each input
    is confined to its own sub-interval of ``[0, 1]``.  By the shift
    reduction,

    ``P = prod (u_i - l_i) * F(t - sum l_i)``

    with ``F`` the Lemma 2.4 CDF of the sum of uniforms on
    ``[0, u_i - l_i]``.  This is the primitive the interval-rule
    extension (``repro.core.interval_rules``) sums over segment
    choices.  *intervals* is a sequence of ``(lower, upper)`` pairs;
    the empty sequence gives 1 for ``t >= 0``.
    """
    pairs = [(as_fraction(l), as_fraction(u)) for l, u in intervals]
    tt = as_fraction(t)
    if not pairs:
        return Fraction(1) if tt >= 0 else Fraction(0)
    widths = []
    offset = Fraction(0)
    box = Fraction(1)
    for i, (lo, hi) in enumerate(pairs):
        if not 0 <= lo < hi <= 1:
            raise ValidationError(
                f"intervals[{i}] must satisfy 0 <= l < u <= 1, "
                f"got [{lo}, {hi}]"
            )
        widths.append(hi - lo)
        offset += lo
        box *= hi - lo
    return box * sum_uniform_cdf(tt - offset, widths)


@memoized_kernel
def joint_sum_below_and_inside_high(
    t: RationalLike, alphas: Sequence[RationalLike]
) -> Fraction:
    """``P(sum x_i <= t  and  x_i >= alphas[i] for all i)`` with ``x_i ~ U[0,1]``.

    The second factor in Theorem 5.1 (the "bin 1" factor):

    ``prod (1 - alpha_l) - (1/m!) sum_{I : |I| < m - t + sum alpha_l}
       (-1)^|I| (m - t - |I| + sum_{l in I} alpha_l)^m``

    Empty *alphas* gives 1 for ``t >= 0``.
    """
    alpha = [as_fraction(v) for v in alphas]
    m = len(alpha)
    tt = as_fraction(t)
    if m == 0:
        return Fraction(1) if tt >= 0 else Fraction(0)
    for i, v in enumerate(alpha):
        if not 0 <= v <= 1:
            raise ValidationError(
                f"alphas[{i}] must be in [0, 1], got {v}"
            )
    survival = Fraction(1)
    for v in alpha:
        survival *= 1 - v
    if survival == 0:
        # Some alpha_i == 1: P(x_i >= 1) = 0.
        return Fraction(0)
    floor_sum = sum(alpha, Fraction(0))
    if tt <= floor_sum:
        return Fraction(0)
    if tt >= m:
        return survival
    total = Fraction(0)
    for size in range(m + 1):
        sign = (-1) ** size
        for subset in combinations(alpha, size):
            shift = sum(subset, Fraction(0))
            if size < m - tt + shift:
                total += sign * (m - tt - size + shift) ** m
    return check_probability(
        "joint_sum_below_and_inside_high",
        survival - total / factorial(m),
    )
