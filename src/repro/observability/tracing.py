"""Hierarchical wall-clock spans with JSON and Chrome-trace export.

A span measures one region of the pipeline (`perf_counter`-based, so
durations are monotonic and sub-microsecond-accurate); spans opened
while another span is active nest under it, producing a tree whose
shape mirrors the call structure: a sweep span containing one span per
grid point, each containing the engine's sharded-estimate span.

Two export formats:

* :meth:`Tracer.to_json` -- the span tree as plain nested dicts, for
  programmatic consumption;
* :meth:`Tracer.chrome_trace_events` -- the flat ``"ph": "X"``
  (complete-event) list of the Chrome trace-event format, loadable in
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.

The span stack is thread-local (concurrent threads build disjoint
subtrees; the completed roots interleave in one shared list), and a
disabled tracer hands out a shared no-op context manager, keeping the
off-by-default fast path allocation-free.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "traced"]

#: Soft cap on recorded spans; beyond it new spans are counted but
#: dropped, so a runaway loop cannot exhaust memory via telemetry.
_MAX_SPANS = 100_000


@dataclass
class Span:
    """One timed region: name, offsets from the tracer's origin, and
    nested children.  Times are microseconds, Chrome-trace native."""

    name: str
    start_us: float
    duration_us: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    tid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as JSON-ready nested dicts."""
        return {
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpanContext:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Builds the span tree; one origin, thread-local open-span stacks.

    All completed *root* spans (spans opened with no active parent on
    their thread) accumulate in a shared list; child spans live inside
    their parent.  A disabled tracer records nothing and returns a
    shared no-op context from :meth:`span`.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._origin = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._recorded = 0
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether this tracer records spans."""
        return self._enabled

    @property
    def dropped(self) -> int:
        """Spans discarded after the recording cap was reached."""
        return self._dropped

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **meta: Any):
        """Open a span named *name*; use as a context manager.

        Keyword arguments become the span's ``meta`` mapping (keep the
        values JSON-serialisable -- they are exported verbatim as
        Chrome-trace ``args``).
        """
        if not self._enabled:
            return _NULL_SPAN_CONTEXT
        with self._lock:
            if self._recorded >= _MAX_SPANS:
                self._dropped += 1
                return _NULL_SPAN_CONTEXT
            self._recorded += 1
        now = time.perf_counter()
        span = Span(
            name=name,
            start_us=(now - self._origin) * 1e6,
            meta=dict(meta),
            tid=threading.get_ident(),
        )
        return _SpanContext(self, span)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        now = time.perf_counter()
        span.duration_us = (now - self._origin) * 1e6 - span.start_us
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    def roots(self) -> List[Span]:
        """The completed root spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def to_json(self) -> List[Dict[str, Any]]:
        """The whole forest as JSON-ready nested dicts."""
        return [span.to_dict() for span in self.roots()]

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """Flat Chrome trace-event list (``"ph": "X"`` complete events).

        Wrap as ``{"traceEvents": [...]}`` (see
        :func:`repro.observability.reporting.write_chrome_trace`) or
        load the bare list -- Perfetto accepts both.
        """
        events: List[Dict[str, Any]] = []

        def visit(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": (
                        0.0
                        if span.duration_us is None
                        else span.duration_us
                    ),
                    "pid": 1,
                    "tid": span.tid,
                    "args": dict(span.meta),
                }
            )
            for child in span.children:
                visit(child)

        for root in self.roots():
            visit(root)
        return events

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Tracer({state}, {len(self.roots())} root spans)"


def traced(
    name: Optional[str] = None, **meta: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: run the function inside a span on the *active* tracer.

    The tracer is resolved at call time from the active
    :class:`repro.observability.Instrumentation`, so decorated library
    functions stay zero-overhead until a caller turns instrumentation
    on.  *name* defaults to the function's qualified name.
    """

    def decorate(function: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            from repro.observability import get_instrumentation

            tracer = get_instrumentation().tracer
            if not tracer.enabled:
                return function(*args, **kwargs)
            with tracer.span(span_name, **meta):
                return function(*args, **kwargs)

        return wrapper

    return decorate
