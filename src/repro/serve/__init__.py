"""``repro.serve``: the resilient query-serving layer.

A zero-dependency asyncio HTTP/JSON service answering the paper's
queries -- "n players, capacity delta: what does strategy beta win?
what is the optimal strategy?" -- under explicit robustness contracts:

* **bounded admission** -- a concurrency limiter plus a bounded queue;
  overload sheds with 429 + Retry-After instead of queueing unboundedly
  (:mod:`repro.serve.admission`);
* **deadline budgets** -- every request's budget is propagated into the
  kernel tiers: certified float, then exact ``Fraction`` only while
  budget remains, else a degraded answer carrying its certified error
  bound (:mod:`repro.serve.degrade`);
* **circuit breaking** -- sustained slow exact fallbacks trip the exact
  tier open; the service keeps answering, explicitly degraded;
* **graceful drain** -- SIGTERM/SIGINT stop intake and let in-flight
  requests finish inside a drain deadline
  (:mod:`repro.serve.server`).

Entry points: :func:`run_server` (the CLI's ``repro serve``),
:class:`ReproServer` for embedding, :class:`ServeConfig` for both.
"""

from repro.serve.admission import AdmissionController, CircuitBreaker
from repro.serve.degrade import Deadline, certified_grid_optimum
from repro.serve.handlers import Coalescer, Response, handle_request
from repro.serve.server import (
    ReproServer,
    ServeConfig,
    ServeReport,
    run_server,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Coalescer",
    "Deadline",
    "ReproServer",
    "Response",
    "ServeConfig",
    "ServeReport",
    "certified_grid_optimum",
    "handle_request",
    "run_server",
]
