"""Serial vs sharded-parallel throughput of the Monte Carlo engine.

The record lines quote trials/second for the scalar (communicating)
path -- the path the parallel executor exists for -- with 1 and 4
workers, plus the speedup ratio.  Correctness is asserted
unconditionally: the sharded results must be bit-identical for every
worker count.  The >= 2.5x speedup target is asserted only when the
machine actually has >= 4 CPUs (a single-core CI runner cannot speed
anything up, but it still exercises the multiprocessing path).
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from conftest import record

from repro.baselines.centralized import OmniscientPacker
from repro.model.algorithms import SingleThresholdRule
from repro.model.communication import FullInformation
from repro.model.system import DistributedSystem
from repro.simulation.engine import MonteCarloEngine

SCALAR_TRIALS = 40_000
VECTOR_TRIALS = 2_000_000
SPEEDUP_TARGET = 2.5


def scalar_system(n: int = 3) -> DistributedSystem:
    """Full-information packing: every trial runs the message machinery."""
    return DistributedSystem(
        [OmniscientPacker(i, n) for i in range(n)],
        Fraction(3, 2),
        pattern=FullInformation(n),
    )


def _timed_estimate(system, trials, workers):
    engine = MonteCarloEngine(seed=2024)
    start = time.perf_counter()
    summary = engine.estimate_winning_probability(
        system, trials=trials, workers=workers
    )
    elapsed = time.perf_counter() - start
    return summary, elapsed


def test_bench_scalar_path_parallel_speedup():
    """The acceptance workload: communicating system, 1 vs 4 workers."""
    system = scalar_system()
    serial, t_serial = _timed_estimate(system, SCALAR_TRIALS, workers=1)
    parallel, t_parallel = _timed_estimate(system, SCALAR_TRIALS, workers=4)

    assert serial == parallel  # bit-identical regardless of worker count

    speedup = t_serial / t_parallel
    cpus = os.cpu_count() or 1
    record(
        "parallel scalar path",
        trials=SCALAR_TRIALS,
        serial_tps=f"{SCALAR_TRIALS / t_serial:,.0f}",
        workers4_tps=f"{SCALAR_TRIALS / t_parallel:,.0f}",
        speedup=f"{speedup:.2f}x",
        cpus=cpus,
    )
    if cpus >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"4-worker speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET}x target on a {cpus}-CPU machine"
        )


def test_bench_vectorised_path_parallel():
    """The vectorised path shards too; already fast, must not regress."""
    system = DistributedSystem(
        [SingleThresholdRule(Fraction(3, 5))] * 4, Fraction(4, 3)
    )
    serial, t_serial = _timed_estimate(system, VECTOR_TRIALS, workers=1)
    parallel, t_parallel = _timed_estimate(system, VECTOR_TRIALS, workers=4)

    assert serial == parallel

    record(
        "parallel vectorised path",
        trials=VECTOR_TRIALS,
        serial_tps=f"{VECTOR_TRIALS / t_serial:,.0f}",
        workers4_tps=f"{VECTOR_TRIALS / t_parallel:,.0f}",
        speedup=f"{t_serial / t_parallel:.2f}x",
    )


def test_bench_shard_overhead_serial():
    """Sharding alone (workers=1) must cost little over the legacy loop."""
    system = scalar_system()
    engine = MonteCarloEngine(seed=7)
    start = time.perf_counter()
    engine.estimate_winning_probability(system, trials=SCALAR_TRIALS)
    t_legacy = time.perf_counter() - start

    start = time.perf_counter()
    engine.estimate_winning_probability(
        system, trials=SCALAR_TRIALS, workers=1
    )
    t_sharded = time.perf_counter() - start

    record(
        "shard overhead (workers=1)",
        legacy_s=f"{t_legacy:.3f}",
        sharded_s=f"{t_sharded:.3f}",
        overhead=f"{(t_sharded / t_legacy - 1) * 100:+.1f}%",
    )
    assert t_sharded < t_legacy * 1.5
