"""Tests for repro.geometry.polytope."""

from fractions import Fraction

import pytest

from repro.geometry.polytope import HalfSpace, Polytope


class TestHalfSpace:
    def test_of_coerces(self):
        hs = HalfSpace.of(["1/2", 1], "3/4")
        assert hs.normal == (Fraction(1, 2), Fraction(1))
        assert hs.offset == Fraction(3, 4)

    def test_contains(self):
        hs = HalfSpace.of([1, 1], 1)
        assert hs.contains([Fraction(1, 2), Fraction(1, 2)])
        assert not hs.contains([1, 1])

    def test_contains_boundary(self):
        hs = HalfSpace.of([2], 1)
        assert hs.contains([Fraction(1, 2)])

    def test_contains_float(self):
        hs = HalfSpace.of([1, 1], 1)
        assert hs.contains_float([0.4, 0.4])
        assert not hs.contains_float([0.6, 0.6])

    def test_dimension_mismatch(self):
        hs = HalfSpace.of([1, 1], 1)
        with pytest.raises(ValueError):
            hs.contains([1])

    def test_slack(self):
        hs = HalfSpace.of([1, 2], 3)
        assert hs.slack([1, 1]) == 0
        assert hs.slack([0, 0]) == 3
        assert hs.slack([3, 3]) == -6

    def test_str(self):
        assert "<=" in str(HalfSpace.of([1, 0], 2))


class TestPolytope:
    def make_unit_square(self) -> Polytope:
        p = Polytope(2)
        for axis in range(2):
            p.add_lower_bound(axis, 0)
            p.add_upper_bound(axis, 1)
        return p

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Polytope(0)

    def test_membership(self):
        sq = self.make_unit_square()
        assert sq.contains([Fraction(1, 2), Fraction(1, 2)])
        assert sq.contains([0, 1])
        assert not sq.contains([Fraction(3, 2), 0])
        assert not sq.contains([Fraction(-1, 10), 0])

    def test_contains_float(self):
        sq = self.make_unit_square()
        assert sq.contains_float([0.3, 0.9])
        assert not sq.contains_float([0.3, 1.1])

    def test_add_halfspace_dimension_check(self):
        sq = self.make_unit_square()
        with pytest.raises(ValueError):
            sq.add(HalfSpace.of([1], 1))

    def test_add_inequality(self):
        sq = self.make_unit_square()
        sq.add_inequality([1, 1], 1)  # cut the corner
        assert not sq.contains([1, 1])
        assert sq.contains([Fraction(1, 2), Fraction(1, 2)])

    def test_intersect(self):
        sq = self.make_unit_square()
        other = Polytope(2, [HalfSpace.of([1, 0], Fraction(1, 2))])
        cut = sq.intersect(other)
        assert cut.contains([Fraction(1, 4), Fraction(1, 2)])
        assert not cut.contains([Fraction(3, 4), Fraction(1, 2)])
        # originals untouched
        assert sq.contains([Fraction(3, 4), Fraction(1, 2)])

    def test_intersect_dimension_mismatch(self):
        with pytest.raises(ValueError):
            self.make_unit_square().intersect(Polytope(3))

    def test_coordinate_bounds(self):
        sq = self.make_unit_square()
        assert sq.coordinate_bounds() == [
            (Fraction(0), Fraction(1)),
            (Fraction(0), Fraction(1)),
        ]

    def test_coordinate_bounds_takes_tightest(self):
        sq = self.make_unit_square()
        sq.add_upper_bound(0, Fraction(1, 2))
        assert sq.coordinate_bounds()[0] == (Fraction(0), Fraction(1, 2))

    def test_coordinate_bounds_missing_axis(self):
        p = Polytope(2)
        p.add_lower_bound(0, 0)
        p.add_upper_bound(0, 1)
        p.add_lower_bound(1, 0)  # axis 1 has no upper bound
        with pytest.raises(ValueError, match=r"axes \[1\]"):
            p.coordinate_bounds()

    def test_coordinate_bounds_ignores_multivariable_constraints(self):
        sq = self.make_unit_square()
        sq.add_inequality([1, 1], Fraction(1, 4))
        # the diagonal constraint does not tighten the per-axis box
        assert sq.coordinate_bounds()[0] == (Fraction(0), Fraction(1))

    def test_repr(self):
        assert "dim=2" in repr(self.make_unit_square())
