"""Deterministic random-stream management.

Every stochastic component in the package draws from a
:class:`numpy.random.Generator`.  :class:`SeedSequenceFactory` hands out
independent, named child streams derived from one root seed, so:

* re-running an experiment with the same root seed reproduces it bit
  for bit;
* adding a new consumer does not perturb the streams of existing ones
  (streams are keyed by name, not by creation order).

Stream keying uses the full SHA-256 digest of the name, folded into a
``spawn_key`` tuple of 32-bit words.  An earlier revision keyed streams
by ``zlib.crc32(name)``; two names with colliding 32-bit CRCs (e.g.
``"plumless"`` / ``"buckeroo"``) then received *identical* generators,
which is exactly the failure mode a sharded executor with thousands of
derived stream names would amplify.  The 256-bit key makes accidental
collisions cryptographically implausible.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["SeedSequenceFactory", "stream_spawn_key"]


def stream_spawn_key(name: str) -> Tuple[int, ...]:
    """The ``spawn_key`` tuple for a stream *name*: the SHA-256 digest
    of the UTF-8 name split into eight 32-bit big-endian words.

    Collision-free in practice (256 bits), unlike a 32-bit CRC, and
    stable across platforms and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)
    )


class SeedSequenceFactory:
    """Hands out named, independent random generators from one root seed."""

    def __init__(self, root_seed: Optional[int] = None):
        self._root_seed = root_seed
        self._issued: Dict[str, int] = {}

    @property
    def root_seed(self) -> Optional[int]:
        return self._root_seed

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`numpy.random.SeedSequence` underlying stream *name*.

        Only meaningful in seeded mode; raises otherwise.  Exposed so
        the parallel executor can ship compact, picklable seed material
        to worker processes instead of generator objects.
        """
        if self._root_seed is None:
            raise ValueError(
                "seed_sequence() requires a root seed; "
                "unseeded factories draw from OS entropy"
            )
        if not name:
            raise ValueError("stream name must be non-empty")
        return np.random.SeedSequence(
            entropy=self._root_seed, spawn_key=stream_spawn_key(name)
        )

    def generator(self, name: str) -> np.random.Generator:
        """A generator for the stream *name*.

        The stream key is derived by hashing the name, so the same
        (root seed, name) pair always yields the same stream regardless
        of how many other streams were requested before it.  Requesting
        the same name twice returns a *fresh* generator over the same
        stream -- callers that need continuation should hold on to the
        generator object.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        key = stream_spawn_key(name)
        self._issued[name] = self._issued.get(name, 0) + 1
        if self._root_seed is None:
            # Non-reproducible mode: fresh OS entropy, but still keyed
            # by the full name so distinct names can never alias.
            return np.random.default_rng(
                np.random.SeedSequence(spawn_key=key)
            )
        seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=key)
        return np.random.default_rng(seq)

    def record_issue(self, name: str) -> None:
        """Note that stream *name* was consumed outside :meth:`generator`
        (e.g. inside a worker process), keeping the audit complete."""
        if not name:
            raise ValueError("stream name must be non-empty")
        self._issued[name] = self._issued.get(name, 0) + 1

    def issued_streams(self) -> Dict[str, int]:
        """How many times each named stream was requested (for audits)."""
        return dict(self._issued)

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(root_seed={self._root_seed})"
