"""Round-based message passing: protocols as first-class objects.

The pattern abstraction in :mod:`repro.model.communication` models
*what a player eventually knows*; this module models *how it comes to
know it*: a synchronous, round-based message-passing execution with an
inspectable transcript.  That is the standard distributed-computing
view, and it supports protocols the static patterns cannot express --
e.g. forwarding *derived* values (partial sums) instead of raw inputs.

Execution model (synchronous rounds):

1. every player starts knowing its own input;
2. in each round, every player emits messages (receiver -> payload)
   based on its current knowledge; all messages of a round are
   delivered simultaneously at the end of the round;
3. after the last round, every player decides its bit from its final
   knowledge.

The no-communication case is a zero-round protocol.  Two bridges keep
the world consistent:

* :class:`AnnouncementProtocol` realises any static
  :class:`CommunicationPattern` by having each player announce its raw
  input along the pattern's edges in round 1 -- executions match
  :meth:`DistributedSystem.run` exactly (tested);
* :class:`PartialSumChainProtocol` is a genuinely dynamic protocol:
  player ``i`` forwards the running bin loads to player ``i + 1``, and
  each player greedily joins the lighter feasible bin.  With the full
  chain this implements sequential greedy packing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.model.agents import DecisionAlgorithm
from repro.model.communication import CommunicationPattern
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = [
    "AnnouncementProtocol",
    "Message",
    "PartialSumChainProtocol",
    "ProtocolEngine",
    "ProtocolOutcome",
    "RoundBasedProtocol",
    "Transcript",
]


@dataclass(frozen=True)
class Message:
    """One payload delivered from *sender* to *receiver* in *round_index*."""

    sender: int
    receiver: int
    round_index: int
    payload: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.sender == self.receiver:
            raise ValueError("players do not message themselves")
        if self.round_index < 1:
            raise ValueError("rounds are numbered from 1")


@dataclass
class Transcript:
    """Everything that happened in one execution."""

    inputs: Tuple[float, ...]
    messages: List[Message] = field(default_factory=list)
    outputs: Tuple[int, ...] = ()

    def messages_in_round(self, round_index: int) -> List[Message]:
        """All messages delivered in the given round."""
        return [m for m in self.messages if m.round_index == round_index]

    def received_by(self, player: int) -> List[Message]:
        """All messages the given player received, any round."""
        return [m for m in self.messages if m.receiver == player]

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    @property
    def total_payload_floats(self) -> int:
        """Communication volume in payload entries (a crude bit count)."""
        return sum(len(m.payload) for m in self.messages)


@dataclass(frozen=True)
class ProtocolOutcome:
    """Verdict plus the transcript that produced it."""

    won: bool
    load_bin0: float
    load_bin1: float
    transcript: Transcript


class RoundBasedProtocol(ABC):
    """A synchronous protocol for ``n`` players."""

    def __init__(self, n: int, rounds: int):
        if n < 1:
            raise ValueError(f"need at least one player, got n={n}")
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        self._n = n
        self._rounds = rounds

    @property
    def n(self) -> int:
        return self._n

    @property
    def rounds(self) -> int:
        return self._rounds

    @abstractmethod
    def send(
        self,
        player: int,
        round_index: int,
        own_input: float,
        inbox: Sequence[Message],
        rng: np.random.Generator,
    ) -> Dict[int, Tuple[float, ...]]:
        """Messages to emit this round: ``receiver -> payload``.

        *inbox* holds every message the player received in earlier
        rounds (the player's full knowledge besides its input).
        """

    @abstractmethod
    def decide(
        self,
        player: int,
        own_input: float,
        inbox: Sequence[Message],
        rng: np.random.Generator,
    ) -> int:
        """The final bit, from the player's input and full inbox."""


class ProtocolEngine:
    """Executes round-based protocols and judges the outcome."""

    def __init__(self, capacity: RationalLike):
        self._capacity = as_fraction(capacity)
        if self._capacity <= 0:
            raise ValueError(
                f"capacity must be positive, got {self._capacity}"
            )

    @property
    def capacity(self):
        return self._capacity

    def execute(
        self,
        protocol: RoundBasedProtocol,
        inputs: Sequence[float],
        rng: np.random.Generator,
    ) -> ProtocolOutcome:
        """Run *protocol* on *inputs* and judge the final bin loads."""
        if len(inputs) != protocol.n:
            raise ValueError(
                f"expected {protocol.n} inputs, got {len(inputs)}"
            )
        xs = [float(x) for x in inputs]
        transcript = Transcript(inputs=tuple(xs))
        inboxes: List[List[Message]] = [[] for _ in range(protocol.n)]
        for round_index in range(1, protocol.rounds + 1):
            pending: List[Message] = []
            for player in range(protocol.n):
                outgoing = protocol.send(
                    player,
                    round_index,
                    xs[player],
                    inboxes[player],
                    rng,
                )
                for receiver, payload in outgoing.items():
                    if not 0 <= receiver < protocol.n:
                        raise ValueError(
                            f"player {player} addressed unknown receiver "
                            f"{receiver}"
                        )
                    pending.append(
                        Message(
                            sender=player,
                            receiver=receiver,
                            round_index=round_index,
                            payload=tuple(float(v) for v in payload),
                        )
                    )
            # synchronous delivery at the end of the round
            for message in pending:
                inboxes[message.receiver].append(message)
                transcript.messages.append(message)
        outputs = tuple(
            protocol.decide(player, xs[player], inboxes[player], rng)
            for player in range(protocol.n)
        )
        for bit in outputs:
            if bit not in (0, 1):
                raise ValueError(f"protocol produced non-bit output {bit}")
        transcript.outputs = outputs
        load0 = sum(x for x, y in zip(xs, outputs) if y == 0)
        load1 = sum(x for x, y in zip(xs, outputs) if y == 1)
        cap = float(self._capacity)
        return ProtocolOutcome(
            won=(load0 <= cap and load1 <= cap),
            load_bin0=load0,
            load_bin1=load1,
            transcript=transcript,
        )

    def estimate_winning_probability(
        self,
        protocol: RoundBasedProtocol,
        trials: int,
        rng: np.random.Generator,
    ):
        """Monte Carlo win rate of a protocol (scalar loop)."""
        from repro.simulation.statistics import BinomialSummary

        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        wins = 0
        for _ in range(trials):
            inputs = rng.random(protocol.n)
            if self.execute(protocol, inputs, rng).won:
                wins += 1
        return BinomialSummary(successes=wins, trials=trials)


class AnnouncementProtocol(RoundBasedProtocol):
    """Realise a static pattern: round 1 announces raw inputs along the
    pattern's edges, then each player runs its decision algorithm on
    exactly the observations the pattern grants it."""

    def __init__(
        self,
        pattern: CommunicationPattern,
        algorithms: Sequence[DecisionAlgorithm],
    ):
        if len(algorithms) != pattern.n:
            raise ValueError(
                f"pattern is for {pattern.n} players, got "
                f"{len(algorithms)} algorithms"
            )
        rounds = 0 if pattern.is_silent() else 1
        super().__init__(pattern.n, rounds)
        self._pattern = pattern
        self._algorithms = list(algorithms)

    def send(self, player, round_index, own_input, inbox, rng):
        outgoing = {}
        for receiver in range(self.n):
            if player in self._pattern.observed_by(receiver):
                outgoing[receiver] = (own_input,)
        return outgoing

    def decide(self, player, own_input, inbox, rng):
        observed = {m.sender: m.payload[0] for m in inbox}
        return self._algorithms[player].decide(own_input, observed, rng)


class PartialSumChainProtocol(RoundBasedProtocol):
    """Sequential greedy packing along a chain.

    Player 0 decides first and forwards the two bin loads to player 1,
    who adds itself to the lighter *feasible* bin and forwards, and so
    on.  Player ``i`` acts in round ``i + 1``; the protocol needs
    ``n - 1`` rounds and ``n - 1`` messages of two floats.

    This uses communication the static patterns cannot express (the
    payload is a *derived* value) and dominates the no-communication
    optimum, which the integration tests quantify.
    """

    def __init__(self, n: int, capacity: RationalLike):
        super().__init__(n, rounds=max(n - 1, 0))
        self._capacity = float(as_fraction(capacity))

    def _choose(self, own_input: float, load0: float, load1: float) -> int:
        fits0 = load0 + own_input <= self._capacity
        fits1 = load1 + own_input <= self._capacity
        if fits0 and fits1:
            return 0 if load0 <= load1 else 1
        if fits0:
            return 0
        if fits1:
            return 1
        return 0 if load0 <= load1 else 1  # doomed either way: balance

    def _loads_after(self, player: int, inbox) -> Tuple[float, float]:
        if player == 0:
            return (0.0, 0.0)
        latest = max(inbox, key=lambda m: m.round_index)
        return (latest.payload[0], latest.payload[1])

    def send(self, player, round_index, own_input, inbox, rng):
        # player i sends in round i+1 (after hearing from i-1)
        if round_index != player + 1 or player == self.n - 1:
            return {}
        load0, load1 = self._loads_after(player, inbox)
        bit = self._choose(own_input, load0, load1)
        if bit == 0:
            load0 += own_input
        else:
            load1 += own_input
        return {player + 1: (load0, load1)}

    def decide(self, player, own_input, inbox, rng):
        load0, load1 = self._loads_after(player, inbox)
        return self._choose(own_input, load0, load1)
