"""The run-history store: durable telemetry for every recorded run.

One directory per run under the store root (default ``.repro/runs``,
overridable via ``--runs-dir`` / ``REPRO_RUNS_DIR``)::

    .repro/runs/<utc>-<run_id>/
        events.jsonl   the append-only event log (sealed lines)
        run.json       the finalised summary (atomic tmp+fsync+replace)

``events.jsonl`` is written live by the :class:`~repro.observability.
events.EventBus` while the run executes; ``run.json`` is written once,
at the end, with the storage discipline of the cache/results-store
tiers (temp file, ``fsync``, ``os.replace``) so a crash leaves either
a complete summary or none -- a directory with events but no summary
is an *incomplete* run, listed as such rather than hidden.

The store is an accelerator for humans (``repro runs list|show|
compare|prune``, the HTML report, the regression gate's telemetry
input); nothing in the computation pipeline depends on it, and every
reader tolerates damage: a corrupt ``run.json`` or a torn event tail
degrades to less detail, never an error.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.fsutil import fsync_directory
from repro.observability.events import (
    read_events,
    reconstruct_metrics,
    snapshot_to_payload,
)
from repro.observability.metrics import MetricsSnapshot
from repro.observability.runmeta import RunContext, utc_now_iso

__all__ = [
    "RUN_SUMMARY_SCHEMA_VERSION",
    "RunStore",
    "RunStoreError",
    "RunSummary",
    "compare_runs",
    "default_runs_root",
    "render_comparison",
    "render_run",
]

RUN_SUMMARY_SCHEMA_VERSION = 1

_EVENTS_NAME = "events.jsonl"
_SUMMARY_NAME = "run.json"


class RunStoreError(RuntimeError):
    """A run could not be resolved (unknown id, empty store)."""


def default_runs_root() -> Path:
    """The store root: ``REPRO_RUNS_DIR`` or ``.repro/runs``."""
    env = os.environ.get("REPRO_RUNS_DIR")
    return Path(env) if env else Path(".repro") / "runs"


@dataclass(frozen=True)
class RunSummary:
    """One run as the store knows it.

    ``complete`` distinguishes a finalised run (``run.json`` present
    and intact) from one that only got as far as streaming events --
    an interrupted run is still listable, comparable and reportable
    from its event log alone.
    """

    run_id: str
    directory: Path
    command: str = ""
    argv: Tuple[str, ...] = ()
    version: str = ""
    started_utc: str = ""
    finished_utc: str = ""
    elapsed_seconds: Optional[float] = None
    exit_code: Optional[int] = None
    complete: bool = False

    @property
    def events_path(self) -> Path:
        """The run's event log."""
        return self.directory / _EVENTS_NAME

    def metrics(self) -> Optional[MetricsSnapshot]:
        """The run's final metrics, replayed from its event log."""
        try:
            return reconstruct_metrics(self.events_path)
        except OSError:
            return None


def _finalize_in_progress(directory: Path) -> bool:
    """Whether another process is mid-finalize in *directory* (a
    ``.run.*.tmp`` from :meth:`RunStore.finalize`, or the legacy
    ``run.json.tmp`` name, still exists)."""
    try:
        if any(directory.glob(".run.*.tmp")):
            return True
        return (directory / "run.json.tmp").exists()
    except OSError:
        # unreadable directory: err on the side of not deleting
        return True


class RunStore:
    """list/show/compare/prune over a directory of recorded runs."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self._root = (
            default_runs_root() if root is None else Path(root)
        )

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def run_directory(self, context: RunContext) -> Path:
        """The (created) directory a recording run writes into."""
        directory = self._root / context.directory_name
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def events_path(self, context: RunContext) -> Path:
        """Where the run's event bus should append."""
        return self.run_directory(context) / _EVENTS_NAME

    def finalize(
        self,
        context: RunContext,
        exit_code: int,
        snapshot: Optional[MetricsSnapshot] = None,
        artifacts: Optional[Dict[str, str]] = None,
    ) -> Path:
        """Write the run's ``run.json`` atomically; returns its path.

        *artifacts* maps artifact names to paths (metrics export,
        trace, checkpoint) so ``repro runs show`` can point back at
        everything the run produced.
        """
        directory = self.run_directory(context)
        payload: Dict[str, Any] = {
            "schema_version": RUN_SUMMARY_SCHEMA_VERSION,
            "run_id": context.run_id,
            "command": context.command,
            "argv": list(context.argv),
            "version": context.version,
            "started_utc": context.started_utc,
            "finished_utc": utc_now_iso(),
            "elapsed_seconds": context.elapsed_ns() / 1e9,
            "exit_code": int(exit_code),
            "artifacts": dict(artifacts or {}),
        }
        if snapshot is not None:
            payload["metrics"] = snapshot_to_payload(snapshot)
        target = directory / _SUMMARY_NAME
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(directory), prefix=".run.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, target)
            # the rename itself is only durable once the directory
            # entry is flushed; without this a crash after replace can
            # still lose run.json entirely
            fsync_directory(directory)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    def _summary_from_directory(self, directory: Path) -> RunSummary:
        summary_path = directory / _SUMMARY_NAME
        try:
            payload = json.loads(summary_path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("run.json is not an object")
            return RunSummary(
                run_id=str(payload.get("run_id", directory.name)),
                directory=directory,
                command=str(payload.get("command", "")),
                argv=tuple(payload.get("argv", [])),
                version=str(payload.get("version", "")),
                started_utc=str(payload.get("started_utc", "")),
                finished_utc=str(payload.get("finished_utc", "")),
                elapsed_seconds=payload.get("elapsed_seconds"),
                exit_code=payload.get("exit_code"),
                complete=True,
            )
        except (OSError, ValueError, json.JSONDecodeError):
            # incomplete or damaged: recover what the dir name and the
            # event-log header still carry
            run_id = directory.name.rsplit("-", 1)[-1]
            command = ""
            started = ""
            try:
                header = read_events(directory / _EVENTS_NAME).header
                if header is not None:
                    run_id = str(header.get("run_id", run_id))
                    command = str(header.get("command", ""))
                    started = str(header.get("started_utc", ""))
            except OSError:
                pass
            return RunSummary(
                run_id=run_id,
                directory=directory,
                command=command,
                started_utc=started,
                complete=False,
            )

    def list_runs(self) -> List[RunSummary]:
        """Every recorded run, oldest first (directory-name order --
        names start with the compact UTC start time)."""
        try:
            directories = sorted(
                child
                for child in self._root.iterdir()
                if child.is_dir()
            )
        except OSError:
            return []
        return [
            self._summary_from_directory(child) for child in directories
        ]

    def find(self, reference: str) -> RunSummary:
        """Resolve one run by id prefix, directory-name prefix, or the
        special reference ``"latest"``."""
        runs = self.list_runs()
        if not runs:
            raise RunStoreError(
                f"no recorded runs under {self._root} (record one with "
                "--record-run)"
            )
        if reference == "latest":
            return runs[-1]
        matches = [
            run
            for run in runs
            if run.run_id.startswith(reference)
            or run.directory.name.startswith(reference)
        ]
        if not matches:
            raise RunStoreError(
                f"no run matches {reference!r} under {self._root}"
            )
        if len(matches) > 1:
            names = ", ".join(run.run_id for run in matches)
            raise RunStoreError(
                f"{reference!r} is ambiguous: matches {names}"
            )
        return matches[0]

    def prune(self, keep: int) -> int:
        """Delete the oldest runs beyond *keep*; returns how many.

        A directory holding a live finalisation temp file (the
        ``.run.*.tmp`` that :meth:`finalize` renames into place)
        belongs to a run that is *finishing right now* in another
        process; deleting it would race the rename, so such
        directories are skipped -- they become prunable on the next
        invocation, once their ``run.json`` has landed.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        runs = self.list_runs()
        victims = runs[: max(0, len(runs) - keep)]
        removed = 0
        for run in victims:
            if _finalize_in_progress(run.directory):
                continue
            shutil.rmtree(run.directory, ignore_errors=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Rendering and comparison
# ---------------------------------------------------------------------------


def _fmt_elapsed(seconds: Optional[float]) -> str:
    return "?" if seconds is None else f"{seconds:.3f}s"


def render_run(run: RunSummary, max_counters: int = 40) -> str:
    """The ``repro runs show`` text: identity, timing, key metrics."""
    state = "complete" if run.complete else "INCOMPLETE"
    lines = [
        f"run {run.run_id}  [{state}]",
        f"  command:  {run.command or '?'}",
        f"  argv:     {' '.join(run.argv) if run.argv else '?'}",
        f"  version:  {run.version or '?'}",
        f"  started:  {run.started_utc or '?'}",
        f"  finished: {run.finished_utc or '?'}"
        f"  ({_fmt_elapsed(run.elapsed_seconds)})",
        f"  exit:     {run.exit_code if run.exit_code is not None else '?'}",
        f"  events:   {run.events_path}",
    ]
    snapshot = run.metrics()
    if snapshot is not None and snapshot.counters:
        lines.append("  counters:")
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters)[:max_counters]:
            lines.append(
                f"    {name:<{width}}  {snapshot.counters[name]:>14,}"
            )
        if len(snapshot.counters) > max_counters:
            lines.append(
                f"    ... {len(snapshot.counters) - max_counters} more"
            )
    return "\n".join(lines)


@dataclass(frozen=True)
class _CounterDelta:
    """One counter across two runs."""

    name: str
    left: int
    right: int

    @property
    def delta(self) -> int:
        return self.right - self.left


def compare_runs(
    left: RunSummary, right: RunSummary
) -> List[_CounterDelta]:
    """Counter-by-counter differences between two runs (union of
    names, zeros for the side that never recorded one)."""
    a = left.metrics() or MetricsSnapshot()
    b = right.metrics() or MetricsSnapshot()
    names = sorted(set(a.counters) | set(b.counters))
    return [
        _CounterDelta(
            name=name,
            left=a.counters.get(name, 0),
            right=b.counters.get(name, 0),
        )
        for name in names
    ]


def render_comparison(
    left: RunSummary, right: RunSummary, changed_only: bool = False
) -> str:
    """The ``repro runs compare`` table."""
    all_deltas = compare_runs(left, right)
    deltas = (
        [d for d in all_deltas if d.delta != 0]
        if changed_only
        else all_deltas
    )
    lines = [
        f"comparing {left.run_id} ({left.command or '?'}, "
        f"{_fmt_elapsed(left.elapsed_seconds)}) -> {right.run_id} "
        f"({right.command or '?'}, {_fmt_elapsed(right.elapsed_seconds)})"
    ]
    if (
        left.elapsed_seconds is not None
        and right.elapsed_seconds is not None
        and left.elapsed_seconds > 0
    ):
        ratio = right.elapsed_seconds / left.elapsed_seconds
        lines.append(f"wall-clock ratio: {ratio:.3f}x")
    if not deltas:
        lines.append(
            "(every counter identical)"
            if all_deltas
            else "(no counters recorded in either run)"
        )
        return "\n".join(lines)
    width = max(len(d.name) for d in deltas)
    lines.append(
        f"  {'counter':<{width}}  {'left':>14}  {'right':>14}  {'delta':>14}"
    )
    for d in deltas:
        marker = "" if d.delta == 0 else "  *"
        lines.append(
            f"  {d.name:<{width}}  {d.left:>14,}  {d.right:>14,}  "
            f"{d.delta:>+14,}{marker}"
        )
    return "\n".join(lines)
