"""Sparse multivariate polynomials over exact rationals.

Theorem 4.1 makes the oblivious winning probability a *multilinear*
polynomial in the probability vector ``alpha = (alpha_1 .. alpha_n)``,
and Corollary 4.2's optimality conditions are its partial derivatives.
This module represents such polynomials exactly so the paper's
symbolic objects -- not just their evaluations -- can be constructed
and checked:

* the winning probability as a polynomial in ``n`` variables;
* the gradient system of Corollary 4.2;
* Lemma 4.5's exchange argument (the difference ``dP/dalpha_j -
  dP/dalpha_k`` factors through ``(alpha_k - alpha_j)``), verified by
  exact polynomial division.

Representation: a dict from exponent tuples to coefficients.  Only the
operations the reproduction needs are implemented (ring arithmetic,
partial derivatives, substitution, evaluation); this is not a general
computer-algebra system.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Sequence, Tuple

from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["MultiPoly"]

Monomial = Tuple[int, ...]


class MultiPoly:
    """An immutable sparse polynomial in a fixed number of variables."""

    __slots__ = ("_nvars", "_terms")

    def __init__(
        self,
        nvars: int,
        terms: Mapping[Monomial, RationalLike] = (),
    ):
        if nvars < 0:
            raise ValueError(f"nvars must be >= 0, got {nvars}")
        self._nvars = nvars
        clean: Dict[Monomial, Fraction] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for exponents, coefficient in items:
            key = tuple(int(e) for e in exponents)
            if len(key) != nvars:
                raise ValueError(
                    f"monomial {key} has {len(key)} exponents, "
                    f"expected {nvars}"
                )
            if any(e < 0 for e in key):
                raise ValueError(f"negative exponent in {key}")
            value = as_fraction(coefficient)
            if value == 0:
                continue
            clean[key] = clean.get(key, Fraction(0)) + value
            if clean[key] == 0:
                del clean[key]
        self._terms: Dict[Monomial, Fraction] = clean

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, nvars: int) -> "MultiPoly":
        return cls(nvars)

    @classmethod
    def constant(cls, nvars: int, value: RationalLike) -> "MultiPoly":
        return cls(nvars, {tuple([0] * nvars): as_fraction(value)})

    @classmethod
    def variable(cls, nvars: int, index: int) -> "MultiPoly":
        """The polynomial ``x_index``."""
        if not 0 <= index < nvars:
            raise ValueError(f"variable index {index} out of range")
        exponents = [0] * nvars
        exponents[index] = 1
        return cls(nvars, {tuple(exponents): Fraction(1)})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvars(self) -> int:
        return self._nvars

    @property
    def terms(self) -> Dict[Monomial, Fraction]:
        return dict(self._terms)

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self._terms

    def total_degree(self) -> int:
        """Largest monomial total degree; -1 for the zero polynomial."""
        if not self._terms:
            return -1
        return max(sum(m) for m in self._terms)

    def degree_in(self, index: int) -> int:
        """Largest exponent of variable *index*; -1 for zero."""
        if not self._terms:
            return -1
        return max(m[index] for m in self._terms)

    def is_multilinear(self) -> bool:
        """Every variable appears with exponent at most 1."""
        return all(
            all(e <= 1 for e in monomial) for monomial in self._terms
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "MultiPoly":
        if isinstance(other, MultiPoly):
            if other._nvars != self._nvars:
                raise ValueError(
                    f"variable-count mismatch: {self._nvars} vs "
                    f"{other._nvars}"
                )
            return other
        return MultiPoly.constant(self._nvars, other)

    def __add__(self, other) -> "MultiPoly":
        other = self._coerce(other)
        merged = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            merged[monomial] = (
                merged.get(monomial, Fraction(0)) + coefficient
            )
        return MultiPoly(self._nvars, merged)

    __radd__ = __add__

    def __neg__(self) -> "MultiPoly":
        return MultiPoly(
            self._nvars,
            {m: -c for m, c in self._terms.items()},
        )

    def __sub__(self, other) -> "MultiPoly":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "MultiPoly":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "MultiPoly":
        other = self._coerce(other)
        product: Dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                key = tuple(a + b for a, b in zip(m1, m2))
                product[key] = product.get(key, Fraction(0)) + c1 * c2
        return MultiPoly(self._nvars, product)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Calculus and substitution
    # ------------------------------------------------------------------
    def partial(self, index: int) -> "MultiPoly":
        """Partial derivative with respect to variable *index*."""
        if not 0 <= index < self._nvars:
            raise ValueError(f"variable index {index} out of range")
        result: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._terms.items():
            e = monomial[index]
            if e == 0:
                continue
            lowered = list(monomial)
            lowered[index] = e - 1
            key = tuple(lowered)
            result[key] = result.get(key, Fraction(0)) + coefficient * e
        return MultiPoly(self._nvars, result)

    def substitute(self, index: int, value: RationalLike) -> "MultiPoly":
        """Fix variable *index* to *value* (result keeps all slots)."""
        v = as_fraction(value)
        result: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._terms.items():
            scaled = coefficient * v ** monomial[index]
            if scaled == 0:
                continue
            lowered = list(monomial)
            lowered[index] = 0
            key = tuple(lowered)
            result[key] = result.get(key, Fraction(0)) + scaled
        return MultiPoly(self._nvars, result)

    def swap_variables(self, i: int, j: int) -> "MultiPoly":
        """The polynomial with variables *i* and *j* exchanged."""
        result: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._terms.items():
            swapped = list(monomial)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            key = tuple(swapped)
            result[key] = result.get(key, Fraction(0)) + coefficient
        return MultiPoly(self._nvars, result)

    def __call__(self, point: Sequence[RationalLike]) -> Fraction:
        """Exact evaluation at *point*."""
        if len(point) != self._nvars:
            raise ValueError(
                f"point has {len(point)} coordinates, expected {self._nvars}"
            )
        values = [as_fraction(v) for v in point]
        total = Fraction(0)
        for monomial, coefficient in self._terms.items():
            term = coefficient
            for v, e in zip(values, monomial):
                if e:
                    term *= v**e
            total += term
        return total

    # ------------------------------------------------------------------
    # Comparison / rendering
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, MultiPoly):
            return (
                self._nvars == other._nvars
                and self._terms == other._terms
            )
        if isinstance(other, (int, Fraction)):
            return self == MultiPoly.constant(self._nvars, other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._nvars, frozenset(self._terms.items())))

    def __repr__(self) -> str:
        return (
            f"MultiPoly(nvars={self._nvars}, "
            f"terms={len(self._terms)})"
        )

    def pretty(self, names: Sequence[str] = ()) -> str:
        """Readable rendering, monomials in lexicographic order."""
        if not self._terms:
            return "0"
        if not names:
            names = [f"a{i + 1}" for i in range(self._nvars)]
        parts = []
        for monomial in sorted(self._terms, reverse=True):
            coefficient = self._terms[monomial]
            factors = [
                (names[i] if e == 1 else f"{names[i]}^{e}")
                for i, e in enumerate(monomial)
                if e
            ]
            body = "*".join(factors) if factors else ""
            if body:
                text = (
                    body
                    if abs(coefficient) == 1
                    else f"{abs(coefficient)}*{body}"
                )
            else:
                text = str(abs(coefficient))
            sign = "-" if coefficient < 0 else "+"
            parts.append((sign, text))
        first_sign, first_text = parts[0]
        rendered = (
            f"-{first_text}" if first_sign == "-" else first_text
        )
        for sign, text in parts[1:]:
            rendered += f" {sign} {text}"
        return rendered
