"""Property and metamorphic tests for the result-integrity subsystem.

Seeded randomized checks of the mathematical invariants the contracts
encode -- CDF shape, pdf/cdf consistency, the alpha <-> 1 - alpha
symmetry, volume route agreement -- plus direct tests of the contract
machinery, the typed exception hierarchy, and the certified float fast
path (including its forced-fallback regime).  Pure standard library:
the random cases come from a seeded :class:`random.Random`.
"""

import math
import random
from fractions import Fraction

import pytest

from repro.core.oblivious import oblivious_winning_probability
from repro.errors import (
    ContractViolation,
    NumericalInstabilityError,
    ReproError,
    ResultsStoreError,
    ValidationError,
)
from repro.geometry.volume import (
    intersection_volume,
    intersection_volume_by_integration,
    intersection_volume_fast,
)
from repro.observability import use_instrumentation
from repro.probability.uniform_sums import (
    irwin_hall_cdf,
    irwin_hall_cdf_fast,
    irwin_hall_pdf,
    sum_uniform_cdf,
    sum_uniform_cdf_fast,
    sum_uniform_pdf,
    sum_uniform_tail_cdf,
)
from repro.validation.contracts import (
    check_cdf_profile,
    check_probability,
    check_symmetry,
    contracts_enabled,
    contracts_strict,
    disable_contracts,
    enable_contracts,
    use_contracts,
    violation_count,
)
from repro.validation.fastpath import (
    certified_alternating_sum,
    neumaier_sum,
)


def random_fraction(rng, lo=0, hi=1, denominator=64):
    """A random Fraction in [lo, hi] with a bounded denominator."""
    span = hi - lo
    return Fraction(lo) + span * Fraction(
        rng.randint(0, denominator), denominator
    )


class TestExceptionHierarchy:
    def test_all_root_at_repro_error(self):
        for exc_type in (
            ValidationError,
            ContractViolation,
            NumericalInstabilityError,
            ResultsStoreError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_backwards_compatible_bases(self):
        # Code written against the old bare-ValueError behaviour must
        # keep working after the migration to typed errors.
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ResultsStoreError, ValueError)
        assert issubclass(NumericalInstabilityError, ArithmeticError)
        assert not issubclass(ContractViolation, ValueError)

    def test_contract_violation_carries_contract_name(self):
        exc = ContractViolation("my_contract", "value out of range")
        assert exc.contract == "my_contract"
        assert "my_contract" in str(exc)

    def test_results_store_reexport(self):
        from repro.simulation import results_store

        assert results_store.ResultsStoreError is ResultsStoreError

    def test_numeric_layers_raise_validation_error(self):
        with pytest.raises(ValidationError):
            sum_uniform_cdf(1, [-1])
        with pytest.raises(ValidationError):
            irwin_hall_cdf(1, -1)
        with pytest.raises(ValidationError):
            oblivious_winning_probability(1, [Fraction(3, 2)])
        with pytest.raises(ValidationError):
            intersection_volume([1], [1, 1])


class TestContractMachinery:
    def test_disabled_by_default(self):
        assert not contracts_enabled()
        assert not contracts_strict()
        # Checks are no-ops while disabled: nothing raised, nothing
        # counted, the value passes straight through.
        assert check_probability("x", Fraction(7)) == Fraction(7)
        check_symmetry("x", 1, 2)

    def test_enable_disable(self):
        enable_contracts()
        try:
            assert contracts_enabled()
            assert not contracts_strict()
        finally:
            disable_contracts()
        assert not contracts_enabled()

    def test_non_strict_counts_without_raising(self):
        with use_contracts(strict=False):
            check_probability("bad_prob", Fraction(3, 2))
            check_symmetry("bad_sym", 1, 2)
            assert violation_count() == 2

    def test_strict_raises(self):
        with use_contracts(strict=True):
            with pytest.raises(ContractViolation) as info:
                check_probability("bad_prob", Fraction(-1))
            assert info.value.contract == "bad_prob"

    def test_use_contracts_restores_state(self):
        with use_contracts(strict=True):
            assert contracts_strict()
            with use_contracts(strict=False):
                assert contracts_enabled() and not contracts_strict()
            assert contracts_strict()
        assert not contracts_enabled()

    def test_violations_land_in_metrics(self):
        with use_instrumentation() as instr:
            with use_contracts(strict=False):
                check_probability("bad_prob", Fraction(2))
        assert instr.metrics.counter_value("contracts.violations") == 1
        assert (
            instr.metrics.counter_value("contracts.violations.bad_prob")
            == 1
        )

    def test_clean_checks_count_nothing(self):
        with use_contracts(strict=True):
            check_probability("ok", Fraction(1, 2))
            check_symmetry("ok", Fraction(1, 3), Fraction(1, 3))
            assert violation_count() == 0

    def test_check_cdf_profile_catches_bad_boundary(self):
        with use_contracts(strict=True):
            with pytest.raises(ContractViolation):
                check_cdf_profile(
                    "bad_cdf",
                    lambda t: Fraction(1, 2),
                    [Fraction(0), Fraction(1)],
                    lower_boundary=Fraction(0),
                )


class TestCdfShapeProperties:
    """Randomized: every Lemma 2.4 CDF is monotone, in [0, 1], with
    pinned boundary values -- checked through the contract machinery in
    strict mode, so a violation fails loudly."""

    def test_random_grids(self):
        rng = random.Random(1234)
        with use_contracts(strict=True):
            for _ in range(25):
                m = rng.randint(1, 4)
                uppers = [
                    random_fraction(rng, Fraction(1, 4), 2)
                    for _ in range(m)
                ]
                uppers = [u for u in uppers if u > 0] or [Fraction(1)]
                span = sum(uppers)
                grid = sorted(
                    random_fraction(rng, -1, span + 1, denominator=128)
                    for _ in range(12)
                )
                grid = [-Fraction(1)] + grid + [span + 1]
                check_cdf_profile(
                    "lemma_2_4_shape",
                    lambda t, u=uppers: sum_uniform_cdf(t, u),
                    grid,
                    lower_boundary=Fraction(0),
                    upper_boundary=Fraction(1),
                )
            assert violation_count() == 0

    def test_irwin_hall_grid(self):
        with use_contracts(strict=True):
            for m in (1, 2, 3, 5, 8):
                grid = [Fraction(k, 4) for k in range(-4, 4 * m + 5)]
                check_cdf_profile(
                    "irwin_hall_shape",
                    lambda t, mm=m: irwin_hall_cdf(t, mm),
                    grid,
                    lower_boundary=Fraction(0),
                    upper_boundary=Fraction(1),
                )
            assert violation_count() == 0


class TestPdfCdfConsistency:
    """The Lemma 2.5 density is the derivative of the Lemma 2.4 CDF:
    exact central differences converge at O(h^2) away from knots."""

    H = Fraction(1, 10**4)
    TOL = Fraction(1, 10**6)

    def _check(self, t, cdf, pdf):
        h = self.H
        quotient = (cdf(t + h) - cdf(t - h)) / (2 * h)
        assert abs(quotient - pdf(t)) <= self.TOL

    def test_irwin_hall(self):
        rng = random.Random(99)
        for _ in range(10):
            m = rng.randint(3, 6)
            # Stay 2h away from the integer knots, where the cdf is
            # only C^(m-1).
            t = rng.randint(0, m - 1) + random_fraction(
                rng, Fraction(1, 10), Fraction(9, 10)
            )
            self._check(
                t,
                lambda x, mm=m: irwin_hall_cdf(x, mm),
                lambda x, mm=m: irwin_hall_pdf(x, mm),
            )

    def test_general_uppers(self):
        rng = random.Random(7)
        for _ in range(10):
            m = rng.randint(3, 5)
            uppers = [
                random_fraction(rng, Fraction(1, 2), 2)
                for _ in range(m)
            ]
            knots = set()
            for size in range(m + 1):
                import itertools

                for subset in itertools.combinations(uppers, size):
                    knots.add(sum(subset, Fraction(0)))
            span = sum(uppers)
            t = random_fraction(
                rng, Fraction(1, 10), span - Fraction(1, 10),
                denominator=997,
            )
            if any(abs(t - knot) <= 2 * self.H for knot in knots):
                continue
            self._check(
                t,
                lambda x, u=uppers: sum_uniform_cdf(x, u),
                lambda x, u=uppers: sum_uniform_pdf(x, u),
            )


class TestObliviousSymmetry:
    """Relabelling the bins maps alpha -> 1 - alpha and leaves the
    winning probability unchanged (both bins have capacity delta)."""

    def test_random_profiles(self):
        rng = random.Random(4321)
        with use_contracts(strict=True):
            for _ in range(15):
                n = rng.randint(1, 5)
                t = random_fraction(rng, Fraction(1, 4), n)
                alphas = [random_fraction(rng) for _ in range(n)]
                mirrored = [1 - a for a in alphas]
                assert oblivious_winning_probability(
                    t, alphas
                ) == oblivious_winning_probability(t, mirrored)
            assert violation_count() == 0


class TestVolumeRouteAgreement:
    """Proposition 2.2 against the recursive-integration witness, and
    the subadditivity contract on randomized simplex/box pairs."""

    def test_random_cases(self):
        rng = random.Random(2718)
        with use_contracts(strict=True):
            for _ in range(10):
                m = rng.randint(1, 3)
                sigma = [
                    random_fraction(rng, Fraction(1, 4), 2)
                    for _ in range(m)
                ]
                pi = [
                    random_fraction(rng, Fraction(1, 4), Fraction(3, 2))
                    for _ in range(m)
                ]
                assert intersection_volume(
                    sigma, pi
                ) == intersection_volume_by_integration(sigma, pi)
            assert violation_count() == 0


class TestFastPathCertificate:
    def test_neumaier_sum_matches_fsum(self):
        rng = random.Random(5)
        values = [rng.uniform(-1, 1) * 10 ** rng.randint(-8, 8)
                  for _ in range(200)]
        total, abs_sum = neumaier_sum(values)
        assert total == pytest.approx(math.fsum(values), abs=1e-12)
        assert abs_sum == pytest.approx(sum(abs(v) for v in values))

    def test_certified_matches_exact_when_it_claims_to(self):
        rng = random.Random(31)
        for _ in range(30):
            m = rng.randint(1, 6)
            uppers = [
                random_fraction(rng, Fraction(1, 4), 2)
                for _ in range(m)
            ]
            t = random_fraction(
                rng, Fraction(1, 8), sum(uppers), denominator=256
            )
            exact = float(sum_uniform_cdf(t, uppers))
            try:
                fast = sum_uniform_cdf_fast(
                    t, uppers, fallback="raise"
                )
            except NumericalInstabilityError:
                continue  # honest refusal: the exact path takes over
            assert abs(fast - exact) <= max(1e-9, 1e-9 * exact) + 1e-12

    def test_irwin_hall_fast_small_m(self):
        for m in (1, 2, 3, 5, 10):
            for num in range(1, 4 * m, 3):
                t = Fraction(num, 4)
                exact = float(irwin_hall_cdf(t, m))
                fast = irwin_hall_cdf_fast(t, m, fallback="raise")
                assert fast == pytest.approx(exact, rel=1e-9, abs=1e-12)

    def test_irwin_hall_cancellation_forces_fallback(self):
        # At central t and large m the alternating terms dwarf the
        # result; the bound must refuse to certify rather than return
        # garbage.
        with pytest.raises(NumericalInstabilityError):
            irwin_hall_cdf_fast(25, 50, fallback="raise")

    def test_transparent_fallback_matches_exact(self):
        exact = float(irwin_hall_cdf(25, 50))
        assert irwin_hall_cdf_fast(25, 50) == pytest.approx(
            exact, abs=1e-12
        )

    def test_fallbacks_visible_in_metrics(self):
        with use_instrumentation() as instr:
            irwin_hall_cdf_fast(Fraction(3, 2), 3)  # certifies
            irwin_hall_cdf_fast(25, 50)  # falls back
        assert instr.metrics.counter_value("fastpath.calls") == 2
        assert instr.metrics.counter_value("fastpath.certified") == 1
        assert instr.metrics.counter_value("fastpath.fallbacks") == 1
        assert (
            instr.metrics.counter_value(
                "fastpath.fallbacks.irwin_hall_cdf"
            )
            == 1
        )

    def test_volume_fast_matches_exact(self):
        rng = random.Random(17)
        for _ in range(10):
            m = rng.randint(1, 4)
            sigma = [
                random_fraction(rng, Fraction(1, 2), 2)
                for _ in range(m)
            ]
            pi = [
                random_fraction(rng, Fraction(1, 4), 1)
                for _ in range(m)
            ]
            exact = float(intersection_volume(sigma, pi))
            fast = intersection_volume_fast(sigma, pi)
            assert fast == pytest.approx(exact, rel=1e-9, abs=1e-12)

    def test_certifier_input_validation(self):
        with pytest.raises(ValueError):
            certified_alternating_sum([], 0, 1.0)
        with pytest.raises(ValueError):
            certified_alternating_sum([], 1, 0.0)
        with pytest.raises(ValueError):
            sum_uniform_cdf_fast(1, [1, 1], fallback="sometimes")


class TestBoundaryConventions:
    """The documented behaviour at the edges of every CDF's support."""

    def test_sum_uniform_cdf_edges(self):
        assert sum_uniform_cdf(0, [1, 2]) == 0
        assert sum_uniform_cdf(-5, [1, 2]) == 0
        assert sum_uniform_cdf(3, [1, 2]) == 1
        assert sum_uniform_cdf(100, [1, 2]) == 1
        # Empty sum: the constant 0.
        assert sum_uniform_cdf(0, []) == 1
        assert sum_uniform_cdf(Fraction(-1, 10**9), []) == 0

    def test_irwin_hall_edges(self):
        assert irwin_hall_cdf(0, 3) == 0
        assert irwin_hall_cdf(3, 3) == 1
        assert irwin_hall_cdf(0, 0) == 1
        assert irwin_hall_cdf(-1, 0) == 0
        assert irwin_hall_cdf_fast(0, 3) == 0.0
        assert irwin_hall_cdf_fast(3, 3) == 1.0
        assert irwin_hall_cdf_fast(1, 0) == 1.0

    def test_zero_width_intervals(self):
        # Zero-width entries are the constant 0 and drop out.
        assert sum_uniform_cdf(Fraction(1, 2), [1, 0, 0]) == Fraction(1, 2)
        assert sum_uniform_cdf_fast(0.5, [1, 0]) == pytest.approx(0.5)
        assert sum_uniform_pdf(Fraction(1, 2), [1, 0]) == 1
        # An all-zero-width list is a point mass: CDF jumps at 0, and
        # there is no density to return.
        assert sum_uniform_cdf(0, [0, 0]) == 1
        assert sum_uniform_cdf(Fraction(-1, 100), [0, 0]) == 0
        with pytest.raises(ValidationError):
            sum_uniform_pdf(1, [0, 0])

    def test_tail_cdf_edges(self):
        lowers = [Fraction(1, 4), Fraction(1, 2)]
        floor = sum(lowers)
        assert sum_uniform_tail_cdf(floor, lowers) == 0
        assert sum_uniform_tail_cdf(2, lowers) == 1
        assert sum_uniform_tail_cdf(5, lowers) == 1
        assert sum_uniform_tail_cdf(1, []) == 1
        # lowers[i] = 1 is an atom at the boundary -- rejected, not
        # silently resolved by a convention.
        with pytest.raises(ValidationError):
            sum_uniform_tail_cdf(1, [1])

    def test_tail_cdf_matches_reflection(self):
        rng = random.Random(55)
        for _ in range(10):
            m = rng.randint(1, 3)
            lowers = [
                random_fraction(rng, 0, Fraction(3, 4)) for _ in range(m)
            ]
            t = random_fraction(rng, 0, m, denominator=128)
            direct = sum_uniform_tail_cdf(t, lowers)
            reflected = 1 - sum_uniform_cdf(
                m - t, [1 - v for v in lowers]
            )
            assert direct == reflected
