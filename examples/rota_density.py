"""Lemma 2.5: "a nice formula for the density of n independent,
uniformly distributed random variables" (Rota's research problem).

Prints the exact density of sums of uniforms on assorted interval
systems, checks it against a histogram of actual samples, and renders
the curves.

Run:  python examples/rota_density.py
"""

from fractions import Fraction

import numpy as np

from repro.experiments.report import render_ascii_plot
from repro.probability.distributions import SumOfUniforms, Uniform
from repro.probability.uniform_sums import sum_uniform_pdf


def density_curve(uppers, points=81):
    span = sum(uppers)
    xs = [span * Fraction(i, points - 1) for i in range(points)]
    return [(float(x), float(sum_uniform_pdf(x, uppers))) for x in xs]


def histogram_check(uppers, seed=0, samples=400_000, bins=40) -> float:
    """Max absolute deviation between the exact density and a histogram."""
    rng = np.random.default_rng(seed)
    draws = np.zeros(samples)
    for u in uppers:
        draws += rng.uniform(0, float(u), samples)
    span = float(sum(uppers))
    hist, edges = np.histogram(draws, bins=bins, range=(0, span), density=True)
    worst = 0.0
    for height, lo, hi in zip(hist, edges, edges[1:]):
        mid = Fraction((lo + hi) / 2).limit_denominator(10**6)
        exact = float(sum_uniform_pdf(mid, [Fraction(u) for u in uppers]))
        worst = max(worst, abs(height - exact))
    return worst


def main() -> None:
    cases = {
        "2 x U[0,1] (triangle)": [Fraction(1), Fraction(1)],
        "3 x U[0,1] (Irwin-Hall)": [Fraction(1)] * 3,
        "U[0,1] + U[0,1/2] + U[0,1/4]": [
            Fraction(1),
            Fraction(1, 2),
            Fraction(1, 4),
        ],
    }
    series = [(label, density_curve(uppers)) for label, uppers in cases.items()]
    print(
        render_ascii_plot(
            series,
            width=64,
            height=16,
            title="Exact densities via Lemma 2.5",
        )
    )
    print()
    for label, uppers in cases.items():
        worst = histogram_check(uppers)
        print(
            f"{label}: max |histogram - exact density| = {worst:.4f} "
            f"({'ok' if worst < 0.05 else 'SUSPICIOUS'})"
        )

    # shifted intervals through the object layer
    print()
    mix = SumOfUniforms(
        [Uniform(Fraction(1, 4), 1), Uniform(Fraction(1, 2), 1)]
    )
    lo, hi = mix.support
    print(
        f"U[1/4,1] + U[1/2,1]: support [{lo}, {hi}], "
        f"mean {mix.mean}, variance {mix.variance}"
    )
    mid = (lo + hi) / 2
    print(f"density at the midpoint {mid}: {mix.pdf(mid)}")


if __name__ == "__main__":
    main()
