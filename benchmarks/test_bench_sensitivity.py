"""E10 -- the capacity landscape (extension).

Maps ``P*_threshold(delta) - P_coin(delta)`` for n = 3, 4, 5 over a
capacity grid and locates the exact crossover capacities where the
fair coin overtakes the best threshold -- placing the paper's two
worked points (and discrepancy D2) on one curve.
"""

from fractions import Fraction

from conftest import record

from repro.experiments.sensitivity import (
    find_improvement_crossover,
    sensitivity_curve,
)

GRID = [Fraction(i, 8) for i in range(3, 17)]  # 3/8 .. 2


def test_bench_sensitivity_curves(benchmark):
    def build():
        return {n: sensitivity_curve(n, GRID) for n in (3, 4, 5)}

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    for n, points in curves.items():
        sign_pattern = "".join(
            "+" if p.improvement > 0 else ("0" if p.improvement == 0 else "-")
            for p in points
        )
        record(f"improvement signs n={n}", deltas="3/8..2", signs=sign_pattern)
        # both optima increase with capacity
        values = [p.threshold_value for p in points]
        assert values == sorted(values)

    # paper anchors on the curve
    n4 = {p.delta: p for p in curves[4]}
    assert n4[Fraction(1)].improvement > 0
    # the D2 point delta = 4/3 is on the grid (8/6 not in eighths) --
    # check the nearest grid point past the crossover instead
    assert n4[Fraction(11, 8)].improvement < 0


def test_bench_crossover_location(benchmark):
    def solve():
        return find_improvement_crossover(
            4, 1, Fraction(4, 3), Fraction(1, 10**4)
        )

    crossover = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert crossover is not None
    assert abs(float(crossover) - 1.3231) < 1e-3
    record(
        "E10 n=4 coin-overtakes-threshold crossover",
        delta_star=f"{float(crossover):.5f}",
        paper_point="4/3 ~ 1.3333 (past the crossover: D2)",
    )
