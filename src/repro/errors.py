"""The typed exception hierarchy of the package.

Every predictable failure raised by ``repro`` code derives from
:class:`ReproError`, so callers (and the CLI) can distinguish "the
library rejected your request or detected an internal problem" from a
genuine bug surfacing as an arbitrary exception.  The hierarchy:

``ReproError``
    root of everything the package raises deliberately;
``ValidationError`` (also a :class:`ValueError`)
    a caller-supplied argument was rejected -- out-of-range
    probabilities, non-positive sides, dimension mismatches.  The CLI
    maps it to exit code 2 with a one-line message;
``ContractViolation``
    a runtime invariant of :mod:`repro.validation.contracts` failed in
    strict mode -- a computed probability left ``[0, 1]``, a CDF lost
    monotonicity, a volume exceeded its subadditive cap.  Unlike
    ``ValidationError`` this signals a defect *inside* the library,
    not bad input;
``NumericalInstabilityError`` (also an :class:`ArithmeticError`)
    the guarded float fast path could not certify its error bound and
    the caller forbade the exact fallback;
``ResultsStoreError`` (also a :class:`ValueError`)
    a stored sweep file could not be read back (re-exported by
    :mod:`repro.simulation.results_store`, its historical home);
``PiecewiseDomainError`` (also a :class:`ValueError`)
    a piecewise polynomial was built from a malformed piece layout --
    zero-width or inverted pieces, non-contiguous intervals,
    out-of-order breakpoints -- or evaluated outside its domain.  Such
    layouts used to be accepted silently and then mis-dispatched at
    shared breakpoints; they are now rejected at construction time;
``ServeError`` (also a :class:`RuntimeError`)
    the serving layer could not start or keep serving -- an unbindable
    address, an invalid serve configuration.  Per-request trouble is
    *handled* (shed with 429, degraded with an explicit bound, drained
    on shutdown) and never raises; this error is for the failures that
    end the process.  The CLI maps it to exit code 9;
``DistributedError`` (also a :class:`RuntimeError`)
    the coordinator/worker transport failed in a way the protocol
    could not absorb -- an unreachable coordinator, an incompatible
    protocol version, a payload whose digest did not verify.  Frame
    corruption and connection loss are *handled* (retry, lease
    reassignment, local degradation) and only surface as telemetry;
    this error is for the cases with no recovery path left;
``RunInterruptedError`` (also a :class:`RuntimeError`)
    a coordinator run was cut short by SIGTERM/SIGINT *after* a
    graceful drain -- outstanding leases returned, connected workers
    told to drain, the checkpoint finalized -- so a re-run with
    ``--resume`` picks up exactly where the signal landed.  Carries
    the signal number; the CLI exits with ``128 + signum`` (the shell
    convention: 130 for SIGINT, 143 for SIGTERM).

``ValidationError``, ``ResultsStoreError`` and ``PiecewiseDomainError``
keep :class:`ValueError` as a base so code written against the old
bare-``ValueError`` behaviour -- including every pre-existing test --
continues to work.
"""

from __future__ import annotations

__all__ = [
    "ContractViolation",
    "DistributedError",
    "NumericalInstabilityError",
    "PiecewiseDomainError",
    "ReproError",
    "ResultsStoreError",
    "RunInterruptedError",
    "ServeError",
    "ValidationError",
]


class ReproError(Exception):
    """Root of every deliberate failure raised by the package."""


class ValidationError(ReproError, ValueError):
    """A caller-supplied argument was rejected.

    Raised by the ``_validated_*`` helpers throughout the numeric
    layers and by CLI argument handling.  Subclasses
    :class:`ValueError` for backwards compatibility."""


class ContractViolation(ReproError):
    """A runtime invariant failed in strict contract mode.

    Carries the contract name and the offending value so operators can
    tell *which* invariant broke without reading a traceback."""

    def __init__(self, contract: str, message: str):
        super().__init__(f"contract {contract!r} violated: {message}")
        self.contract = contract


class NumericalInstabilityError(ReproError, ArithmeticError):
    """The guarded float fast path could not certify its result.

    Raised only when the caller explicitly forbids the exact
    ``Fraction`` fallback (``fallback="raise"``); the default policy
    falls back silently and counts the event in the metrics."""


class PiecewiseDomainError(ReproError, ValueError):
    """A piecewise polynomial's piece layout is malformed.

    Raised by :mod:`repro.symbolic.piecewise` for zero-width or
    inverted pieces, non-contiguous layouts, out-of-order breakpoint
    sequences, and evaluation outside the domain.  Before this class
    existed some of these layouts were accepted silently and a point
    on a shared breakpoint could dispatch into a zero-width piece.
    Subclasses :class:`ValueError` so callers written against the old
    bare-``ValueError`` behaviour keep working."""


class DistributedError(ReproError, RuntimeError):
    """The distributed transport failed beyond what the protocol's
    recovery ladder (frame retries, lease reassignment, local
    degradation) can absorb.

    Subclassed in :mod:`repro.distributed.protocol` by the specific
    failure modes (unreachable coordinator, protocol mismatch, payload
    digest mismatch).  Subclasses :class:`RuntimeError` to match the
    fault-tolerance layer's convention."""


class RunInterruptedError(ReproError, RuntimeError):
    """A coordinator run was stopped by a signal after a graceful drain.

    Raised by
    :func:`repro.distributed.estimate_winning_probability_distributed`
    when SIGTERM or SIGINT arrives mid-phase: the coordinator stops
    granting, tells connected workers to drain, returns outstanding
    leases, and finalizes the run checkpoint before this error
    surfaces -- every shard completed before the signal is durable and
    a re-run with ``--resume`` continues from it.  ``signum`` carries
    the signal; the CLI exits ``128 + signum`` (130 for SIGINT, 143
    for SIGTERM, the shell convention)."""

    def __init__(
        self, signum: int, completed_shards: int, total_shards: int
    ):
        import signal as _signal

        try:
            name = _signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(
            f"run interrupted by {name} after graceful drain "
            f"({completed_shards}/{total_shards} shard(s) completed "
            f"and checkpointed)"
        )
        self.signum = signum
        self.completed_shards = completed_shards
        self.total_shards = total_shards


class ServeError(ReproError, RuntimeError):
    """The serving layer could not start or keep serving.

    Raised by :mod:`repro.serve` for process-ending failures only --
    an address that cannot be bound, an invalid configuration.
    Per-request failure modes (overload, exhausted deadline budgets,
    injected faults) are absorbed by admission control and the
    degradation ladder and never surface as exceptions.  The CLI maps
    this to exit code 9."""


class ResultsStoreError(ReproError, ValueError):
    """A stored sweep file could not be read back.

    Raised by :func:`repro.simulation.results_store.load_sweep` for
    every failure mode a reader should handle uniformly -- a missing
    file, truncated or corrupted JSON, or a payload that parses but
    violates the schema.  The message always names the offending path.
    Subclasses :class:`ValueError` so callers written against the old
    bare-``ValueError`` behaviour keep working."""
