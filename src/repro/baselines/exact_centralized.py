"""Exact centralized feasibility for small systems.

The centralized bound of :mod:`repro.baselines.centralized` is
estimated by Monte Carlo; for ``n <= 3`` the probability that *some*
assignment avoids overflow has a closed form, derived here and used to
sharpen the value-of-information tables.

**n = 1**: feasible iff ``x <= delta``; probability ``min(delta, 1)``.

**n = 2**: a partition either separates the items or joins them, and
``x1 + x2 <= delta`` implies both fit individually; so feasibility is
``x1 <= delta and x2 <= delta`` with probability ``min(delta, 1)^2``.

**n = 3**: every 2-partition of three items is a singleton versus a
pair, so the best packing isolates the *largest* item:

``feasible  <=>  max x_i <= delta  and  (sum - max) <= delta``

Conditioning on the maximum ``z`` (density ``3 z^2`` on [0, 1] --
equivalently, integrating over which item is largest):

``P = 3 * integral_0^{min(delta, 1)}  Area{0 <= x, y <= z, x + y <= delta} dz``

and the inner area is exactly the simplex-box volume of
Proposition 2.2 in dimension 2 -- the paper's own machinery closes its
upper bound.  The integral is evaluated exactly with the piecewise
polynomial substrate.
"""

from __future__ import annotations

from fractions import Fraction

from repro.geometry.volume import intersection_volume
from repro.symbolic.piecewise import PiecewisePolynomial
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["centralized_feasibility_exact"]


def _n3_probability(delta: Fraction) -> Fraction:
    """The n = 3 closed form by exact integration over the maximum."""
    upper = min(delta, Fraction(1))
    if upper <= 0:
        return Fraction(0)

    # Area(z) = Vol( {x, y in [0, z], x + y <= delta} ), a piecewise
    # polynomial in z with breakpoints where delta - 2z and delta - z
    # change sign: z = delta / 2 and z = delta.
    breakpoints = {Fraction(0), upper}
    for candidate in (delta / 2, delta):
        if 0 < candidate < upper:
            breakpoints.add(candidate)

    def area_polynomial(mid: Fraction) -> Polynomial:
        # Prop 2.2 in dim 2 with sigma = (delta, delta), pi = (z, z):
        # Vol = (delta^2/2) [ 1 - 2 [z/delta < 1] (1 - z/delta)^2
        #                      + [2z/delta < 1] (1 - 2z/delta)^2 ]
        z = Polynomial.x()
        total = Polynomial.constant(delta**2 / 2)
        if mid < delta:
            total = total - (Polynomial.constant(delta) - z) ** 2
        if 2 * mid < delta:
            total = total + (
                (Polynomial.constant(delta) - 2 * z) ** 2 / 2
            )
        return total

    area = PiecewisePolynomial.from_sampler(
        area_polynomial, sorted(breakpoints)
    )
    total = Fraction(0)
    for piece in area.pieces:
        total += piece.polynomial.integrate(piece.lower, piece.upper)
    return 3 * total


def centralized_feasibility_exact(
    n: int, delta: RationalLike
) -> Fraction:
    """``P(some bin assignment avoids overflow)`` -- exact for ``n <= 3``.

    Raises :class:`NotImplementedError` for larger systems (partitions
    stop being singleton-versus-rest at ``n = 4``); use the Monte Carlo
    estimator there.
    """
    d = as_fraction(delta)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if d <= 0:
        return Fraction(0)
    clipped = min(d, Fraction(1))
    if n == 1:
        return clipped
    if n == 2:
        return clipped**2
    if n == 3:
        return _n3_probability(d)
    raise NotImplementedError(
        "closed form implemented for n <= 3; use "
        "repro.baselines.centralized.centralized_winning_probability"
    )
