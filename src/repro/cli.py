"""Command-line interface: ``repro <command>``.

Commands map one-to-one onto the paper's evaluation artefacts:

* ``repro figure1`` / ``repro figure2`` -- the winning-probability
  curves for ``n = 3, 4, 5`` (ASCII plot + per-curve optima).
* ``repro case --n 3 --delta 1`` -- a Section 5.2 worked case.
* ``repro uniformity`` -- the Theorem 4.3 table across player counts.
* ``repro tradeoff`` -- oblivious vs threshold vs centralized.
* ``repro validate`` -- Monte Carlo validation of the exact formulas.
* ``repro check`` -- the result-integrity oracle: analytic closed
  forms vs independent exact witnesses vs Monte Carlo vs the
  centralized bound, with runtime contracts active (see
  :mod:`repro.validation`).  Disagreement exits with its own code (6)
  so CI can tell an integrity regression from every other failure.

Every subcommand additionally accepts the instrumentation flags
``--profile`` (print a metrics/span report to stderr after the run),
``--metrics-out PATH`` (write the metrics snapshot as JSONL) and
``--trace-out PATH`` (write a Chrome/Perfetto-loadable trace).  The
flags only observe: simulated results are bit-identical with and
without them (see :mod:`repro.observability`).

Caching flags ride on the same shared group: ``--cache-dir DIR``
attaches the persistent exact-kernel cache (see :mod:`repro.cache`)
and ``--no-cache`` disables memoization entirely; both only change
wall-clock time, never values.  ``repro cache stats|clear|warm``
manages the cache itself, and ``repro check`` always runs
cache-*bypassed* so the oracle cross-validates freshly recomputed
values against whatever other runs may have cached.

``repro validate`` further exposes the fault-tolerance machinery of
:mod:`repro.simulation.faulttolerance`: ``--max-retries`` /
``--shard-timeout`` harden long runs, ``--checkpoint`` /``--resume``
survive interruption, and ``--chaos-crash`` deterministically crashes
one shard to exercise recovery.  Predictable failures map to distinct
exit codes (3: checkpoint belongs to a different run; 4: checkpoint
unusable; 5: a shard exhausted its retry budget) with a one-line
message instead of a traceback.

``repro coordinate`` / ``repro work`` run one estimate across machine
boundaries (see :mod:`repro.distributed`): the coordinator serves
shard leases over TCP, workers execute them through the same shard
entry point as the local executors, and the result is bit-identical
to serial under any worker count or injected fault (``--chaos
KIND:SHARD[:SECONDS]`` covers both compute and network kinds).
``--distributed-smoke W`` self-tests the whole stack by spawning
``W`` local worker subprocesses and verifying bit-identity against
the serial engine.  An unrecoverable transport failure exits 8.
"""

from __future__ import annotations

import argparse
import os
import sys
from fractions import Fraction
from pathlib import Path
from typing import List, Optional

from repro.cache import bypass_cache, configure_cache
from repro.errors import (
    ContractViolation,
    DistributedError,
    RunInterruptedError,
    ServeError,
    ValidationError,
)
from repro.experiments.figures import figure1, figure2, render_figure
from repro.experiments.tables import (
    case_study,
    render_case_study,
    render_tradeoff_table,
    render_uniformity_table,
    tradeoff_table,
    uniformity_table,
)
from repro.observability import Instrumentation, use_instrumentation
from repro.observability.dashboard import Dashboard
from repro.observability.events import (
    EventBus,
    counter_samples_from_events,
)
from repro.observability.reporting import (
    render_report,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.observability.runlog import (
    RunStore,
    RunStoreError,
    render_comparison,
    render_run,
)
from repro.observability.runmeta import new_run_context, set_current_run
from repro.simulation.faulttolerance import (
    CheckpointError,
    CheckpointFingerprintError,
    FaultPlan,
    FaultToleranceConfig,
    RetryPolicy,
    ShardRetriesExhaustedError,
)
from repro.simulation.runner import sweep_thresholds

__all__ = ["main"]

#: Exit codes for predictable failures (0 = success, 1 = validation or
#: reproduction mismatch, 2 = argparse usage error).
EXIT_FINGERPRINT_MISMATCH = 3
EXIT_CHECKPOINT_ERROR = 4
EXIT_RETRIES_EXHAUSTED = 5
EXIT_INTEGRITY_MISMATCH = 6
EXIT_PERF_REGRESSION = 7
EXIT_DISTRIBUTED = 8
EXIT_SERVE = 9


def _parse_fraction(text: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as exc:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a rational number (try e.g. 1, 4/3, 0.75)"
        ) from exc


def _observability_parent() -> argparse.ArgumentParser:
    """The shared instrumentation and caching flag groups.

    Built as an ``add_help=False`` parent so every subcommand gains the
    same flags without each declaration being repeated.
    """
    parent = argparse.ArgumentParser(add_help=False)
    cache_group = parent.add_argument_group("caching")
    cache_group.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "persist memoized exact-kernel results to DIR (atomic, "
            "checksummed, invalidated automatically when a formula "
            "changes); also honours the REPRO_CACHE_DIR environment "
            "variable"
        ),
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable all memoization for this run (every kernel value "
            "is recomputed from scratch); also honours REPRO_NO_CACHE"
        ),
    )
    group = parent.add_argument_group("instrumentation")
    group.add_argument(
        "--profile",
        action="store_true",
        help="collect metrics and spans; print a report to stderr",
    )
    group.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the metrics snapshot as JSONL (implies --profile)",
    )
    group.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write spans in Chrome trace-event JSON, loadable in "
            "chrome://tracing or Perfetto (implies --profile)"
        ),
    )
    telemetry = parent.add_argument_group("telemetry")
    telemetry.add_argument(
        "--dashboard",
        action="store_true",
        help=(
            "show a live progress panel on stderr (redrawn in place on "
            "a TTY, plain log lines otherwise); purely observational -- "
            "results are bit-identical with it on or off"
        ),
    )
    telemetry.add_argument(
        "--record-run",
        action="store_true",
        help=(
            "stream this run's telemetry events to the run-history "
            "store and finalise a summary (inspect with "
            "'repro runs list|show|compare')"
        ),
    )
    telemetry.add_argument(
        "--runs-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "root of the run-history store (default .repro/runs; also "
            "honours the REPRO_RUNS_DIR environment variable)"
        ),
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Optimal, Distributed Decision-Making: "
            "The Case of No Communication' (Georgiades, Mavronicolas & "
            "Spirakis, FCT 1999)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = _observability_parent()

    fig1 = sub.add_parser(
        "figure1",
        help="winning probability curves, fixed delta",
        parents=[obs],
    )
    fig1.add_argument(
        "--delta", type=_parse_fraction, default=Fraction(1)
    )
    fig1.add_argument(
        "--ns", type=int, nargs="+", default=[3, 4, 5]
    )

    fig2 = sub.add_parser(
        "figure2",
        help="winning probability curves, scaled delta = n/3",
        parents=[obs],
    )
    fig2.add_argument(
        "--ns", type=int, nargs="+", default=[3, 4, 5]
    )

    case = sub.add_parser(
        "case",
        help="a Section 5.2 worked optimisation",
        parents=[obs],
    )
    case.add_argument("--n", type=int, required=True)
    case.add_argument("--delta", type=_parse_fraction, required=True)

    uni = sub.add_parser(
        "uniformity",
        help="oblivious vs threshold optima across n",
        parents=[obs],
    )
    uni.add_argument(
        "--ns", type=int, nargs="+", default=[2, 3, 4, 5, 6, 7, 8]
    )
    uni.add_argument(
        "--delta", type=_parse_fraction, default=Fraction(1)
    )
    uni.add_argument(
        "--scaled",
        action="store_true",
        help="use delta = n/3 instead of a fixed delta",
    )

    trade = sub.add_parser(
        "tradeoff",
        help="fair coin vs threshold vs centralized",
        parents=[obs],
    )
    trade.add_argument(
        "--ns", type=int, nargs="+", default=[2, 3, 4, 5, 6]
    )
    trade.add_argument(
        "--delta", type=_parse_fraction, default=Fraction(1)
    )
    trade.add_argument("--trials", type=int, default=100_000)
    trade.add_argument("--seed", type=int, default=0)

    everything = sub.add_parser(
        "all",
        help="run every headline check and print the reproduction report",
        parents=[obs],
    )
    everything.add_argument(
        "--exact-only",
        action="store_true",
        help="skip the Monte Carlo checks (seconds instead of minutes)",
    )
    everything.add_argument("--trials", type=int, default=60_000)

    mixture = sub.add_parser(
        "mixture",
        help="the oblivious/non-oblivious continuum (extension E8)",
        parents=[obs],
    )
    mixture.add_argument("--n", type=int, required=True)
    mixture.add_argument("--delta", type=_parse_fraction, required=True)

    export = sub.add_parser(
        "export",
        help="write all experiment records as CSV + manifest.json",
        parents=[obs],
    )
    export.add_argument("--out", default="results")
    export.add_argument("--grid-size", type=int, default=101)

    val = sub.add_parser(
        "validate",
        help="Monte Carlo validation of the exact threshold curve",
        parents=[obs],
    )
    val.add_argument("--n", type=int, default=3)
    val.add_argument("--delta", type=_parse_fraction, default=Fraction(1))
    val.add_argument("--grid-size", type=int, default=11)
    val.add_argument("--trials", type=int, default=100_000)
    val.add_argument("--seed", type=int, default=0)
    val.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "shard each grid point across this many worker processes "
            "(results are identical for any worker count)"
        ),
    )
    fault = val.add_argument_group("fault tolerance")
    fault.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "re-run a failed shard up to K times with exponential "
            "backoff; a retried shard replays its own seed stream, so "
            "results are identical to a failure-free run"
        ),
    )
    fault.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock limit per shard attempt; a timed-out shard "
            "counts against its retry budget"
        ),
    )
    fault.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "stream completed shards to a JSONL checkpoint file "
            "(atomic appends, per-record checksums)"
        ),
    )
    fault.add_argument(
        "--resume",
        action="store_true",
        help=(
            "load matching shards from --checkpoint before running; "
            "only missing or corrupt shards are re-executed"
        ),
    )
    fault.add_argument(
        "--chaos-crash",
        type=int,
        default=None,
        metavar="SHARD",
        help=(
            "chaos mode: deterministically crash the first attempt of "
            "shard SHARD in every grid point (use with --max-retries "
            ">= 1 to exercise recovery; the output must be identical "
            "to a clean run)"
        ),
    )

    swp = sub.add_parser(
        "sweep",
        help="evaluate the threshold curve on a beta grid (exact or batched)",
        parents=[obs],
    )
    swp.add_argument("--n", type=int, default=3)
    swp.add_argument("--delta", type=_parse_fraction, default=Fraction(1))
    swp.add_argument(
        "--grid-size",
        type=int,
        default=1001,
        help="number of evenly spaced beta points (default 1001)",
    )
    swp.add_argument(
        "--batch",
        action="store_true",
        help=(
            "serve the exact column from the vectorised batch layer: "
            "one compiled evaluation of the whole grid, every point "
            "certified or exact-fallback (see docs/architecture.md)"
        ),
    )

    check = sub.add_parser(
        "check",
        help="cross-validate analytic formulas, MC and bounds",
        parents=[obs],
    )
    check.add_argument(
        "--ns", type=int, nargs="+", default=[2, 3, 4]
    )
    check.add_argument(
        "--deltas",
        type=_parse_fraction,
        nargs="+",
        default=[Fraction(1)],
    )
    check.add_argument(
        "--algorithms",
        nargs="+",
        default=["oblivious", "threshold"],
        choices=["oblivious", "threshold"],
    )
    check.add_argument("--trials", type=int, default=20_000)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the Monte Carlo route across worker processes",
    )
    check.add_argument(
        "--z-threshold",
        type=float,
        default=3.89,
        help="maximum tolerated |z| of the MC estimate (default 3.89)",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help=(
            "run contracts in strict mode: the first violated "
            "invariant aborts with exit code 6 instead of only being "
            "counted"
        ),
    )
    check.add_argument(
        "--report-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the machine-readable agreement report as JSON",
    )
    check.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help="retry budget per MC shard (implies sharded execution)",
    )
    check.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit per MC shard attempt",
    )
    check.add_argument(
        "--batch-grid",
        type=int,
        default=0,
        metavar="SIZE",
        help=(
            "also run the batch-vs-exact agreement grid with SIZE "
            "uniform beta points per case (plus every breakpoint and "
            "its float neighbours); disagreement exits with code 6 "
            "like any other integrity failure (0 = skip, the default)"
        ),
    )
    check.add_argument(
        "--inject-analytic-error",
        type=float,
        default=0.0,
        metavar="EPS",
        help=(
            "add EPS to every analytic value before the MC comparison "
            "-- a deliberate bug injection proving the oracle can fail"
        ),
    )
    check.add_argument(
        "--asymptotic-grid",
        action="store_true",
        help=(
            "also force the asymptotic tier through the exact-vs-"
            "asymptotic crossover grid (n ~ 10-20): estimates must "
            "stay within their certified bounds of the exact values "
            "and within the MC z-gate; failure exits with code 6"
        ),
    )
    check.add_argument(
        "--asymptotic-ns",
        type=int,
        nargs="+",
        default=[10, 12, 14, 16, 18, 20],
        metavar="N",
        help="crossover sizes for --asymptotic-grid",
    )
    check.add_argument(
        "--inject-asymptotic-error",
        type=float,
        default=0.0,
        metavar="EPS",
        help=(
            "add EPS to every asymptotic estimate in the "
            "--asymptotic-grid comparison -- the deliberate bug "
            "injection proving that gate can fail"
        ),
    )

    asym = sub.add_parser(
        "asymptotic",
        help=(
            "large-n winning probability and near-optimal threshold "
            "via the certified asymptotic tier"
        ),
        parents=[obs],
    )
    asym.add_argument("--n", type=int, required=True)
    asym.add_argument("--delta", type=_parse_fraction, required=True)
    asym.add_argument(
        "--beta",
        type=_parse_fraction,
        default=None,
        help=(
            "evaluate this common threshold (omit to search for a "
            "near-optimal one)"
        ),
    )
    asym.add_argument(
        "--alpha",
        type=_parse_fraction,
        default=None,
        help="evaluate the symmetric oblivious coin with this alpha",
    )
    asym.add_argument(
        "--method",
        choices=["normal", "edgeworth"],
        default="edgeworth",
        help="asymptotic estimator (default edgeworth)",
    )
    asym.add_argument(
        "--json",
        action="store_true",
        help="emit the result as one JSON object",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect, clear or warm the exact-kernel memoization cache",
        parents=[obs],
    )
    cache.add_argument(
        "action",
        choices=["stats", "clear", "warm", "prune"],
        help=(
            "stats: print tier statistics as JSON; clear: drop every "
            "entry; warm: precompute the standard sweep grids into the "
            "persistent tier (requires --cache-dir or REPRO_CACHE_DIR); "
            "prune: evict oldest entries until the tier fits "
            "--max-bytes"
        ),
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "size bound for the persistent tier: prune evicts "
            "oldest-first down to this total (required for prune; with "
            "other actions, installs the bound for this run so every "
            "write prunes automatically)"
        ),
    )
    cache.add_argument(
        "--ns", type=int, nargs="+", default=[2, 3, 4, 5]
    )
    cache.add_argument(
        "--deltas",
        type=_parse_fraction,
        nargs="+",
        default=[Fraction(1)],
    )
    cache.add_argument(
        "--grid-size",
        type=int,
        default=101,
        help="beta grid resolution used by warm (default 101)",
    )

    runs = sub.add_parser(
        "runs",
        help="inspect the run-history store written by --record-run",
        parents=[obs],
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser(
        "list", help="one line per recorded run, oldest first"
    )
    runs_show = runs_sub.add_parser(
        "show", help="identity, timing and counters of one run"
    )
    runs_show.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run id prefix, directory-name prefix, or 'latest'",
    )
    runs_cmp = runs_sub.add_parser(
        "compare", help="counter-by-counter diff of two recorded runs"
    )
    runs_cmp.add_argument("left", help="baseline run reference")
    runs_cmp.add_argument(
        "right",
        nargs="?",
        default="latest",
        help="candidate run reference (default: latest)",
    )
    runs_cmp.add_argument(
        "--changed-only",
        action="store_true",
        help="hide counters with a zero delta",
    )
    runs_prune = runs_sub.add_parser(
        "prune", help="delete the oldest recorded runs"
    )
    runs_prune.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="number of most recent runs to keep",
    )

    report = sub.add_parser(
        "report",
        help="render a recorded run as a self-contained HTML report",
        parents=[obs],
    )
    report.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run id prefix or 'latest'",
    )
    report.add_argument(
        "--html",
        type=Path,
        required=True,
        metavar="PATH",
        help=(
            "write the report here (single file, inline CSS and SVG, "
            "no external references)"
        ),
    )
    report.add_argument(
        "--bench-root",
        type=Path,
        default=Path("."),
        metavar="DIR",
        help=(
            "directory holding the BENCH_*.json lineage rendered as "
            "sparklines (default: current directory)"
        ),
    )

    bench = sub.add_parser(
        "bench",
        help="perf-regression gate over committed BENCH_*.json artifacts",
        parents=[obs],
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_cmp = bench_sub.add_parser(
        "compare",
        help=(
            "gate CANDIDATE against BASELINE (or BASELINE against its "
            "own committed floor); exits 7 on regression"
        ),
    )
    bench_cmp.add_argument(
        "baseline", type=Path, help="baseline BENCH_*.json artifact"
    )
    bench_cmp.add_argument(
        "candidate",
        type=Path,
        nargs="?",
        default=None,
        help=(
            "candidate artifact to gate (default: re-check the "
            "baseline's own floor)"
        ),
    )
    bench_cmp.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        metavar="R",
        help=(
            "minimum fraction of every baseline speedup the candidate "
            "must retain (default 0.5)"
        ),
    )
    bench_cmp.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        metavar="R",
        help=(
            "maximum multiple of every baseline *_seconds (and the "
            "fallback-rate ceiling) the candidate may reach "
            "(default 2.0)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "answer winning-probability / optimal-strategy queries over "
            "HTTP with admission control, deadline budgets and graceful "
            "degradation"
        ),
        parents=[obs],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port to listen on (0: pick a free port; default 8080)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="K",
        help="requests executing concurrently (default 8)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="K",
        help=(
            "requests allowed to wait for a slot; arrivals beyond it "
            "are shed with 429 (default 16)"
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help=(
            "per-request budget propagated into the kernel tiers; the "
            "exact fallback only runs while budget remains (default 250)"
        ),
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "on SIGTERM/SIGINT, how long in-flight requests may finish "
            "before stragglers are aborted (default 5)"
        ),
    )
    serve.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="N:DELTA",
        help=(
            "warm this (n, delta) pair's tables and optimum before "
            "/readyz flips (repeatable; default 2:1/2 3:1/2 4:1/2)"
        ),
    )
    serve.add_argument(
        "--no-warm-optima",
        action="store_true",
        help="warm compiled curves only, skip pre-solving exact optima",
    )
    serve.add_argument(
        "--max-n",
        type=int,
        default=32,
        help="largest n this server will answer for (default 32)",
    )
    serve.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        metavar="K",
        help=(
            "consecutive slow/failed exact fallbacks that trip the "
            "circuit breaker open (default 3)"
        ),
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="open-state cooldown before a half-open probe (default 5)",
    )
    serve.add_argument(
        "--chaos",
        action="append",
        default=[],
        metavar="KIND:REQUEST[:SECONDS]",
        help=(
            "inject one deterministic fault on that request sequence "
            "number: slow/hang burn kernel budget (degraded-but-bounded "
            "answer), corrupt forces a cache-bypassing recompute, delay "
            "stalls the response, drop/partition sever the connection; "
            "repeatable; never produces a 500"
        ),
    )

    coord = sub.add_parser(
        "coordinate",
        help=(
            "serve shard leases to `repro work` processes over TCP; "
            "bit-identical to serial under any fault"
        ),
        parents=[obs],
    )
    coord.add_argument("--n", type=int, default=3)
    coord.add_argument("--delta", type=_parse_fraction, default=Fraction(1))
    coord.add_argument(
        "--beta",
        type=_parse_fraction,
        default=Fraction(3, 5),
        help="the symmetric threshold every player uses (default 3/5)",
    )
    coord.add_argument("--trials", type=int, default=100_000)
    coord.add_argument("--seed", type=int, default=0)
    coord.add_argument("--shards", type=int, default=None)
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default 0: pick a free port)",
    )
    coord.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help=(
            "how long a granted shard may stay unreported before it "
            "is reassigned (default 30)"
        ),
    )
    coord.add_argument(
        "--wait-for-workers",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "how long to wait for a first worker before degrading to "
            "local execution (default 10)"
        ),
    )
    coord.add_argument(
        "--idle-grace",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "how long to wait after the last worker disconnects "
            "before finishing locally (default 2)"
        ),
    )
    coord.add_argument(
        "--max-phase-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hard budget for the distributed phase; on expiry the "
            "remaining shards run locally (default: unbounded)"
        ),
    )
    coord.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="K",
        help=(
            "retry budget for the local-salvage path (default 2)"
        ),
    )
    coord.add_argument(
        "--chaos",
        action="append",
        default=[],
        metavar="KIND:SHARD[:SECONDS]",
        help=(
            "inject one deterministic fault at attempt 0 of SHARD; "
            "KIND is crash/hang/slow/corrupt (compute layer) or "
            "drop/delay/partition/dup (frame layer); repeatable; the "
            "output must be identical to a clean run"
        ),
    )
    coord.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "stream completed shards to a JSONL checkpoint file; "
            "finalized even when the run is interrupted by "
            "SIGTERM/SIGINT, so --resume continues where the signal "
            "landed"
        ),
    )
    coord.add_argument(
        "--resume",
        action="store_true",
        help=(
            "load matching shards from --checkpoint before serving "
            "leases; only missing shards are granted"
        ),
    )
    coord.add_argument(
        "--distributed-smoke",
        type=int,
        default=None,
        metavar="W",
        help=(
            "self-test: spawn W local `repro work` subprocesses, run "
            "the estimate through them, then verify the result is "
            "bit-identical to the serial engine (exit 1 on mismatch)"
        ),
    )

    work = sub.add_parser(
        "work",
        help="serve one coordinator as a lease-holding worker",
        parents=[obs],
    )
    work.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's address (from `repro coordinate`)",
    )
    work.add_argument(
        "--worker-id",
        default=None,
        help="identity shown in coordinator telemetry (default: pid)",
    )
    work.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        metavar="K",
        help=(
            "connection attempts before giving up (jittered backoff "
            "between attempts; default 40)"
        ),
    )
    work.add_argument(
        "--frame-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-frame read/write timeout (default 60)",
    )

    return parser


def _fault_tolerance_config(
    args: argparse.Namespace,
) -> Optional[FaultToleranceConfig]:
    """The ``FaultToleranceConfig`` implied by the validate flags
    (``None`` when no fault-tolerance flag was given, keeping the
    historical serial/sharded dispatch untouched)."""
    if (
        args.max_retries is None
        and args.shard_timeout is None
        and args.checkpoint is None
        and not args.resume
        and args.chaos_crash is None
    ):
        return None
    fault_plan = None
    if args.chaos_crash is not None:
        fault_plan = FaultPlan.single("crash", shard=args.chaos_crash)
    return FaultToleranceConfig(
        retry=RetryPolicy(
            max_retries=0 if args.max_retries is None else args.max_retries,
            shard_timeout=args.shard_timeout,
        ),
        fault_plan=fault_plan,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )


def _dispatch(args: argparse.Namespace) -> int:
    """Run one subcommand; returns its exit code.

    Pure command logic: instrumentation setup/teardown lives in
    :func:`main` so every command is profiled the same way.
    """
    if args.command == "figure1":
        series = figure1(ns=args.ns, delta=args.delta)
        print(
            render_figure(
                series,
                title=f"Figure 1: P(beta), delta = {args.delta}",
            )
        )
    elif args.command == "figure2":
        series = figure2(ns=args.ns)
        print(render_figure(series, title="Figure 2: P(beta), delta = n/3"))
    elif args.command == "case":
        print(render_case_study(case_study(args.n, args.delta)))
    elif args.command == "uniformity":
        delta_of_n = (
            (lambda n: Fraction(n, 3)) if args.scaled
            else (lambda n: args.delta)
        )
        print(
            render_uniformity_table(
                uniformity_table(ns=args.ns, delta_of_n=delta_of_n)
            )
        )
    elif args.command == "tradeoff":
        rows = tradeoff_table(
            ns=args.ns,
            delta_of_n=lambda n: args.delta,
            trials=args.trials,
            seed=args.seed,
        )
        print(render_tradeoff_table(rows))
    elif args.command == "all":
        from repro.experiments.summary import reproduce_all

        report = reproduce_all(
            monte_carlo_trials=None if args.exact_only else args.trials
        )
        print(report.render())
        if not report.passed:
            return 1
    elif args.command == "mixture":
        from repro.core.randomized import (
            best_symmetric_mixture_exact,
            symmetric_mixture_polynomial,
        )
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        beta = optimal_symmetric_threshold(args.n, args.delta).beta
        p_star, value = best_symmetric_mixture_exact(
            args.n, args.delta, beta
        )
        poly = symmetric_mixture_polynomial(beta, args.n, args.delta)
        print(f"n = {args.n}, delta = {args.delta}, beta* fixed at "
              f"{float(beta):.6f}")
        print(f"P(coin,  p=0) = {float(poly(0)):.6f}")
        print(f"P(thresh,p=1) = {float(poly(1)):.6f}")
        print(f"P(best mixture) = {float(value):.6f} at p* = "
              f"{float(p_star):.6f}")
        if 0 < p_star < 1:
            print("interior mixture beats BOTH pure families")
    elif args.command == "export":
        from repro.experiments.export import export_all

        manifest = export_all(args.out, grid_size=args.grid_size)
        print(f"wrote {', '.join(manifest['files'].values())} and "
              f"manifest.json to {args.out}/")
    elif args.command == "validate":
        if args.resume and args.checkpoint is None:
            print(
                "repro validate: --resume requires --checkpoint PATH",
                file=sys.stderr,
            )
            return 2
        result = sweep_thresholds(
            args.n,
            args.delta,
            grid_size=args.grid_size,
            simulate=True,
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            fault_tolerance=_fault_tolerance_config(args),
        )
        for point in result.points:
            status = "ok" if point.consistent else "MISMATCH"
            print(
                f"beta={float(point.parameter):.3f}  "
                f"exact={float(point.exact):.6f}  "
                f"simulated={point.simulated:.6f}  [{status}]"
            )
        # all_consistent() is None when nothing simulated -- that is a
        # failed validation too, not a vacuous pass.
        if result.all_consistent() is not True:
            print("VALIDATION FAILED", file=sys.stderr)
            return 1
        print(f"all {len(result.points)} grid points consistent")
    elif args.command == "sweep":
        return _run_sweep(args)
    elif args.command == "check":
        return _run_check(args)
    elif args.command == "asymptotic":
        return _run_asymptotic(args)
    elif args.command == "cache":
        return _run_cache(args)
    elif args.command == "runs":
        return _run_runs(args)
    elif args.command == "report":
        return _run_report(args)
    elif args.command == "bench":
        return _run_bench(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "coordinate":
        return _run_coordinate(args)
    elif args.command == "work":
        return _run_work(args)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: one beta-grid sweep, exact or batched."""
    import time

    start = time.perf_counter()
    result = sweep_thresholds(
        args.n,
        args.delta,
        grid_size=args.grid_size,
        batch=args.batch,
    )
    elapsed = time.perf_counter() - start
    best = result.best()
    mode = "batch" if args.batch else "exact"
    print(
        f"sweep [{mode}] n={args.n} delta={args.delta}: "
        f"{len(result.points)} points in {elapsed:.3f}s"
    )
    print(
        f"  best beta={float(best.parameter):.6f}  "
        f"P={float(best.exact):.6f}"
    )
    if result.batch is not None:
        print(
            f"  certified {result.batch.certified}/{result.batch.points}, "
            f"{result.batch.fallbacks} exact fallbacks "
            f"(rate {result.batch.fallback_rate:.2%})"
        )
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """``repro cache stats|clear|warm|prune``."""
    import json

    from repro.cache import cache_stats, clear_cache, configure_cache

    if args.max_bytes is not None:
        configure_cache(max_bytes=args.max_bytes)
    if args.action == "prune":
        if args.max_bytes is None:
            print(
                "repro cache prune: --max-bytes BYTES is required",
                file=sys.stderr,
            )
            return 2
        stats = cache_stats()
        if stats["disk"] is None:
            print(
                "repro cache prune: no persistent tier configured "
                "(pass --cache-dir DIR or set REPRO_CACHE_DIR)",
                file=sys.stderr,
            )
            return 2
        from repro.cache import prune_disk_cache

        evicted = prune_disk_cache(args.max_bytes)
        after = cache_stats()["disk"]
        print(
            f"evicted {evicted} entr(ies); persistent tier now holds "
            f"{after['entries']} entries / {after['total_bytes']} bytes "
            f"in {after['directory']}"
        )
        return 0
    if args.action == "stats":
        print(json.dumps(cache_stats(), indent=2, sort_keys=True))
        return 0
    if args.action == "clear":
        removed = clear_cache()
        print(
            f"cleared {removed['memory']} memory and "
            f"{removed['disk']} disk entries"
        )
        return 0
    # warm: precompute the standard sweep grids so later runs start hot.
    stats = cache_stats()
    if stats["disk"] is None:
        print(
            "repro cache warm: no persistent tier configured "
            "(pass --cache-dir DIR or set REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    from repro.core.nonoblivious import (
        symmetric_threshold_winning_probability,
    )
    from repro.core.oblivious import (
        optimal_oblivious_winning_probability,
    )

    kernel_calls = 0
    for n in args.ns:
        for delta in args.deltas:
            optimal_oblivious_winning_probability(delta, n)
            kernel_calls += 1
            for i in range(args.grid_size):
                beta = Fraction(i, max(args.grid_size - 1, 1))
                symmetric_threshold_winning_probability(beta, n, delta)
                kernel_calls += 1
    after = cache_stats()["disk"]
    print(
        f"warmed {kernel_calls} kernel evaluations; persistent tier "
        f"now holds {after['entries']} entries in {after['directory']}"
    )
    return 0


def _run_asymptotic(args: argparse.Namespace) -> int:
    """``repro asymptotic``: certified large-n values in milliseconds."""
    import json as _json
    import time

    from repro.core.asymptotic import (
        symmetric_oblivious_winning_regime,
        symmetric_threshold_winning_regime,
    )
    from repro.optimize.asymptotic_opt import (
        near_optimal_symmetric_threshold,
    )
    from repro.probability.regimes import DEFAULT_POLICY, RegimePolicy

    if args.alpha is not None and args.beta is not None:
        print("choose --alpha or --beta, not both", file=sys.stderr)
        return 2
    policy = (
        DEFAULT_POLICY
        if args.method == DEFAULT_POLICY.method
        else RegimePolicy(method=args.method)
    )
    start = time.perf_counter()
    payload: dict
    if args.alpha is not None:
        result = symmetric_oblivious_winning_regime(
            args.alpha, args.n, args.delta, policy
        )
        lo, hi = result.bracket
        payload = {
            "family": "oblivious",
            "n": args.n,
            "delta": str(args.delta),
            "alpha": str(args.alpha),
            "value": result.value,
            "error_bound": result.error_bound,
            "floor": lo,
            "ceiling": hi,
            "regime": result.regime,
            "method": result.method,
        }
    elif args.beta is not None:
        result = symmetric_threshold_winning_regime(
            args.beta, args.n, args.delta, policy
        )
        lo, hi = result.bracket
        payload = {
            "family": "threshold",
            "n": args.n,
            "delta": str(args.delta),
            "beta": str(args.beta),
            "value": result.value,
            "error_bound": result.error_bound,
            "floor": lo,
            "ceiling": hi,
            "regime": result.regime,
            "method": result.method,
        }
    else:
        optimum = near_optimal_symmetric_threshold(
            args.n, args.delta, policy
        )
        lo, hi = optimum.bracket
        payload = {
            "family": "threshold-optimum",
            "n": args.n,
            "delta": str(args.delta),
            "beta": optimum.beta,
            "value": optimum.value,
            "error_bound": optimum.error_bound,
            "floor": lo,
            "ceiling": hi,
            "gap_bound": optimum.gap_bound,
            "evaluations": optimum.evaluations,
            "regime": optimum.probability.regime,
            "method": optimum.probability.method,
        }
    payload["elapsed_seconds"] = time.perf_counter() - start
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    return 0


def _run_check(args: argparse.Namespace) -> int:
    """``repro check``: run the cross-validation oracle and report."""
    from repro.validation import default_case_grid, run_cross_validation
    from repro.validation.contracts import use_contracts

    fault_tolerance = None
    if args.max_retries is not None or args.shard_timeout is not None:
        fault_tolerance = FaultToleranceConfig(
            retry=RetryPolicy(
                max_retries=(
                    0 if args.max_retries is None else args.max_retries
                ),
                shard_timeout=args.shard_timeout,
            )
        )
    # The oracle must never compare a cached value with itself: running
    # cache-bypassed recomputes every analytic route from scratch, so
    # cached results elsewhere are cross-validated against fresh ones.
    with bypass_cache(), use_contracts(strict=args.strict):
        cases = default_case_grid(
            args.ns, args.deltas, algorithms=args.algorithms
        )
        report = run_cross_validation(
            cases,
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            z_threshold=args.z_threshold,
            perturbation=args.inject_analytic_error,
            fault_tolerance=fault_tolerance,
        )
    print(report.render())
    if args.report_out is not None:
        args.report_out.write_text(report.to_json() + "\n")
        print(f"report written to {args.report_out}", file=sys.stderr)
    if not report.passed:
        print("INTEGRITY CHECK FAILED", file=sys.stderr)
        return EXIT_INTEGRITY_MISMATCH
    if args.batch_grid:
        from repro.batch import run_batch_agreement

        agreement = run_batch_agreement(
            args.ns, args.deltas, grid_size=args.batch_grid
        )
        print(agreement.render())
        if not agreement.passed:
            print("BATCH AGREEMENT FAILED", file=sys.stderr)
            return EXIT_INTEGRITY_MISMATCH
    if args.asymptotic_grid:
        from repro.validation import run_asymptotic_agreement

        asymptotic = run_asymptotic_agreement(
            ns=args.asymptotic_ns,
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            z_threshold=args.z_threshold,
            perturbation=args.inject_asymptotic_error,
        )
        print(asymptotic.render())
        if not asymptotic.passed:
            print("ASYMPTOTIC AGREEMENT FAILED", file=sys.stderr)
            return EXIT_INTEGRITY_MISMATCH
    return 0


def _run_runs(args: argparse.Namespace) -> int:
    """``repro runs list|show|compare|prune``."""
    store = RunStore(args.runs_dir)
    try:
        if args.runs_command == "list":
            runs = store.list_runs()
            if not runs:
                print(
                    f"no recorded runs under {store.root} "
                    "(record one with --record-run)"
                )
                return 0
            for run in runs:
                state = "complete" if run.complete else "INCOMPLETE"
                elapsed = (
                    "?"
                    if run.elapsed_seconds is None
                    else f"{run.elapsed_seconds:.3f}s"
                )
                print(
                    f"{run.run_id}  {run.started_utc or '?':<20}  "
                    f"{run.command or '?':<10}  exit="
                    f"{run.exit_code if run.exit_code is not None else '?'}"
                    f"  {elapsed:>10}  [{state}]"
                )
        elif args.runs_command == "show":
            print(render_run(store.find(args.run)))
        elif args.runs_command == "compare":
            print(
                render_comparison(
                    store.find(args.left),
                    store.find(args.right),
                    changed_only=args.changed_only,
                )
            )
        elif args.runs_command == "prune":
            removed = store.prune(keep=args.keep)
            print(
                f"pruned {removed} run(s); {len(store.list_runs())} kept"
            )
    except RunStoreError as exc:
        print(f"repro runs: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_report(args: argparse.Namespace) -> int:
    """``repro report --html``: the self-contained HTML run report."""
    from repro.observability.htmlreport import (
        load_bench_history,
        write_html_report,
    )

    store = RunStore(args.runs_dir)
    try:
        run = store.find(args.run)
    except RunStoreError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    target = write_html_report(
        args.html,
        run,
        bench_history=load_bench_history(args.bench_root),
    )
    print(f"report written to {target}")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """``repro bench compare``: the perf-regression gate."""
    import json

    from repro.observability.regression import (
        compare_bench_files,
        render_bench_comparison,
    )

    try:
        comparison = compare_bench_files(
            args.baseline,
            args.candidate,
            min_ratio=args.min_ratio,
            max_ratio=args.max_ratio,
        )
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"repro bench compare: {exc}", file=sys.stderr)
        return 2
    print(render_bench_comparison(comparison))
    return 0 if comparison.passed else EXIT_PERF_REGRESSION


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the resilient HTTP query service."""
    from repro.distributed.chaos import parse_chaos_specs
    from repro.serve import ServeConfig, run_server

    warm = []
    for spec in args.warm:
        n_text, _, delta_text = spec.partition(":")
        try:
            pair = (int(n_text), Fraction(delta_text))
        except (ValueError, ZeroDivisionError):
            print(
                f"repro serve: --warm must be N:DELTA, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        warm.append(pair)
    config_kwargs = dict(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        drain_seconds=args.drain_seconds,
        warm_optima=not args.no_warm_optima,
        chaos=parse_chaos_specs(args.chaos),
        max_n=args.max_n,
        breaker_failures=args.breaker_failures,
        breaker_cooldown_seconds=args.breaker_cooldown,
    )
    if warm:
        config_kwargs["warm"] = tuple(warm)
    report = run_server(
        ServeConfig(**config_kwargs),
        log=lambda line: print(line, file=sys.stderr),
    )
    print(
        f"served {report.completed} request(s), shed {report.shed}, "
        f"{report.degraded} degraded; drain "
        f"{'clean' if report.drained_clean else 'forced'} "
        f"({report.stop_reason or 'stopped'})"
    )
    if not report.drained_clean:
        print(
            f"repro serve: {report.aborted_connections} connection(s) "
            "aborted at the drain deadline",
            file=sys.stderr,
        )
        return EXIT_SERVE
    return 0


def _run_coordinate(args: argparse.Namespace) -> int:
    """``repro coordinate``: one estimate served over shard leases."""
    import subprocess

    from repro.distributed import (
        DistributedConfig,
        estimate_winning_probability_distributed,
    )
    from repro.distributed.chaos import parse_chaos_specs
    from repro.model.algorithms import SingleThresholdRule
    from repro.model.system import DistributedSystem
    from repro.simulation.parallel import (
        estimate_winning_probability_sharded,
    )
    from repro.simulation.rng import SeedSequenceFactory

    smoke = args.distributed_smoke
    if smoke is not None and smoke < 1:
        print(
            "repro coordinate: --distributed-smoke needs >= 1 worker",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint is None:
        print(
            "repro coordinate: --resume requires --checkpoint PATH",
            file=sys.stderr,
        )
        return 2
    system = DistributedSystem(
        [SingleThresholdRule(args.beta)] * args.n, args.delta
    )
    fault_tolerance = FaultToleranceConfig(
        retry=RetryPolicy(max_retries=args.max_retries),
        fault_plan=parse_chaos_specs(args.chaos),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    config = DistributedConfig(
        host=args.host,
        port=args.port,
        lease_seconds=args.lease_seconds,
        wait_for_workers_seconds=args.wait_for_workers,
        idle_grace_seconds=args.idle_grace,
        max_phase_seconds=args.max_phase_seconds,
    )
    stream = "distributed-validate"
    spawned: List[subprocess.Popen] = []

    def on_ready(port: int) -> None:
        print(
            f"repro coordinate: listening on {args.host}:{port}",
            file=sys.stderr,
        )
        for index in range(smoke or 0):
            spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "work",
                        "--connect",
                        f"{args.host}:{port}",
                        "--worker-id",
                        f"smoke-{index}",
                    ]
                )
            )

    try:
        estimate = estimate_winning_probability_distributed(
            system,
            args.trials,
            SeedSequenceFactory(args.seed),
            stream=stream,
            shards=args.shards,
            fault_tolerance=fault_tolerance,
            config=config,
            on_ready=on_ready,
            handle_signals=True,
        )
    except RunInterruptedError as exc:
        # graceful: workers were drained, leases returned, and the
        # checkpoint (when one was configured) finalized before the
        # error surfaced; exit with the shell's 128 + signum code
        print(f"repro coordinate: {exc}", file=sys.stderr)
        return 128 + exc.signum
    finally:
        for proc in spawned:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    summary = estimate.summary
    print(
        f"n={args.n} delta={args.delta} beta={args.beta}: "
        f"P(win) ~= {summary.estimate:.6f} in "
        f"[{summary.lower:.6f}, {summary.upper:.6f}]  "
        f"({summary.trials} trials, {estimate.shards} shards, "
        f"{estimate.workers_used} worker(s), "
        f"{estimate.salvaged_shards} salvaged)"
    )
    if smoke is not None:
        # the self-test contract: a chaotic distributed run must be
        # bit-identical to a clean run of the serial engine
        reference = estimate_winning_probability_sharded(
            system,
            args.trials,
            SeedSequenceFactory(args.seed),
            stream=stream,
            shards=args.shards,
        )
        if (
            estimate.summary != reference.summary
            or estimate.shard_outcomes != reference.shard_outcomes
        ):
            print(
                "distributed-smoke: MISMATCH against the serial engine",
                file=sys.stderr,
            )
            return 1
        crashed = [p.returncode for p in spawned if p.returncode not in (0, 1)]
        if crashed:
            print(
                f"distributed-smoke: worker exit codes {crashed}",
                file=sys.stderr,
            )
            return 1
        print(
            f"distributed-smoke: {smoke} worker(s), "
            f"{estimate.shards} shards bit-identical to the serial engine"
        )
    return 0


def _run_work(args: argparse.Namespace) -> int:
    """``repro work``: serve one coordinator until it drains."""
    from repro.distributed import WorkerConfig, run_worker
    from repro.simulation.faulttolerance import InjectedCrashError

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = 0
    if not host or not 0 < port < 65536:
        print(
            f"repro work: --connect must be HOST:PORT, got "
            f"{args.connect!r}",
            file=sys.stderr,
        )
        return 2
    config = WorkerConfig(
        host=host,
        port=port,
        worker_id=args.worker_id or f"pid-{os.getpid()}",
        connect_policy=RetryPolicy(
            max_retries=args.connect_retries,
            backoff_base=0.05,
            backoff_factor=1.5,
            backoff_max=1.0,
            backoff_jitter=0.5,
        ),
        frame_timeout_seconds=args.frame_timeout,
    )
    try:
        report = run_worker(
            config,
            log=lambda line: print(line, file=sys.stderr),
            handle_signals=True,
        )
    except InjectedCrashError as exc:
        # chaos mode: die the way a real worker crash would
        print(f"repro work: injected crash: {exc}", file=sys.stderr)
        return 1
    print(
        f"repro work: {report.worker_id} completed "
        f"{report.shards_completed} shard(s), sent "
        f"{report.summaries_sent} summar(ies), "
        f"{report.reconnects} reconnect(s)",
        file=sys.stderr,
    )
    if report.interrupted_signal is not None:
        # the signal was absorbed gracefully (lease finished, summary
        # delivered, goodbye sent) but the exit code still reports it
        print(
            f"repro work: interrupted by signal "
            f"{report.interrupted_signal} after graceful drain",
            file=sys.stderr,
        )
        return 128 + report.interrupted_signal
    return 0


def _emit_instrumentation(
    instr: Instrumentation,
    args: argparse.Namespace,
    counter_samples: Optional[List[dict]] = None,
) -> None:
    """Write the requested observability artefacts after a profiled run.

    The report goes to stderr so stdout stays exactly the command's
    artefact (tables/CSV announcements), pipeable as before.
    *counter_samples* (from the run's event stream, when one was
    active) add throughput/cache/batch counter tracks to the trace.
    """
    if args.profile:
        print(
            render_report(instr, title=f"repro {args.command}"),
            file=sys.stderr,
        )
    if args.metrics_out is not None:
        write_metrics_jsonl(
            args.metrics_out,
            instr.metrics.snapshot(),
            label=f"repro {args.command}",
        )
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.trace_out is not None:
        write_chrome_trace(
            args.trace_out, instr.tracer, counter_samples=counter_samples
        )
        print(f"trace written to {args.trace_out}", file=sys.stderr)


def _dispatch_mapped(args: argparse.Namespace) -> int:
    """Run :func:`_dispatch`, mapping predictable fault-tolerance
    failures to distinct exit codes with a one-line message -- an
    operator resuming an overnight run should see *which* kind of
    failure occurred, not a traceback."""
    try:
        return _dispatch(args)
    except CheckpointFingerprintError as exc:
        print(
            f"repro: checkpoint belongs to a different run: {exc}",
            file=sys.stderr,
        )
        return EXIT_FINGERPRINT_MISMATCH
    except CheckpointError as exc:
        print(f"repro: checkpoint unusable: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_ERROR
    except ShardRetriesExhaustedError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_RETRIES_EXHAUSTED
    except ContractViolation as exc:
        print(f"repro: integrity: {exc}", file=sys.stderr)
        return EXIT_INTEGRITY_MISMATCH
    except DistributedError as exc:
        print(f"repro: distributed: {exc}", file=sys.stderr)
        return EXIT_DISTRIBUTED
    except ServeError as exc:
        print(f"repro: serve: {exc}", file=sys.stderr)
        return EXIT_SERVE
    except ValidationError as exc:
        print(f"repro: invalid request: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` command; returns the exit code.

    Exit codes: 0 success; 1 validation/reproduction mismatch; 2 usage
    error or rejected argument value; 3 ``--resume`` against a
    checkpoint from a different run; 4 unusable checkpoint (unwritable
    path, corrupt header); 5 a shard exhausted its ``--max-retries``
    budget; 6 the ``repro check`` integrity oracle found a
    disagreement (or a strict-mode contract violation); 7 the
    ``repro bench compare`` perf-regression gate failed; 8 an
    unrecoverable distributed-transport failure (e.g. ``repro work``
    never reached its coordinator); 9 a serving-layer failure
    (``repro serve`` could not bind, or its drain deadline expired
    with requests still in flight); 130/143 a ``coordinate``/``work``
    process interrupted by SIGINT/SIGTERM after a graceful drain
    (128 + signal number, the shell convention).
    """
    args = _build_parser().parse_args(argv)
    if args.no_cache:
        configure_cache(enabled=False)
    if args.cache_dir is not None:
        configure_cache(directory=args.cache_dir)
    context = new_run_context(
        command=args.command,
        argv=list(sys.argv[1:] if argv is None else argv),
    )
    set_current_run(context)
    # The store-introspection commands read telemetry; they never
    # produce it (recording a run of `repro runs list` would pollute
    # the very store it lists).
    introspection = args.command in ("runs", "report", "bench")
    dashboard_on = args.dashboard and not introspection
    record_on = args.record_run and not introspection
    profiled = bool(
        args.profile
        or args.metrics_out
        or args.trace_out
        or dashboard_on
        or record_on
    )
    if not profiled:
        return _dispatch_mapped(args)
    store = RunStore(args.runs_dir) if record_on else None
    collected: List[dict] = []
    subscribers: List = [collected.append]
    if dashboard_on:
        subscribers.append(Dashboard(stream=sys.stderr))
    with use_instrumentation() as instr:
        bus = None
        if dashboard_on or record_on:
            bus = EventBus(
                path=(
                    store.events_path(context)
                    if store is not None
                    else None
                ),
                context=context,
                subscribers=subscribers,
                metrics=instr.metrics,
            )
            instr.events = bus
        code: Optional[int] = None
        try:
            with instr.span(f"repro.{args.command}"):
                code = _dispatch_mapped(args)
        finally:
            # Seal the log even on an unexpected exception; a null
            # exit_code in run_end marks the run as aborted.
            if bus is not None:
                instr.events = None
                bus.close(exit_code=code)
    _emit_instrumentation(
        instr,
        args,
        counter_samples=(
            counter_samples_from_events(collected) if collected else None
        ),
    )
    if store is not None:
        artifacts = {}
        if args.metrics_out is not None:
            artifacts["metrics"] = str(args.metrics_out)
        if args.trace_out is not None:
            artifacts["trace"] = str(args.trace_out)
        if getattr(args, "checkpoint", None) is not None:
            artifacts["checkpoint"] = str(args.checkpoint)
        store.finalize(
            context, code, instr.metrics.snapshot(), artifacts
        )
        print(
            f"run recorded: {store.root / context.directory_name}",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
