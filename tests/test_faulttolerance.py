"""Tests for fault-tolerant sharded execution.

The contract under test -- the *recovery invariant*: with a seeded
factory, the sharded estimate is **bit-identical** across

* serial vs parallel execution,
* injected worker crashes (with retries),
* injected hangs killed by the per-shard timeout,
* injected corrupt results rejected by the parent,
* checkpoint-then-resume-halfway,

because every recovery path replays the *same* named seed stream
(``f"{stream}/shard-{i}"``): faults change when shards execute, never
what they draw.  Alongside, unit tests for the retry policy, fault
plans, and the checkpoint file format (checksums, torn writes,
fingerprint guards).
"""

import json
from fractions import Fraction

import pytest

from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.observability import use_instrumentation
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.faulttolerance import (
    CheckpointError,
    CheckpointFingerprintError,
    CheckpointWriter,
    FaultPlan,
    FaultSpec,
    FaultToleranceConfig,
    RetryPolicy,
    ShardRetriesExhaustedError,
    load_checkpoint,
    run_fingerprint,
    system_digest,
)
from repro.simulation.parallel import estimate_winning_probability_sharded
from repro.simulation.rng import SeedSequenceFactory

TRIALS = 20_000
SHARDS = 8
SEED = 1234


def vector_system(n=3):
    return DistributedSystem([SingleThresholdRule(Fraction(3, 5))] * n, 1)


def run_sharded(workers=1, fault_tolerance=None, progress=None, seed=SEED):
    return estimate_winning_probability_sharded(
        vector_system(),
        TRIALS,
        SeedSequenceFactory(seed),
        shards=SHARDS,
        workers=workers,
        fault_tolerance=fault_tolerance,
        progress=progress,
    )


def fast_retry(max_retries=2, **kwargs):
    """A retry policy with no backoff delay, for test speed."""
    return RetryPolicy(max_retries=max_retries, backoff_base=0.0, **kwargs)


@pytest.fixture(scope="module")
def clean_estimate():
    """The failure-free serial reference every recovery path must match."""
    return run_sharded(workers=1)


class TestRetryPolicy:
    def test_defaults_do_not_retry(self):
        assert RetryPolicy().max_attempts == 1

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35
        )
        assert policy.backoff_seconds(0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)
        assert policy.backoff_seconds(2) == pytest.approx(0.35)  # capped
        assert policy.backoff_seconds(10) == pytest.approx(0.35)

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_retries": -1},
            {"shard_timeout": 0},
            {"shard_timeout": -1.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(-1)


class TestBackoffJitter:
    """Seeded jitter: deterministic, bounded, and opt-in per call."""

    def test_no_key_keeps_exact_schedule(self):
        # the historical contract: without a jitter key the schedule
        # is the bare exponential, exactly
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0,
            backoff_jitter=0.5,
        )
        assert policy.backoff_seconds(2) == pytest.approx(0.4)

    def test_keyed_jitter_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_jitter=0.5)
        key = ("stream/shard-3", 3, 1)
        values = {policy.backoff_seconds(0, jitter_key=key) for _ in range(5)}
        assert len(values) == 1  # same key, same delay, every time

    def test_keyed_jitter_stays_in_band(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0,
            backoff_jitter=0.5,
        )
        for index in range(6):
            bare = policy.backoff_seconds(index)
            jittered = policy.backoff_seconds(
                index, jitter_key=("s", 0, index)
            )
            assert bare * 0.5 <= jittered <= bare

    def test_different_keys_spread(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_jitter=0.5)
        delays = {
            policy.backoff_seconds(0, jitter_key=("s", shard, 1))
            for shard in range(16)
        }
        assert len(delays) > 1  # a fleet does not stampede in lockstep

    def test_zero_jitter_is_bare_schedule(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_jitter=0.0)
        assert policy.backoff_seconds(
            0, jitter_key=("s", 0, 1)
        ) == pytest.approx(0.1)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=-0.1)

    def test_jittered_retries_stay_bit_identical(self, clean_estimate):
        # the point of the feature: jittered backoff shifts *when*
        # retries run, never what they draw
        plan = FaultPlan(
            {
                (None, 1, 0): FaultSpec("crash"),
                (None, 3, 0): FaultSpec("crash"),
            }
        )
        recovered = run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(
                retry=RetryPolicy(
                    max_retries=2,
                    backoff_base=0.01,
                    backoff_jitter=0.9,
                ),
                fault_plan=plan,
            ),
        )
        assert recovered.summary == clean_estimate.summary
        assert recovered.shard_outcomes == clean_estimate.shard_outcomes


class TestFaultPlan:
    def test_single(self):
        plan = FaultPlan.single("crash", shard=3)
        assert len(plan) == 1
        assert plan.lookup("any-stream", 3, 0).kind == "crash"
        assert plan.lookup("any-stream", 3, 1) is None
        assert plan.lookup("any-stream", 2, 0) is None

    def test_exact_stream_beats_wildcard(self):
        plan = FaultPlan(
            {
                (None, 0, 0): FaultSpec("crash"),
                ("special", 0, 0): FaultSpec("slow", seconds=0.5),
            }
        )
        assert plan.lookup("special", 0, 0).kind == "slow"
        assert plan.lookup("other", 0, 0).kind == "crash"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meltdown")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("hang", seconds=-1.0)

    def test_bad_keys_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan({(None, -1, 0): FaultSpec("crash")})
        with pytest.raises(ValueError):
            FaultPlan({(7, 0, 0): FaultSpec("crash")})

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError):
            FaultToleranceConfig(resume=True)


class TestFingerprints:
    def test_fingerprint_changes_with_every_component(self):
        base = dict(
            root_seed=1,
            stream="s",
            plan=[10, 10],
            digest="d",
            batch_size=64,
        )
        reference = run_fingerprint(**base)
        for key, value in [
            ("root_seed", 2),
            ("stream", "t"),
            ("plan", [10, 11]),
            ("digest", "e"),
            ("batch_size", 65),
        ]:
            assert run_fingerprint(**{**base, key: value}) != reference

    def test_system_digest_is_stable_and_discriminating(self):
        assert system_digest(vector_system()) == system_digest(
            vector_system()
        )
        assert system_digest(vector_system(3)) != system_digest(
            vector_system(4)
        )

    def test_system_digest_survives_unpicklable_objects(self):
        digest = system_digest(lambda x: x)  # lambdas do not pickle
        assert len(digest) == 64


class TestCheckpointFile:
    def fill(self, path, root_seed=1, shards=3):
        with CheckpointWriter(path, root_seed) as writer:
            for i in range(shards):
                writer.append("fp", i, f"s/shard-{i}", 100, 40 + i, 0.5, 0)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self.fill(path)
        checkpoint = load_checkpoint(path, 1)
        assert checkpoint.corrupt_lines == 0
        outcomes = checkpoint.outcomes("fp")
        assert sorted(outcomes) == [0, 1, 2]
        assert outcomes[2].wins == 42
        assert checkpoint.outcomes("other-fp") == {}

    def test_corrupt_middle_byte_skips_only_that_record(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self.fill(path)
        lines = path.read_text().splitlines(keepends=True)
        middle = lines[2]
        flip_at = len(middle) // 2
        lines[2] = (
            middle[:flip_at]
            + ("0" if middle[flip_at] != "0" else "1")
            + middle[flip_at + 1 :]
        )
        path.write_text("".join(lines))
        checkpoint = load_checkpoint(path, 1)
        assert checkpoint.corrupt_lines == 1
        assert sorted(checkpoint.outcomes("fp")) == [0, 2]

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self.fill(path)
        text = path.read_text()
        path.write_text(text[: len(text) - 9])  # tear the last record
        checkpoint = load_checkpoint(path, 1)
        assert checkpoint.corrupt_lines == 1
        assert sorted(checkpoint.outcomes("fp")) == [0, 1]

    def test_wrong_root_seed_refused(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self.fill(path, root_seed=1)
        with pytest.raises(CheckpointFingerprintError):
            load_checkpoint(path, 2)
        with pytest.raises(CheckpointFingerprintError):
            CheckpointWriter(path, 2)

    def test_non_checkpoint_file_refused(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.jsonl"
        path.write_text(json.dumps({"type": "surprise"}) + "\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, 1)

    def test_missing_and_empty_files_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.jsonl", 1)
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        with pytest.raises(CheckpointError):
            load_checkpoint(empty, 1)

    def test_reopening_appends_after_header_check(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self.fill(path, shards=2)
        with CheckpointWriter(path, 1) as writer:
            writer.append("fp", 2, "s/shard-2", 100, 7, 0.1, 1)
        checkpoint = load_checkpoint(path, 1)
        assert sorted(checkpoint.outcomes("fp")) == [0, 1, 2]
        assert checkpoint.outcomes("fp")[2].attempt == 1

    def test_later_record_wins(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path, 1) as writer:
            writer.append("fp", 0, "s/shard-0", 100, 10, 0.1, 0)
            writer.append("fp", 0, "s/shard-0", 100, 10, 0.2, 1)
        assert load_checkpoint(path, 1).outcomes("fp")[0].attempt == 1

    def test_unwritable_path_raises_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(CheckpointError):
            CheckpointWriter(blocker / "ckpt.jsonl", 1)


class TestRecoveryInvariant:
    """Bit-identity of the estimate across every recovery path."""

    def test_injected_crash_with_retry(self, clean_estimate):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=3),
        )
        estimate = run_sharded(workers=2, fault_tolerance=config)
        assert estimate.summary == clean_estimate.summary
        assert estimate.shard_outcomes == clean_estimate.shard_outcomes
        assert [f.index for f in estimate.failures] == [3]
        assert estimate.retried_shards == 1

    def test_crash_recovery_is_identical_on_the_serial_path(
        self, clean_estimate
    ):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=3),
        )
        estimate = run_sharded(workers=1, fault_tolerance=config)
        assert estimate.summary == clean_estimate.summary
        assert estimate.workers_used == 1

    def test_hang_killed_by_timeout(self, clean_estimate):
        config = FaultToleranceConfig(
            retry=fast_retry(shard_timeout=0.75),
            fault_plan=FaultPlan.single("hang", shard=1, seconds=60.0),
        )
        estimate = run_sharded(workers=2, fault_tolerance=config)
        assert estimate.summary == clean_estimate.summary
        kinds = {f.kind for f in estimate.failures if f.index == 1}
        assert "timeout" in kinds

    def test_corrupt_result_rejected_and_retried(self, clean_estimate):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("corrupt", shard=0),
        )
        estimate = run_sharded(workers=2, fault_tolerance=config)
        assert estimate.summary == clean_estimate.summary
        assert [f.kind for f in estimate.failures] == ["corrupt"]

    def test_crash_on_two_different_attempts_still_recovers(
        self, clean_estimate
    ):
        config = FaultToleranceConfig(
            retry=fast_retry(max_retries=2),
            fault_plan=FaultPlan(
                {
                    (None, 4, 0): FaultSpec("crash"),
                    (None, 4, 1): FaultSpec("crash"),
                }
            ),
        )
        estimate = run_sharded(workers=2, fault_tolerance=config)
        assert estimate.summary == clean_estimate.summary
        assert len(estimate.failures) == 2

    def test_retries_exhausted_raises_with_context(self):
        config = FaultToleranceConfig(
            retry=fast_retry(max_retries=1),
            fault_plan=FaultPlan(
                {
                    (None, 2, 0): FaultSpec("crash"),
                    (None, 2, 1): FaultSpec("crash"),
                }
            ),
        )
        with pytest.raises(ShardRetriesExhaustedError) as info:
            run_sharded(workers=2, fault_tolerance=config)
        assert info.value.index == 2
        assert info.value.attempts == 2

    def test_salvage_counts_untouched_shards(self, clean_estimate):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=3),
        )
        estimate = run_sharded(workers=2, fault_tolerance=config)
        assert estimate.salvaged_shards == SHARDS - 1
        assert clean_estimate.salvaged_shards == 0

    def test_checkpoint_then_resume_halfway(self, tmp_path, clean_estimate):
        path = tmp_path / "ckpt.jsonl"
        # first run dies when shard 5 exhausts a zero-retry budget ...
        config = FaultToleranceConfig(
            retry=fast_retry(max_retries=0),
            fault_plan=FaultPlan.single("crash", shard=5),
            checkpoint_path=path,
        )
        with pytest.raises(ShardRetriesExhaustedError):
            run_sharded(workers=2, fault_tolerance=config)
        # ... leaving a partial checkpoint behind
        assert path.exists()
        # the resumed run re-executes only the missing shards and is
        # bit-identical to the never-failed reference
        estimate = run_sharded(
            workers=2,
            fault_tolerance=FaultToleranceConfig(
                checkpoint_path=path, resume=True
            ),
        )
        assert estimate.summary == clean_estimate.summary
        assert estimate.shard_outcomes == clean_estimate.shard_outcomes
        assert estimate.resumed_shards >= 1
        assert estimate.resumed_shards < SHARDS

    def test_resume_with_wrong_seed_is_refused(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(checkpoint_path=path),
        )
        with pytest.raises(CheckpointFingerprintError):
            run_sharded(
                workers=1,
                seed=SEED + 1,
                fault_tolerance=FaultToleranceConfig(
                    checkpoint_path=path, resume=True
                ),
            )

    def test_full_checkpoint_resume_runs_nothing(
        self, tmp_path, clean_estimate
    ):
        path = tmp_path / "ckpt.jsonl"
        run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(checkpoint_path=path),
        )
        estimate = run_sharded(
            workers=2,
            fault_tolerance=FaultToleranceConfig(
                checkpoint_path=path, resume=True
            ),
        )
        assert estimate.summary == clean_estimate.summary
        assert estimate.resumed_shards == SHARDS

    def test_corrupt_checkpoint_record_is_reexecuted(
        self, tmp_path, clean_estimate
    ):
        path = tmp_path / "ckpt.jsonl"
        run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(checkpoint_path=path),
        )
        lines = path.read_text().splitlines(keepends=True)
        lines[3] = lines[3].replace('"wins":', '"winz":', 1)
        path.write_text("".join(lines))
        estimate = run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(
                checkpoint_path=path, resume=True
            ),
        )
        assert estimate.summary == clean_estimate.summary
        assert estimate.resumed_shards == SHARDS - 1


class TestProgressUnderFaults:
    def test_exactly_once_in_index_order_despite_crash(self):
        seen = []
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=2),
        )
        run_sharded(workers=2, fault_tolerance=config, progress=seen.append)
        assert [p.index for p in seen] == list(range(SHARDS))
        assert [p.completed_shards for p in seen] == list(
            range(1, SHARDS + 1)
        )
        assert all(p.total_shards == SHARDS for p in seen)
        crashed = seen[2]
        assert crashed.recovered and crashed.attempt == 1
        assert all(
            not p.recovered and p.attempt == 0
            for p in seen
            if p.index != 2
        )

    def test_resumed_shards_report_recovered(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(checkpoint_path=path),
        )
        seen = []
        run_sharded(
            workers=1,
            fault_tolerance=FaultToleranceConfig(
                checkpoint_path=path, resume=True
            ),
            progress=seen.append,
        )
        assert [p.index for p in seen] == list(range(SHARDS))
        assert all(p.recovered for p in seen)

    def test_progress_counts_reconcile_with_summary(self):
        seen = []
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("corrupt", shard=1),
        )
        estimate = run_sharded(
            workers=2, fault_tolerance=config, progress=seen.append
        )
        assert sum(p.wins for p in seen) == estimate.summary.successes
        assert sum(p.trials for p in seen) == estimate.summary.trials


class TestObservabilityIntegration:
    def test_failure_counters_recorded(self):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=3),
        )
        with use_instrumentation() as instr:
            run_sharded(workers=2, fault_tolerance=config)
        counters = instr.metrics.snapshot().counters
        assert counters["engine.shard_retries"] >= 1
        assert counters["engine.shard_failures"] >= 1
        assert counters["engine.shards_salvaged"] == SHARDS - 1

    def test_clean_run_records_no_failure_counters(self):
        with use_instrumentation() as instr:
            run_sharded(workers=2)
        counters = instr.metrics.snapshot().counters
        assert "engine.shard_retries" not in counters
        assert "engine.shard_failures" not in counters
        assert "engine.shards_salvaged" not in counters

    def test_failure_section_in_report(self):
        from repro.observability.reporting import render_report

        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=0),
        )
        with use_instrumentation() as instr:
            run_sharded(workers=2, fault_tolerance=config)
        report = render_report(instr)
        assert "failures and recoveries:" in report
        assert "engine.shard_retries" in report


class TestEngineIntegration:
    def test_engine_forwards_fault_tolerance(self):
        config = FaultToleranceConfig(
            retry=fast_retry(),
            fault_plan=FaultPlan.single("crash", shard=1),
        )
        clean = MonteCarloEngine(seed=SEED).estimate_winning_probability(
            vector_system(), trials=TRIALS, workers=2
        )
        chaotic = MonteCarloEngine(seed=SEED).estimate_winning_probability(
            vector_system(),
            trials=TRIALS,
            workers=2,
            fault_tolerance=config,
        )
        assert chaotic == clean

    def test_fault_tolerance_alone_implies_sharded_path(self):
        sharded = MonteCarloEngine(seed=SEED).estimate_winning_probability(
            vector_system(), trials=TRIALS, shards=None, workers=1
        )
        via_config = MonteCarloEngine(
            seed=SEED
        ).estimate_winning_probability(
            vector_system(),
            trials=TRIALS,
            fault_tolerance=FaultToleranceConfig(),
        )
        assert via_config == sharded
