"""Tests for the lease-based distributed executor.

The contract under test -- the *distributed bit-identity invariant*:
with a seeded factory, a run whose shards are leased to remote workers
over TCP returns a summary and per-shard outcomes **equal to the
serial engine's**, under every fault the chaos layer can inject --
worker crashes, hung shards killed by lease expiry, slow shards,
corrupt summaries, dropped / delayed / duplicated summary frames,
severed connections, and total worker absence.  The argument is the
same as for the in-process executors: every recovery path replays the
*same* named seed stream, so faults change when and where shards
execute, never what they draw.

Alongside: unit tests for the sealed frame codec, the CLI chaos-spec
parser, duplicate-summary idempotence, degradation to local execution,
and the real ``repro work`` subprocess transport.
"""

import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.distributed import (
    DistributedConfig,
    estimate_winning_probability_distributed,
)
from repro.distributed.chaos import parse_chaos_spec, parse_chaos_specs
from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    PayloadDigestError,
    ProtocolError,
    decode_blob,
    encode_blob,
    encode_frame,
    open_payload,
    seal_payload,
)
from repro.errors import ValidationError
from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.observability import use_instrumentation
from repro.observability.events import EventBus
from repro.simulation.faulttolerance import (
    FaultPlan,
    FaultSpec,
    FaultToleranceConfig,
    RetryPolicy,
)
from repro.simulation.parallel import estimate_winning_probability_sharded
from repro.simulation.rng import SeedSequenceFactory

SEED = 123
TRIALS = 4000
SHARDS = 6
STREAM = "distributed-test"


def make_system(n=3, beta=Fraction(3, 5), delta=1):
    return DistributedSystem([SingleThresholdRule(beta)] * n, delta)


def serial_reference():
    return estimate_winning_probability_sharded(
        make_system(),
        TRIALS,
        SeedSequenceFactory(SEED),
        stream=STREAM,
        shards=SHARDS,
    )


def run_distributed(
    local_workers,
    fault_plan=None,
    lease_seconds=0.3,
    max_retries=3,
    instrumentation=None,
    progress=None,
    config_kwargs=None,
):
    """One distributed run with test-friendly timing defaults."""
    kwargs = dict(
        port=0,
        lease_seconds=lease_seconds,
        wait_for_workers_seconds=5.0,
        idle_grace_seconds=0.3,
        frame_timeout_seconds=10.0,
    )
    kwargs.update(config_kwargs or {})
    return estimate_winning_probability_distributed(
        make_system(),
        TRIALS,
        SeedSequenceFactory(SEED),
        stream=STREAM,
        shards=SHARDS,
        fault_tolerance=FaultToleranceConfig(
            retry=RetryPolicy(max_retries=max_retries, backoff_base=0.0),
            fault_plan=fault_plan,
        ),
        config=DistributedConfig(**kwargs),
        local_workers=local_workers,
        instrumentation=instrumentation,
        progress=progress,
    )


def assert_identical(estimate, reference):
    """The invariant: summary and outcomes equal, bit for bit.

    ``ShardedEstimate`` equality includes ``workers_used`` (an
    execution fact that legitimately differs between transports), so
    the invariant compares the result fields directly.
    """
    assert estimate.summary == reference.summary
    assert estimate.shard_outcomes == reference.shard_outcomes


# ---------------------------------------------------------------------------
# the frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_seal_open_roundtrip(self):
        payload = {"type": "lease", "shard": 3, "trials": 1000}
        assert open_payload(seal_payload(payload)) == payload

    def test_open_rejects_flipped_bit(self):
        body = bytearray(seal_payload({"type": "summary", "wins": 412}))
        # flip a digit inside the wins value, keep valid JSON
        index = body.index(b"412")
        body[index] = ord("9")
        with pytest.raises(FrameError):
            open_payload(bytes(body))

    def test_open_rejects_missing_checksum(self):
        with pytest.raises(FrameError):
            open_payload(b'{"type": "hello"}')

    def test_open_rejects_non_object(self):
        with pytest.raises(FrameError):
            open_payload(b"[1, 2, 3]")

    def test_open_rejects_garbage(self):
        with pytest.raises(FrameError):
            open_payload(b"\xff\xfe not json")

    def test_encode_frame_length_prefix(self):
        frame = encode_frame({"type": "goodbye"})
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        assert 0 < length <= MAX_FRAME_BYTES
        assert open_payload(frame[4:]) == {"type": "goodbye"}

    def test_blob_roundtrip(self):
        obj = {"system": make_system(), "inputs": None}
        blob = encode_blob(obj)
        decoded = decode_blob(blob)
        assert decoded["inputs"] is None
        assert decoded["system"].n == 3

    def test_blob_digest_guard(self):
        blob = encode_blob([1, 2, 3])
        blob["sha256"] = "0" * 64
        with pytest.raises(PayloadDigestError):
            decode_blob(blob)

    def test_blob_malformed(self):
        with pytest.raises(FrameError):
            decode_blob({"data": "!!!not-base64!!!", "sha256": "00"})
        with pytest.raises(FrameError):
            decode_blob({"sha256": "00"})

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


# ---------------------------------------------------------------------------
# the chaos-spec parser
# ---------------------------------------------------------------------------


class TestChaosSpecs:
    def test_parse_untimed(self):
        assert parse_chaos_spec("crash:0") == ("crash", 0, 0.0)
        assert parse_chaos_spec("dup:5") == ("dup", 5, 0.0)

    def test_parse_timed(self):
        assert parse_chaos_spec("hang:2:1.5") == ("hang", 2, 1.5)
        assert parse_chaos_spec("delay:1:0.25") == ("delay", 1, 0.25)

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no shard
            "crash:0:1.0",  # duration on an untimed kind
            "hang:2",  # timed kind without duration
            "explode:0",  # unknown kind
            "crash:x",  # non-integer shard
            "crash:-1",  # negative shard
            "slow:0:abc",  # non-numeric duration
            "slow:0:-1",  # negative duration
            "a:b:c:d",  # too many fields
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValidationError):
            parse_chaos_spec(bad)

    def test_specs_build_plan(self):
        plan = parse_chaos_specs(["crash:0", "delay:2:0.5"])
        assert plan.compute_fault("s", 0, 0).kind == "crash"
        assert plan.network_fault("s", 2, 0).kind == "delay"
        assert plan.compute_fault("s", 2, 0) is None
        assert plan.network_fault("s", 0, 0) is None

    def test_specs_empty_is_none(self):
        assert parse_chaos_specs([]) is None

    def test_specs_duplicate_target_rejected(self):
        with pytest.raises(ValidationError):
            parse_chaos_specs(["crash:1", "drop:1"])


# ---------------------------------------------------------------------------
# the bit-identity invariant: clean runs
# ---------------------------------------------------------------------------


class TestCleanRuns:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_to_serial(self, workers):
        reference = serial_reference()
        estimate = run_distributed(workers, lease_seconds=30.0)
        assert_identical(estimate, reference)
        assert estimate.salvaged_shards == 0
        assert not estimate.failures

    def test_workers_used_reports_peak(self):
        estimate = run_distributed(2, lease_seconds=30.0)
        assert 1 <= estimate.workers_used <= 2


# ---------------------------------------------------------------------------
# the chaos matrix: every fault kind, several worker counts
# ---------------------------------------------------------------------------

# (kind, fault seconds, lease seconds): hung shards need a lease short
# enough to expire under them; slow/delayed shards need one that does
# NOT expire, so the late summary itself is what gets exercised.
CHAOS_MATRIX = [
    ("crash", 0.0, 0.3),
    ("hang", 1.0, 0.25),
    ("slow", 0.4, 5.0),
    ("corrupt", 0.0, 0.3),
    ("drop", 0.0, 0.3),
    ("delay", 0.5, 5.0),
    ("partition", 0.0, 0.3),
    ("dup", 0.0, 0.3),
]


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "kind,seconds,lease",
        CHAOS_MATRIX,
        ids=[row[0] for row in CHAOS_MATRIX],
    )
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fault_preserves_bit_identity(self, kind, seconds, lease, workers):
        reference = serial_reference()
        plan = FaultPlan({(None, 2, 0): FaultSpec(kind, seconds=seconds)})
        estimate = run_distributed(
            workers, fault_plan=plan, lease_seconds=lease
        )
        assert_identical(estimate, reference)

    def test_corrupt_summary_rejected_then_replayed(self):
        reference = serial_reference()
        plan = FaultPlan({(None, 1, 0): FaultSpec("corrupt")})
        estimate = run_distributed(2, fault_plan=plan)
        assert_identical(estimate, reference)
        assert any(f.kind == "rejected" for f in estimate.failures)

    def test_crash_reassigns_or_salvages(self):
        reference = serial_reference()
        plan = FaultPlan({(None, 0, 0): FaultSpec("crash")})
        estimate = run_distributed(2, fault_plan=plan)
        assert_identical(estimate, reference)
        assert any(f.kind == "disconnect" for f in estimate.failures)

    def test_two_simultaneous_faults(self):
        reference = serial_reference()
        plan = FaultPlan(
            {
                (None, 0, 0): FaultSpec("partition"),
                (None, 3, 0): FaultSpec("dup"),
            }
        )
        estimate = run_distributed(2, fault_plan=plan)
        assert_identical(estimate, reference)


# ---------------------------------------------------------------------------
# duplicate summaries are idempotent
# ---------------------------------------------------------------------------


class TestDuplicateIdempotence:
    def test_dup_counted_once(self):
        reference = serial_reference()
        plan = FaultPlan({(None, 2, 0): FaultSpec("dup")})
        with use_instrumentation() as instr:
            instr.events = EventBus(subscribers=[], metrics=instr.metrics)
            estimate = run_distributed(
                2, fault_plan=plan, instrumentation=instr
            )
            counters = instr.metrics.snapshot().counters
        assert_identical(estimate, reference)
        assert counters.get("distributed.duplicate_summaries", 0) >= 1
        # the duplicate changed nothing: each shard's trials counted once
        total = sum(o.trials for o in estimate.shard_outcomes)
        assert total == TRIALS


# ---------------------------------------------------------------------------
# the degradation ladder
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_no_workers_degrades_to_local(self):
        reference = serial_reference()
        estimate = run_distributed(
            0, config_kwargs={"wait_for_workers_seconds": 0.2}
        )
        assert_identical(estimate, reference)
        assert estimate.salvaged_shards == SHARDS
        assert estimate.workers_used == 1

    def test_progress_fires_once_per_shard_in_order(self):
        reports = []
        run_distributed(2, lease_seconds=30.0, progress=reports.append)
        assert [r.index for r in reports] == list(range(SHARDS))
        assert all(r.total_shards == SHARDS for r in reports)

    def test_progress_order_survives_chaos(self):
        plan = FaultPlan({(None, 0, 0): FaultSpec("drop")})
        reports = []
        run_distributed(2, fault_plan=plan, progress=reports.append)
        assert [r.index for r in reports] == list(range(SHARDS))
        assert reports[0].recovered  # shard 0 needed a second lease


# ---------------------------------------------------------------------------
# the real transport: repro work subprocesses
# ---------------------------------------------------------------------------


class TestSubprocessWorkers:
    def test_subprocess_workers_bit_identical(self, tmp_path):
        reference = serial_reference()
        src = Path(__file__).resolve().parent.parent / "src"
        spawned = []

        def on_ready(port):
            import os

            env = dict(os.environ)
            env["PYTHONPATH"] = str(src) + (
                os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH")
                else ""
            )
            for index in range(2):
                spawned.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro.cli",
                            "work",
                            "--connect",
                            f"127.0.0.1:{port}",
                            "--worker-id",
                            f"test-{index}",
                        ],
                        env=env,
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                )

        try:
            estimate = estimate_winning_probability_distributed(
                make_system(),
                TRIALS,
                SeedSequenceFactory(SEED),
                stream=STREAM,
                shards=SHARDS,
                config=DistributedConfig(
                    port=0,
                    lease_seconds=30.0,
                    wait_for_workers_seconds=30.0,
                    idle_grace_seconds=1.0,
                ),
                on_ready=on_ready,
            )
        finally:
            for proc in spawned:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert_identical(estimate, reference)
        assert estimate.salvaged_shards == 0
        assert all(proc.returncode == 0 for proc in spawned)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_seconds": 0.0},
            {"frame_timeout_seconds": -1.0},
            {"wait_for_workers_seconds": -0.1},
            {"idle_grace_seconds": -1.0},
            {"max_assignments_per_shard": 0},
            {"port": 70000},
            {"max_phase_seconds": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DistributedConfig(**kwargs)

    def test_negative_local_workers_rejected(self):
        with pytest.raises(ValueError):
            estimate_winning_probability_distributed(
                make_system(),
                100,
                SeedSequenceFactory(0),
                local_workers=-1,
            )
