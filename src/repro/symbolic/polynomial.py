"""Dense univariate polynomials over exact rationals.

:class:`Polynomial` is the workhorse of the symbolic substrate: every
winning probability in the paper restricts, on each breakpoint interval,
to a polynomial in the common threshold ``beta`` with rational
coefficients.  The class supports the full arithmetic needed to build
those polynomials directly from the paper's inclusion-exclusion sums
(addition, multiplication, integer powers, composition, differentiation,
exact division with remainder) plus exact and floating evaluation.

Instances are immutable and normalised (no trailing zero coefficients),
so they hash and compare by value.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["Polynomial"]

_Operand = Union["Polynomial", int, Fraction, str, float]


class Polynomial:
    """An immutable univariate polynomial with ``Fraction`` coefficients.

    Coefficients are stored densely in increasing-degree order:
    ``Polynomial([a0, a1, a2])`` represents ``a0 + a1*x + a2*x**2``.

    >>> p = Polynomial([1, 0, 3])      # 1 + 3 x^2
    >>> p(Fraction(1, 2))
    Fraction(7, 4)
    >>> p.derivative()
    Polynomial([0, 6])
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coefficients: Iterable[RationalLike] = ()):
        coeffs = [as_fraction(c) for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs: Tuple[Fraction, ...] = tuple(coeffs)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls(())

    @classmethod
    def one(cls) -> "Polynomial":
        """The constant polynomial 1."""
        return cls((1,))

    @classmethod
    def constant(cls, value: RationalLike) -> "Polynomial":
        """The constant polynomial *value*."""
        return cls((as_fraction(value),))

    @classmethod
    def x(cls) -> "Polynomial":
        """The identity polynomial ``x``."""
        return cls((0, 1))

    @classmethod
    def monomial(cls, degree: int, coefficient: RationalLike = 1) -> "Polynomial":
        """``coefficient * x**degree``."""
        if degree < 0:
            raise ValueError(f"monomial degree must be >= 0, got {degree}")
        coeffs = [Fraction(0)] * degree + [as_fraction(coefficient)]
        return cls(coeffs)

    @classmethod
    def linear(cls, constant: RationalLike, slope: RationalLike) -> "Polynomial":
        """``constant + slope * x`` -- the building block of the paper's sums."""
        return cls((as_fraction(constant), as_fraction(slope)))

    @classmethod
    def from_roots(cls, roots: Sequence[RationalLike]) -> "Polynomial":
        """Monic polynomial with the given rational roots."""
        result = cls.one()
        for r in roots:
            result = result * cls.linear(-as_fraction(r), 1)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> Tuple[Fraction, ...]:
        """Coefficients in increasing-degree order (normalised)."""
        return self._coeffs

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return len(self._coeffs) - 1

    @property
    def leading_coefficient(self) -> Fraction:
        """Leading coefficient; 0 for the zero polynomial."""
        return self._coeffs[-1] if self._coeffs else Fraction(0)

    def is_zero(self) -> bool:
        """``True`` for the zero polynomial."""
        return not self._coeffs

    def is_constant(self) -> bool:
        """``True`` when the degree is at most 0."""
        return len(self._coeffs) <= 1

    def coefficient(self, degree: int) -> Fraction:
        """Coefficient of ``x**degree`` (0 when out of range)."""
        if 0 <= degree < len(self._coeffs):
            return self._coeffs[degree]
        return Fraction(0)

    def __iter__(self) -> Iterator[Fraction]:
        return iter(self._coeffs)

    def __len__(self) -> int:
        return len(self._coeffs)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, point: RationalLike) -> Fraction:
        """Exact evaluation by Horner's rule."""
        x = as_fraction(point)
        result = Fraction(0)
        for c in reversed(self._coeffs):
            result = result * x + c
        return result

    def evaluate_float(self, point: float) -> float:
        """Floating-point Horner evaluation (fast path for plotting grids)."""
        result = 0.0
        for c in reversed(self._coeffs):
            result = result * point + float(c)
        return result

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: _Operand) -> "Polynomial":
        if isinstance(value, Polynomial):
            return value
        return Polynomial((as_fraction(value),))

    def __add__(self, other: _Operand) -> "Polynomial":
        other = self._coerce(other)
        n = max(len(self._coeffs), len(other._coeffs))
        return Polynomial(
            self.coefficient(i) + other.coefficient(i) for i in range(n)
        )

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(-c for c in self._coeffs)

    def __sub__(self, other: _Operand) -> "Polynomial":
        return self + (-self._coerce(other))

    def __rsub__(self, other: _Operand) -> "Polynomial":
        return self._coerce(other) + (-self)

    def __mul__(self, other: _Operand) -> "Polynomial":
        other = self._coerce(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero()
        result = [Fraction(0)] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other._coeffs):
                result[i + j] += a * b
        return Polynomial(result)

    __rmul__ = __mul__

    def __truediv__(self, scalar: RationalLike) -> "Polynomial":
        s = as_fraction(scalar)
        if s == 0:
            raise ZeroDivisionError("polynomial division by zero scalar")
        return Polynomial(c / s for c in self._coeffs)

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int):
            raise TypeError("polynomial exponent must be an int")
        if exponent < 0:
            raise ValueError("polynomial exponent must be >= 0")
        result = Polynomial.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Exact polynomial division: returns ``(quotient, remainder)``."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero polynomial")
        remainder = list(self._coeffs)
        dlead = divisor.leading_coefficient
        ddeg = divisor.degree
        quotient = [Fraction(0)] * max(len(remainder) - ddeg, 0)
        for i in range(len(remainder) - 1, ddeg - 1, -1):
            factor = remainder[i] / dlead
            if factor == 0:
                continue
            quotient[i - ddeg] = factor
            for j, c in enumerate(divisor._coeffs):
                remainder[i - ddeg + j] -= factor * c
        return Polynomial(quotient), Polynomial(remainder[:ddeg] if ddeg > 0 else ())

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[0]

    # ------------------------------------------------------------------
    # Calculus / transforms
    # ------------------------------------------------------------------
    def derivative(self, order: int = 1) -> "Polynomial":
        """The *order*-th derivative (exact)."""
        if order < 0:
            raise ValueError("derivative order must be >= 0")
        poly = self
        for _ in range(order):
            poly = Polynomial(
                poly._coeffs[i] * i for i in range(1, len(poly._coeffs))
            )
        return poly

    def antiderivative(self, constant: RationalLike = 0) -> "Polynomial":
        """An antiderivative with constant term *constant*."""
        coeffs = [as_fraction(constant)]
        coeffs.extend(c / (i + 1) for i, c in enumerate(self._coeffs))
        return Polynomial(coeffs)

    def integrate(self, lower: RationalLike, upper: RationalLike) -> Fraction:
        """Exact definite integral over ``[lower, upper]``."""
        anti = self.antiderivative()
        return anti(upper) - anti(lower)

    def compose(self, inner: "Polynomial") -> "Polynomial":
        """Polynomial composition ``self(inner(x))`` by Horner's rule."""
        result = Polynomial.zero()
        for c in reversed(self._coeffs):
            result = result * inner + Polynomial.constant(c)
        return result

    def shift(self, offset: RationalLike) -> "Polynomial":
        """Return ``p(x + offset)``."""
        return self.compose(Polynomial.linear(as_fraction(offset), 1))

    def scale_argument(self, factor: RationalLike) -> "Polynomial":
        """Return ``p(factor * x)``."""
        f = as_fraction(factor)
        return Polynomial(c * f**i for i, c in enumerate(self._coeffs))

    def primitive_part(self, keep_sign: bool = False) -> "Polynomial":
        """Scale to integer, content-free coefficients.

        By default the leading coefficient is made positive (the
        classical primitive part); with ``keep_sign=True`` the scaling
        factor is strictly positive, so every evaluation keeps its sign
        -- required when the polynomial participates in a Sturm chain,
        where flipping signs would corrupt the variation counts.  Either
        way the root set is unchanged and coefficient growth stays small.
        """
        if self.is_zero():
            return self
        from math import gcd

        denom_lcm = 1
        for c in self._coeffs:
            denom_lcm = denom_lcm * c.denominator // gcd(denom_lcm, c.denominator)
        ints = [int(c * denom_lcm) for c in self._coeffs]
        g = 0
        for v in ints:
            g = gcd(g, abs(v))
        if g == 0:
            return self
        ints = [v // g for v in ints]
        if ints[-1] < 0 and not keep_sign:
            ints = [-v for v in ints]
        return Polynomial(ints)

    def gcd(self, other: "Polynomial") -> "Polynomial":
        """Monic polynomial greatest common divisor (Euclid)."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        if a.is_zero():
            return a
        return a / a.leading_coefficient

    def squarefree_part(self) -> "Polynomial":
        """The radical ``p / gcd(p, p')`` -- same roots, all simple."""
        if self.is_zero() or self.is_constant():
            return self
        g = self.gcd(self.derivative())
        if g.is_constant():
            return self
        return self.divmod(g)[0]

    # ------------------------------------------------------------------
    # Comparison / hashing / rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Polynomial):
            return self._coeffs == other._coeffs
        if isinstance(other, (int, Fraction)):
            return self == Polynomial.constant(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __bool__(self) -> bool:
        return bool(self._coeffs)

    def __repr__(self) -> str:
        return f"Polynomial([{', '.join(str(c) for c in self._coeffs)}])"

    def __str__(self) -> str:
        return self.pretty()

    def pretty(self, variable: str = "x") -> str:
        """Human-readable rendering, highest degree first.

        >>> Polynomial([Fraction(1, 6), 0, Fraction(3, 2)]).pretty("b")
        '3/2*b^2 + 1/6'
        """
        if self.is_zero():
            return "0"
        parts = []
        for i in range(self.degree, -1, -1):
            c = self._coeffs[i]
            if c == 0:
                continue
            if i == 0:
                term = str(abs(c))
            elif i == 1:
                term = variable if abs(c) == 1 else f"{abs(c)}*{variable}"
            else:
                term = (
                    f"{variable}^{i}" if abs(c) == 1 else f"{abs(c)}*{variable}^{i}"
                )
            if not parts:
                parts.append(term if c > 0 else f"-{term}")
            else:
                parts.append(f"+ {term}" if c > 0 else f"- {term}")
        return " ".join(parts)
