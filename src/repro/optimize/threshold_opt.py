"""Exact maximisation of the symmetric threshold winning probability.

Section 5.2 of the paper maximises, over the common threshold ``beta``,
the piecewise polynomial of Theorem 5.1.  This module does exactly
that, mechanically, for any ``(n, delta)``:

1. build the exact piecewise polynomial (``symmetric_threshold_winning_polynomial``);
2. differentiate it piece by piece (the Theorem 5.2 stationarity object);
3. isolate the real roots of each piece's derivative with Sturm
   sequences, refine them to rational enclosures;
4. compare the winning probability at all stationary points,
   breakpoints and endpoints.

The result records the optimal threshold, the optimal probability, and
the polynomial piece the optimum lies on -- which for ``n = 3,
delta = 1`` is the paper's cubic ``-11/6 + 9b - 21/2 b^2 + 7/2 b^3``
with the optimum at ``beta* = 1 - sqrt(1/7)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from repro.cache import memoized_kernel
from repro.core.nonoblivious import symmetric_threshold_winning_polynomial
from repro.errors import ValidationError
from repro.observability import get_instrumentation
from repro.validation.contracts import check_probability
from repro.symbolic.piecewise import Piece, PiecewisePolynomial
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction
from repro.symbolic.roots import real_roots

__all__ = [
    "ThresholdOptimum",
    "optimal_symmetric_threshold",
    "optimal_symmetric_threshold_batched",
]


@dataclass(frozen=True)
class ThresholdOptimum:
    """The exact optimum of the symmetric threshold problem."""

    n: int
    delta: Fraction
    beta: Fraction
    probability: Fraction
    piece: Piece
    curve: PiecewisePolynomial

    @property
    def stationarity_polynomial(self) -> Polynomial:
        """The derivative of the piece the optimum lies on.

        Zeroing this polynomial is the paper's optimality condition on
        that interval (e.g. a positive multiple of
        ``beta^2 - 2 beta + 6/7`` for ``n = 3, delta = 1``).
        """
        return self.piece.polynomial.derivative()

    def is_interior(self) -> bool:
        """Whether the optimum is strictly inside its piece (a true
        stationary point rather than a breakpoint/endpoint)."""
        return self.piece.lower < self.beta < self.piece.upper

    def __str__(self) -> str:
        return (
            f"n={self.n}, delta={self.delta}: beta*={float(self.beta):.6f}, "
            f"P*={float(self.probability):.6f} on piece "
            f"[{self.piece.lower}, {self.piece.upper}]"
        )


@memoized_kernel(persist=False)
def optimal_symmetric_threshold(
    n: int,
    delta: RationalLike,
    tolerance: RationalLike = Fraction(1, 10**12),
) -> ThresholdOptimum:
    """Maximise ``beta -> P(beta)`` exactly over ``[0, 1]``.

    *tolerance* bounds the width of the rational enclosure of any
    irrational stationary point (the probability value inherits an
    error of the same order through the polynomial's Lipschitz bound;
    at the default 1e-12 this is far below anything the paper reports).
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    d = as_fraction(delta)
    if d <= 0:
        raise ValidationError(f"delta must be positive, got {d}")
    instr = get_instrumentation()
    with instr.span(
        "optimize.symmetric_threshold", n=n, delta=str(d)
    ), instr.metrics.timer("optimize.threshold_seconds"):
        curve = symmetric_threshold_winning_polynomial(n, d)
        beta, probability = curve.maximize(tolerance)
        piece = curve.piece_at(beta)
        instr.increment("optimize.threshold_searches")
        instr.increment("optimize.pieces_searched", len(curve.pieces))
    check_probability("optimal_symmetric_threshold", probability)
    return ThresholdOptimum(
        n=n,
        delta=d,
        beta=beta,
        probability=probability,
        piece=piece,
        curve=curve,
    )


def optimal_symmetric_threshold_batched(
    n: int,
    delta: RationalLike,
    tolerance: RationalLike = Fraction(1, 10**12),
    samples_per_piece: int = 64,
) -> ThresholdOptimum:
    """Exact optimum via a sound batched prescreen.

    The same answer as :func:`optimal_symmetric_threshold` -- the
    test-suite asserts equality -- reached faster for curves with many
    pieces: a vectorised sweep (:mod:`repro.batch`) samples every piece
    on a float grid, a per-piece Lipschitz bound turns the samples into
    a rigorous upper bound on the piece's true maximum, and only the
    pieces whose upper bound reaches the best certified sample are
    searched exactly (Sturm root isolation on the derivative).

    The pruning is *sound*, never heuristic: a piece's bound uses the
    exact coefficients (derivative magnitude ``sum i |c_i| M^(i-1)``
    on its interval), adds the sampling gap and the per-point float
    evaluation bound, and an infinite evaluation bound (a point near a
    non-representable breakpoint) simply keeps the piece.  Any tie for
    the maximum therefore survives pruning, so the tie-break toward
    the smallest argmax matches the exact optimiser's.
    """
    import numpy as np

    from repro.batch.tables import compiled_threshold_curve

    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    d = as_fraction(delta)
    if d <= 0:
        raise ValidationError(f"delta must be positive, got {d}")
    instr = get_instrumentation()
    with instr.span(
        "optimize.symmetric_threshold_batched", n=n, delta=str(d)
    ), instr.metrics.timer("optimize.threshold_batched_seconds"):
        compiled = compiled_threshold_curve(n, d)
        curve = compiled.exact
        pieces = curve.pieces
        count = max(samples_per_piece, 2)
        grids = [
            np.linspace(float(p.lower), float(p.upper), count)
            for p in pieces
        ]
        values, bounds = compiled.evaluate_with_bound(
            np.concatenate(grids)
        )
        finite = np.isfinite(bounds)
        # Certified floor: some sampled point provably reaches this.
        floor = (
            float(np.max(values[finite] - bounds[finite]))
            if bool(finite.any())
            else -np.inf
        )
        survivors = []
        for index, piece in enumerate(pieces):
            sample_values = values[index * count : (index + 1) * count]
            sample_bounds = bounds[index * count : (index + 1) * count]
            # Exact derivative-magnitude (Lipschitz) bound on the piece.
            scale = max(abs(piece.lower), abs(piece.upper))
            lipschitz = Fraction(0)
            for degree, coeff in enumerate(piece.polynomial.coefficients):
                if degree:
                    lipschitz += degree * abs(coeff) * scale ** (degree - 1)
            gap = float(piece.width()) / (2 * (count - 1))
            slack = (
                float(np.max(sample_bounds))
                if bool(np.isfinite(sample_bounds).all())
                else np.inf
            )
            ceiling = (
                float(np.max(sample_values))
                + float(lipschitz) * gap * (1.0 + 1e-9)
                + slack
                + 1e-12
            )
            if ceiling >= floor:
                survivors.append(piece)
        instr.increment("batch.pieces_pruned", len(pieces) - len(survivors))
        instr.increment("batch.pieces_searched", len(survivors))
        # Exact search over the surviving pieces only -- the same
        # candidates maximize() would visit there, in ascending order
        # so ties break toward the smallest argmax.
        tol = as_fraction(tolerance)
        candidates = set()
        for piece in survivors:
            candidates.add(piece.lower)
            candidates.add(piece.upper)
            deriv = piece.polynomial.derivative()
            if deriv.is_zero() or deriv.is_constant():
                continue
            for root in real_roots(deriv, piece.lower, piece.upper, tol):
                if piece.lower <= root <= piece.upper:
                    candidates.add(root)
        best_x = None
        best_v = None
        for x in sorted(candidates):
            v = curve(x)
            if best_v is None or v > best_v:
                best_x, best_v = x, v
        assert best_x is not None and best_v is not None
    check_probability("optimal_symmetric_threshold_batched", best_v)
    return ThresholdOptimum(
        n=n,
        delta=d,
        beta=best_x,
        probability=best_v,
        piece=curve.piece_at(best_x),
        curve=curve,
    )


def local_maxima(
    n: int,
    delta: RationalLike,
    tolerance: RationalLike = Fraction(1, 10**12),
) -> List[Tuple[Fraction, Fraction]]:
    """All local maxima of the threshold curve (for landscape studies).

    A candidate point is a local maximum when the curve is no larger at
    points ``tolerance``-close on either side (one-sided at the domain
    boundary).  Used by the ablation benchmarks to show the landscape
    is not unimodal in general.
    """
    instr = get_instrumentation()
    with instr.span("optimize.local_maxima", n=n, delta=str(delta)):
        curve = symmetric_threshold_winning_polynomial(n, as_fraction(delta))
        tol = as_fraction(tolerance)
        probe = max(tol * 1000, Fraction(1, 10**6))
        maxima = []
        for x in curve.critical_points(tol):
            value = curve(x)
            left = max(curve.lower, x - probe)
            right = min(curve.upper, x + probe)
            if curve(left) <= value and curve(right) <= value:
                maxima.append((x, value))
            instr.increment("optimize.candidates_probed")
    return maxima
