"""Render and export collected telemetry.

Three outputs from one instrumented run:

* :func:`render_report` -- the human-readable run report printed by
  every CLI subcommand's ``--profile`` flag: counters, gauges, timing
  histograms, aggregate throughput, and the span tree;
* :func:`write_metrics_jsonl` -- one JSON object per line (a ``meta``
  header line, then one line per counter/gauge/timing), the format
  behind ``--metrics-out``;
* :func:`write_chrome_trace` -- the span forest as a Chrome trace-event
  file (``{"traceEvents": [...]}``), the format behind ``--trace-out``,
  loadable in ``chrome://tracing`` or Perfetto.

Only the rendering lives here; all collection is in
:mod:`~repro.observability.metrics` and
:mod:`~repro.observability.tracing`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from repro.observability.metrics import MetricsSnapshot
from repro.observability.progress import format_rate
from repro.observability.runmeta import run_header
from repro.observability.tracing import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.observability import Instrumentation

__all__ = [
    "FAILURE_COUNTERS",
    "METRICS_JSONL_SCHEMA_VERSION",
    "chrome_counter_events",
    "render_failure_section",
    "render_report",
    "render_span_tree",
    "write_chrome_trace",
    "write_metrics_jsonl",
]

METRICS_JSONL_SCHEMA_VERSION = 1

#: Counters recorded by the fault-tolerant sharded executor.  Each maps
#: to the one-line gloss shown in the report's failure section; the
#: section appears only when at least one of them is non-zero, so a
#: clean run's report is unchanged.
FAILURE_COUNTERS = {
    "engine.shard_failures": "shard attempts that failed",
    "engine.shard_retries": "retries scheduled (same seed stream replayed)",
    "engine.shard_timeouts": "shard attempts killed at the wall-clock limit",
    "engine.pool_rebuilds": "process-pool reconstructions",
    "engine.shards_salvaged": "completed shards kept across a failure",
    "engine.shards_resumed": "shards loaded from a checkpoint",
    "engine.pickle_fallback": "serial fallbacks due to unpicklable work",
}


def render_span_tree(
    tracer: Tracer, max_depth: int = 6, max_children: int = 12
) -> str:
    """Indented text rendering of the tracer's span forest.

    Depth and sibling counts are clamped (with an elision marker) so a
    fine sweep cannot turn the report into a thousand-line dump.
    """
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        duration = (
            "?" if span.duration_us is None
            else f"{span.duration_us / 1e6:.4f} s"
        )
        meta = ""
        if span.meta:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span.meta.items())
            )
            meta = f"  [{rendered}]"
        lines.append(f"{'  ' * depth}{span.name}  {duration}{meta}")
        if depth + 1 >= max_depth and span.children:
            lines.append(
                f"{'  ' * (depth + 1)}... {len(span.children)} nested "
                "span(s) elided"
            )
            return
        for child in span.children[:max_children]:
            visit(child, depth + 1)
        if len(span.children) > max_children:
            lines.append(
                f"{'  ' * (depth + 1)}... "
                f"{len(span.children) - max_children} more sibling(s)"
            )

    for root in tracer.roots():
        visit(root, 0)
    if tracer.dropped:
        lines.append(f"... {tracer.dropped} span(s) dropped at cap")
    return "\n".join(lines)


def render_failure_section(snapshot: MetricsSnapshot) -> str:
    """The failures/recoveries section of the run report.

    Empty (``""``) when no fault-tolerance counter fired -- i.e. for
    every clean run -- so it costs nothing in the common case.  The
    recovery machinery replays named seed streams, so a non-empty
    section never implies the run's numbers are suspect; it reports
    wall-clock spent surviving, not results at risk.
    """
    rows = [
        (name, gloss)
        for name, gloss in FAILURE_COUNTERS.items()
        if snapshot.counters.get(name)
    ]
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    lines = ["failures and recoveries:"]
    for name, gloss in rows:
        lines.append(
            f"  {name:<{width}}  {snapshot.counters[name]:>8,}  ({gloss})"
        )
    return "\n".join(lines)


def render_report(
    instrumentation: "Instrumentation",
    title: str = "instrumentation report",
) -> str:
    """The human-readable run report for one instrumented run."""
    snapshot = instrumentation.metrics.snapshot()
    lines = [f"== {title} =="]

    if snapshot.counters:
        lines.append("counters:")
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append(
                f"  {name:<{width}}  {snapshot.counters[name]:>14,}"
            )

    if snapshot.gauges:
        lines.append("gauges:")
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            lines.append(
                f"  {name:<{width}}  {snapshot.gauges[name]:>14,.6g}"
            )

    if snapshot.timings:
        lines.append(
            "timings (seconds):"
        )
        width = max(len(name) for name in snapshot.timings)
        header = (
            f"  {'name':<{width}}  {'count':>8}  {'total':>10}  "
            f"{'mean':>10}  {'min':>10}  {'max':>10}"
        )
        lines.append(header)
        for name in sorted(snapshot.timings):
            stats = snapshot.timings[name]
            lines.append(
                f"  {name:<{width}}  {stats.count:>8,}  "
                f"{stats.total_seconds:>10.4f}  "
                f"{stats.mean_seconds:>10.6f}  "
                f"{stats.min_seconds:>10.6f}  "
                f"{stats.max_seconds:>10.6f}"
            )

    failures = render_failure_section(snapshot)
    if failures:
        lines.append(failures)

    throughput = instrumentation.throughput
    if throughput.units:
        lines.append(
            f"throughput: {format_rate(throughput.rate)} "
            f"({throughput.units:,} trials in {throughput.seconds:.3f} s "
            "of engine wall-clock)"
        )

    tree = render_span_tree(instrumentation.tracer)
    if tree:
        lines.append("spans:")
        lines.append(tree)

    if len(lines) == 1:
        lines.append("(nothing recorded)")
    return "\n".join(lines)


def write_metrics_jsonl(
    path: Union[str, Path],
    snapshot: MetricsSnapshot,
    label: Optional[str] = None,
) -> Path:
    """Write a snapshot as JSONL; returns the path written.

    Line 1 is a ``{"type": "meta", ...}`` header carrying the common
    run stamp (run id, ISO-8601 UTC start time, repro version, argv --
    see :func:`repro.observability.runmeta.run_header`), so the export
    is joinable with every other artifact of the same run; every
    further line is one metric.  Timing durations are exported in
    integer nanoseconds, exactly as accumulated.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        header = {
            "type": "meta",
            "schema_version": METRICS_JSONL_SCHEMA_VERSION,
            **run_header(),
        }
        if label is not None:
            header["label"] = label
        handle.write(json.dumps(header) + "\n")
        for name in sorted(snapshot.counters):
            handle.write(
                json.dumps(
                    {
                        "type": "counter",
                        "name": name,
                        "value": snapshot.counters[name],
                    }
                )
                + "\n"
            )
        for name in sorted(snapshot.gauges):
            handle.write(
                json.dumps(
                    {
                        "type": "gauge",
                        "name": name,
                        "value": snapshot.gauges[name],
                    }
                )
                + "\n"
            )
        for name in sorted(snapshot.timings):
            stats = snapshot.timings[name]
            handle.write(
                json.dumps(
                    {
                        "type": "timing",
                        "name": name,
                        "count": stats.count,
                        "total_ns": stats.total_ns,
                        "min_ns": stats.min_ns,
                        "max_ns": stats.max_ns,
                        "bucket_bounds_ns": list(stats.bucket_bounds_ns),
                        "bucket_counts": list(stats.bucket_counts),
                    }
                )
                + "\n"
            )
    return target


#: The Chrome counter tracks rendered from telemetry rate samples:
#: (sample key, track name, value label).
_COUNTER_TRACKS = (
    ("trials_per_second", "throughput", "trials/s"),
    ("cache_hit_rate", "cache hit rate", "hit fraction"),
    ("batch_fallback_rate", "batch fallback rate", "fallback fraction"),
)


def chrome_counter_events(
    samples: List[dict],
) -> List[dict]:
    """Chrome counter events (``"ph": "C"``) from telemetry samples.

    *samples* come from :func:`repro.observability.events.
    counter_samples_from_events`: one dict per periodic metrics
    snapshot with ``t_us`` plus the rates at that instant.  Each
    non-``None`` rate becomes one point on its counter track, so
    Perfetto shows throughput, cache hit-rate and batch fallback-rate
    *over time* alongside the span rows.
    """
    events: List[dict] = []
    for sample in samples:
        for key, track, label in _COUNTER_TRACKS:
            value = sample.get(key)
            if value is None:
                continue
            events.append(
                {
                    "name": track,
                    "cat": "repro",
                    "ph": "C",
                    "ts": sample["t_us"],
                    "pid": 1,
                    "args": {label: value},
                }
            )
    return events


def write_chrome_trace(
    path: Union[str, Path],
    tracer: Tracer,
    counter_samples: Optional[List[dict]] = None,
) -> Path:
    """Write the span forest as a Chrome trace-event JSON file.

    The payload is stamped with the common run header under
    ``"metadata"`` (ignored by chrome://tracing and Perfetto, joinable
    by everything else).  *counter_samples*, when given, add
    throughput / cache hit-rate / batch fallback-rate counter tracks
    (see :func:`chrome_counter_events`).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    events = tracer.chrome_trace_events()
    if counter_samples:
        events.extend(chrome_counter_events(counter_samples))
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": run_header(),
    }
    with target.open("w") as handle:
        json.dump(payload, handle, indent=2)
    return target
