"""Certified float evaluation of alternating inclusion-exclusion sums.

Every closed form in the paper is an alternating sum of large terms
(Proposition 2.2, Lemmas 2.4-2.7): exact ``Fraction`` evaluation is
always correct but the integer arithmetic grows quickly with the
dimension, while naive float evaluation silently loses every digit to
cancellation once the terms dwarf the result (the classic Irwin-Hall
breakdown around ``m ~ 25``).

This module implements the middle road: **compensated (Neumaier)
summation with a running a-posteriori error bound**.  The sum is
evaluated in floats, and alongside it two cheap accumulators are
carried:

* the sum of term magnitudes, bounding the rounding error injected by
  the summation itself (``~ 2 eps * sum |term|`` for a compensated
  sum);
* the per-term error propagated from inexact inputs -- each caller
  supplies, with every term, a bound on the absolute error of the
  ``base`` being raised to the ``m``-th power, which a first-order
  (derivative) bound converts to a term error, with an explicit slack
  term when the base is close enough to zero that the paper's strict
  ``> 0`` condition might be misclassified in float.

The result is *certified* when the total bound is small relative to
the computed value; otherwise callers fall back to the exact path
(and count the event).  The bound is deliberately conservative -- a
false "not certified" costs a fallback, a false "certified" would be a
lie -- and the property suite asserts the certificate against exact
values on randomized cases.

Pure float/math code apart from :func:`resolve_guarded`, which lazily
reaches into :mod:`repro.observability` to count certified results and
exact fallbacks.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import NumericalInstabilityError

__all__ = [
    "EPS",
    "CertifiedFloat",
    "certified_alternating_sum",
    "neumaier_sum",
    "resolve_guarded",
]

#: Machine epsilon of IEEE-754 double precision (2**-52).
EPS: float = sys.float_info.epsilon


@dataclass(frozen=True)
class CertifiedFloat:
    """A float result carrying its own a-posteriori error bound.

    ``certified`` is the caller-policy verdict: the bound is small
    enough (relative to *value*) that the float can replace the exact
    result.  ``terms`` records how many series terms contributed.
    """

    value: float
    error_bound: float
    certified: bool
    terms: int

    def require_certified(self, context: str) -> "CertifiedFloat":
        """Return self, raising :class:`NumericalInstabilityError` when
        the bound failed to certify the value."""
        if not self.certified:
            raise NumericalInstabilityError(
                f"{context}: float result {self.value!r} carries error "
                f"bound {self.error_bound:.3e}, too wide to certify; "
                "use the exact Fraction path"
            )
        return self


def neumaier_sum(values: Iterable[float]) -> Tuple[float, float]:
    """Compensated sum of *values*: returns ``(total, abs_sum)``.

    Neumaier's variant of Kahan summation: the compensation term picks
    whichever of the running sum and the addend is smaller in
    magnitude, so it stays accurate even when an addend exceeds the
    running sum.  ``abs_sum`` (the sum of magnitudes) is what the
    caller needs to bound the residual rounding error.
    """
    total = 0.0
    compensation = 0.0
    abs_sum = 0.0
    for value in values:
        partial = total + value
        if abs(total) >= abs(value):
            compensation += (total - partial) + value
        else:
            compensation += (value - partial) + total
        total = partial
        abs_sum += abs(value)
    return total + compensation, abs_sum


def certified_alternating_sum(
    signed_bases: Iterable[Tuple[int, float, float]],
    power: int,
    normaliser: float,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
) -> CertifiedFloat:
    """Evaluate ``(1/normaliser) * sum sign * base**power`` with a bound.

    *signed_bases* yields ``(sign, base, base_error)`` triples: the
    paper's strict-condition convention applies, so terms with
    ``base <= 0`` contribute nothing.  *base_error* bounds the absolute
    error of *base* (from inexact shifts/ratios computed in float);
    a first-order bound ``power * base**(power-1) * base_error`` plus a
    relative ``(power + 1) * eps`` for the power itself converts it to
    a term error.  When ``|base| <= base_error`` the sign of the exact
    base is unknown, so the slack ``(2 * base_error)**power`` covers a
    possible misclassification of the strict condition.

    The result is certified when the accumulated bound does not exceed
    ``max(abs_tol, rel_tol * |value|)``.
    """
    if power < 1:
        raise ValueError(f"power must be >= 1, got {power}")
    if normaliser == 0.0:
        raise ValueError("normaliser must be nonzero")
    total = 0.0
    compensation = 0.0
    abs_sum = 0.0
    term_error = 0.0
    count = 0
    try:
        for sign, base, base_error in signed_bases:
            if abs(base) <= base_error:
                # The exact base may sit on the other side of the strict
                # condition; whichever way, the term is at most this big.
                term_error += (2.0 * base_error) ** power
            if base <= 0.0:
                continue
            term = base**power
            term_error += term * (power + 1) * EPS
            if base_error > 0.0:
                term_error += power * base ** (power - 1) * base_error
            addend = term if sign > 0 else -term
            partial = total + addend
            if abs(total) >= abs(addend):
                compensation += (total - partial) + addend
            else:
                compensation += (addend - partial) + total
            total = partial
            abs_sum += term
            count += 1
    except OverflowError:
        # A term escaped float range (float ** int raises instead of
        # returning inf).  The series is unsalvageable in floats; hand
        # the caller an uncertified result so the normal fallback
        # policy -- not an exception -- decides what happens next.
        return CertifiedFloat(
            value=math.nan,
            error_bound=math.inf,
            certified=False,
            terms=count,
        )
    raw = total + compensation
    # Compensated summation leaves ~2 eps per unit of magnitude summed,
    # plus one rounding for folding the compensation back in.
    summation_error = 2.0 * EPS * abs_sum + EPS * abs(raw)
    scale = abs(normaliser)
    value = raw / normaliser
    bound = (term_error + summation_error) / scale + 2.0 * EPS * abs(value)
    certified = bound <= max(abs_tol, rel_tol * abs(value))
    return CertifiedFloat(
        value=value,
        error_bound=bound,
        certified=certified,
        terms=count,
    )


def resolve_guarded(
    context: str,
    guarded: CertifiedFloat,
    exact_thunk,
    fallback: str = "exact",
) -> float:
    """Apply the fallback policy to a guarded evaluation.

    Certified results are returned as-is.  Uncertified results either
    fall back to *exact_thunk* (``fallback="exact"``, the transparent
    default) or raise (``fallback="raise"``).  Both outcomes are
    counted on the active metrics registry: ``fastpath.calls``,
    ``fastpath.certified``, ``fastpath.fallbacks`` and a per-context
    ``fastpath.fallbacks.<context>`` -- so an operator reading a
    ``--profile`` report sees exactly how often the exact path had to
    step in.
    """
    if fallback not in ("exact", "raise"):
        raise ValueError(
            f"fallback must be 'exact' or 'raise', got {fallback!r}"
        )
    from repro.observability import get_instrumentation

    instr = get_instrumentation()
    if instr.enabled:
        instr.increment("fastpath.calls")
        if guarded.certified:
            instr.increment("fastpath.certified")
        else:
            instr.increment("fastpath.fallbacks")
            instr.increment(f"fastpath.fallbacks.{context}")
    if guarded.certified:
        return guarded.value
    if fallback == "raise":
        guarded.require_certified(context)
    return float(exact_thunk())
