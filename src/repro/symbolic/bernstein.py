"""Bernstein-basis tools: certified polynomial bounds on an interval.

The reproduction repeatedly needs statements of the form "polynomial
``q`` is non-negative on ``[a, b]``" (e.g. *no threshold in this piece
beats the optimum*, or *this stationarity difference keeps one sign*).
Sampling can only suggest such facts; the Bernstein expansion proves
them:

    a polynomial whose Bernstein coefficients over ``[a, b]`` are all
    ``>= 0`` is ``>= 0`` on the whole interval

(the converse is false, but subdividing the interval makes the test
complete in the limit -- implemented here with bounded-depth bisection
plus exact root knowledge as a fallback witness).

Everything is exact over ``Fraction``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction, binomial

__all__ = [
    "bernstein_coefficients",
    "bernstein_range_bound",
    "certify_nonnegative",
]


def bernstein_coefficients(
    poly: Polynomial,
    lower: RationalLike = 0,
    upper: RationalLike = 1,
) -> List[Fraction]:
    """Bernstein coefficients of *poly* over ``[lower, upper]``.

    Returns ``b_0 .. b_d`` (``d`` = degree) with

    ``poly(x) = sum_k b_k C(d, k) u^k (1 - u)^(d - k)``,
    ``u = (x - lower) / (upper - lower)``.

    Computed by mapping to the unit interval and applying the closed
    form ``b_k = sum_{i <= k} C(k, i) / C(d, i) * a_i`` on the mapped
    monomial coefficients ``a_i``.
    """
    lo = as_fraction(lower)
    hi = as_fraction(upper)
    if lo >= hi:
        raise ValueError(f"need lower < upper, got [{lo}, {hi}]")
    if poly.is_zero():
        return [Fraction(0)]
    # map x = lo + (hi - lo) u
    mapped = poly.compose(Polynomial.linear(lo, hi - lo))
    d = max(mapped.degree, 0)
    coeffs = [mapped.coefficient(i) for i in range(d + 1)]
    bernstein = []
    for k in range(d + 1):
        total = Fraction(0)
        for i in range(k + 1):
            total += Fraction(binomial(k, i), binomial(d, i)) * coeffs[i]
        bernstein.append(total)
    return bernstein


def bernstein_range_bound(
    poly: Polynomial,
    lower: RationalLike = 0,
    upper: RationalLike = 1,
) -> Tuple[Fraction, Fraction]:
    """Certified enclosure of the range of *poly* on ``[lower, upper]``.

    The polynomial's values on the interval lie within
    ``[min(b_k), max(b_k)]`` of its Bernstein coefficients (the
    Bernstein form is a convex combination).  The enclosure is exact at
    the endpoints (``b_0 = poly(lower)``, ``b_d = poly(upper)``) and
    tightens under subdivision.
    """
    coeffs = bernstein_coefficients(poly, lower, upper)
    return min(coeffs), max(coeffs)


def certify_nonnegative(
    poly: Polynomial,
    lower: RationalLike = 0,
    upper: RationalLike = 1,
    max_depth: int = 24,
) -> bool:
    """Prove ``poly >= 0`` on ``[lower, upper]`` (or refute it).

    Returns ``True`` only with a proof: every leaf of the subdivision
    has all Bernstein coefficients ``>= 0``.  Returns ``False`` only
    with a witness: some point where the polynomial is negative.
    Raises :class:`RuntimeError` if the budgeted subdivision depth is
    insufficient to decide (tangential zeros of high multiplicity).
    """
    lo = as_fraction(lower)
    hi = as_fraction(upper)

    def recurse(a: Fraction, b: Fraction, depth: int) -> bool:
        coeffs = bernstein_coefficients(poly, a, b)
        if all(c >= 0 for c in coeffs):
            return True
        # exact negative witness at an endpoint or the midpoint?
        mid = (a + b) / 2
        for probe in (a, mid, b):
            if poly(probe) < 0:
                return False
        if depth >= max_depth:
            raise RuntimeError(
                f"Bernstein certification undecided on [{a}, {b}] at "
                f"depth {depth}; increase max_depth"
            )
        return recurse(a, mid, depth + 1) and recurse(mid, b, depth + 1)

    return recurse(lo, hi, 0)
