"""Persistent experiment records: save, load and merge sweep results.

Long experiment campaigns (fine grids, many seeds) want their results
on disk: to resume after interruption, to compare across code
versions, and to feed external analysis.  This module serialises
:class:`~repro.simulation.runner.SweepResult` objects to a simple
versioned JSON schema, preserving exactness: rational parameters and
exact values are stored as ``"p/q"`` strings, never as floats.

Schema (version 1)::

    {
      "schema_version": 1,
      "label": "n=3, delta=1",
      "points": [
        {"parameter": "1/2", "exact": "23/48",
         "simulated": 0.47905, "interval": [0.4751, 0.4830]},
        ...
      ]
    }

``simulated``/``interval`` are ``null`` for exact-only sweeps.
Merging concatenates point lists of results with the same label and
re-sorts by parameter, dropping exact duplicates -- the resume
workflow: run disjoint grids, merge, render.
"""

from __future__ import annotations

import json
import os
import tempfile
from fractions import Fraction
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import ResultsStoreError
from repro.fsutil import fsync_directory
from repro.simulation.runner import SweepPoint, SweepResult

__all__ = [
    "ResultsStoreError",
    "load_sweep",
    "merge_sweeps",
    "save_sweep",
    "sweep_from_dict",
    "sweep_to_dict",
]

SCHEMA_VERSION = 1

# ResultsStoreError now lives in repro.errors (so the whole exception
# hierarchy roots at ReproError) and is re-exported here for backwards
# compatibility with callers importing it from this module.


def _fraction_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _fraction_from_str(text: str) -> Fraction:
    return Fraction(text)


def sweep_to_dict(result: SweepResult) -> Dict:
    """The JSON-ready dict form of a sweep result (exactness preserved)."""
    points = []
    for p in result.points:
        points.append(
            {
                "parameter": _fraction_to_str(p.parameter),
                "exact": _fraction_to_str(p.exact),
                "simulated": p.simulated,
                "interval": list(p.interval) if p.interval else None,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "label": result.label,
        "points": points,
    }


def _validate_interval(interval, i: int, entry: Dict) -> tuple:
    """Check an ``interval`` field is a 2-element numeric ``[lo, hi]``.

    A malformed interval (wrong length, non-numeric entries, or
    ``lo > hi``) used to pass straight through as an arbitrary tuple
    and only blow up much later, inside consistency checks -- now it
    is rejected at load time with the offending point identified.
    """
    if (
        not isinstance(interval, (list, tuple))
        or len(interval) != 2
        or not all(
            isinstance(edge, (int, float)) and not isinstance(edge, bool)
            for edge in interval
        )
    ):
        raise ValueError(
            f"malformed point {i}: interval must be a 2-element numeric "
            f"[lo, hi], got {entry!r}"
        )
    lo, hi = float(interval[0]), float(interval[1])
    if lo > hi:
        raise ValueError(
            f"malformed point {i}: interval lower edge {lo} exceeds "
            f"upper edge {hi} in {entry!r}"
        )
    return (lo, hi)


def _validate_simulated(simulated, i: int, entry: Dict):
    """Check a ``simulated`` field is a probability (or ``None``)."""
    if simulated is None:
        return None
    if isinstance(simulated, bool) or not isinstance(
        simulated, (int, float)
    ):
        raise ValueError(
            f"malformed point {i}: simulated must be numeric or null, "
            f"got {entry!r}"
        )
    if not 0.0 <= float(simulated) <= 1.0:
        raise ValueError(
            f"malformed point {i}: simulated estimate {simulated} is "
            f"outside [0, 1] in {entry!r}"
        )
    return simulated


def sweep_from_dict(payload: Dict) -> SweepResult:
    """Inverse of :func:`sweep_to_dict`, with schema validation.

    Beyond the fraction fields, ``interval`` must be a 2-element
    numeric ``[lo, hi]`` with ``lo <= hi`` (or ``null``) and
    ``simulated`` a number in ``[0, 1]`` (or ``null``); anything else
    raises :class:`ValueError` naming the offending point, instead of
    smuggling a corrupt record into downstream consistency checks.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {version!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    if "label" not in payload or "points" not in payload:
        raise ValueError("payload missing 'label' or 'points'")
    points = []
    for i, entry in enumerate(payload["points"]):
        try:
            parameter = _fraction_from_str(entry["parameter"])
            exact = _fraction_from_str(entry["exact"])
        except (KeyError, ValueError, ZeroDivisionError) as exc:
            raise ValueError(f"malformed point {i}: {entry!r}") from exc
        interval = entry.get("interval")
        if interval is not None:
            interval = _validate_interval(interval, i, entry)
        simulated = _validate_simulated(entry.get("simulated"), i, entry)
        points.append(
            SweepPoint(
                parameter=parameter,
                exact=exact,
                simulated=simulated,
                interval=interval,
            )
        )
    return SweepResult(label=payload["label"], points=points)


def save_sweep(result: SweepResult, path: Union[str, Path]) -> Path:
    """Write a sweep result as JSON, atomically; returns the path written.

    The payload is written to a temporary file in the *same* directory,
    flushed and fsynced, then moved over the target with
    :func:`os.replace`.  A crash (or a concurrent reader) therefore
    sees either the complete old file or the complete new one -- never
    a truncated JSON document, which is exactly the corruption mode a
    resumed campaign would otherwise trip over.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(sweep_to_dict(result), handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
        # the rename needs the directory entry flushed to be durable
        fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Read a sweep result written by :func:`save_sweep`.

    Raises :class:`ResultsStoreError` -- naming the path -- on a
    missing file, invalid JSON (truncation, corruption) or a payload
    that fails schema validation, instead of leaking a bare
    ``json.JSONDecodeError``/``KeyError`` from the internals.
    """
    target = Path(path)
    try:
        with target.open() as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ResultsStoreError(
            f"cannot read sweep file {target}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ResultsStoreError(
            f"sweep file {target} is not valid JSON "
            f"(truncated or corrupted?): {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ResultsStoreError(
            f"sweep file {target} holds {type(payload).__name__}, "
            f"expected a JSON object"
        )
    try:
        return sweep_from_dict(payload)
    except ResultsStoreError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise ResultsStoreError(
            f"sweep file {target} failed schema validation: {exc}"
        ) from exc


def merge_sweeps(results: Sequence[SweepResult]) -> SweepResult:
    """Concatenate same-label sweeps, sort by parameter, dedupe.

    Points with equal parameters must carry equal exact values
    (anything else means the sweeps came from different problems);
    among duplicates, a simulated point wins over an exact-only one.
    """
    if not results:
        raise ValueError("nothing to merge")
    labels = {r.label for r in results}
    if len(labels) != 1:
        raise ValueError(
            f"refusing to merge sweeps with different labels: {sorted(labels)}"
        )
    by_parameter: Dict[Fraction, SweepPoint] = {}
    for result in results:
        for point in result.points:
            existing = by_parameter.get(point.parameter)
            if existing is None:
                by_parameter[point.parameter] = point
                continue
            if existing.exact != point.exact:
                raise ValueError(
                    f"conflicting exact values at parameter "
                    f"{point.parameter}: {existing.exact} vs {point.exact}"
                )
            if point.simulated is not None:
                by_parameter[point.parameter] = point
    merged: List[SweepPoint] = [
        by_parameter[key] for key in sorted(by_parameter)
    ]
    return SweepResult(label=results[0].label, points=merged)
