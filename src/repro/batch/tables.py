"""Cached compilation of the paper's curve families.

Two cache tiers, split on purpose:

* the **exact coefficient tables** (nested tuples of ``Fraction``:
  breakpoints plus per-piece coefficient rows) are pure, losslessly
  JSON-encodable values, so they ride the persistent disk tier of
  :mod:`repro.cache` (``persist=True``), keyed -- like every kernel --
  by a source fingerprint that invalidates them when a formula
  changes;
* the **compiled float objects** (:class:`~repro.batch.compile.CompiledPiecewise`,
  holding NumPy arrays) are memory-tier only (``persist=False``): they
  are cheap to rebuild from a table and have no lossless JSON form.

A cold process with a warm disk cache therefore skips the expensive
part (the symbolic construction of the piecewise polynomial) and pays
only the float conversion; the test-suite pins that cold-vs-warm
compiled tables evaluate byte-identically.

Curve families provided:

* :func:`compiled_threshold_curve` -- Theorem 5.1's symmetric
  threshold winning probability ``beta -> P(beta)`` on ``[0, 1]``;
* :func:`compiled_oblivious_curve` -- the symmetric oblivious profile
  ``alpha -> P(alpha, ..., alpha)`` on ``[0, 1]`` (a single piece);
* :func:`compiled_irwin_hall_cdf` -- the Irwin-Hall CDF on ``[0, m]``
  (Corollary 2.6), pieces between consecutive integers.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from repro.batch.compile import CompiledPiecewise
from repro.cache import memoized_kernel
from repro.core.nonoblivious import symmetric_threshold_winning_polynomial
from repro.errors import ValidationError
from repro.observability import get_instrumentation
from repro.optimize.oblivious_opt import symmetric_oblivious_polynomial
from repro.symbolic.piecewise import PiecewisePolynomial
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction, binomial, factorial

__all__ = [
    "compiled_irwin_hall_cdf",
    "compiled_oblivious_curve",
    "compiled_threshold_curve",
    "irwin_hall_piecewise",
    "piecewise_from_table",
    "piecewise_table",
]

#: (breakpoints, per-piece ascending coefficient rows), all Fractions.
PiecewiseTable = Tuple[
    Tuple[Fraction, ...], Tuple[Tuple[Fraction, ...], ...]
]


def piecewise_table(curve: PiecewisePolynomial) -> PiecewiseTable:
    """Flatten an exact piecewise polynomial to a pure-Fraction table
    (the losslessly disk-encodable form)."""
    breakpoints = tuple(curve.breakpoints)
    coefficients = tuple(
        tuple(p.polynomial.coefficients) for p in curve.pieces
    )
    return breakpoints, coefficients


def piecewise_from_table(table: PiecewiseTable) -> PiecewisePolynomial:
    """Rebuild the exact piecewise polynomial from its flat table."""
    breakpoints, coefficients = table
    return PiecewisePolynomial.from_breakpoints(
        list(breakpoints), [Polynomial(row) for row in coefficients]
    )


@memoized_kernel
def threshold_curve_table(n: int, delta: RationalLike) -> PiecewiseTable:
    """Exact coefficient table of the Theorem 5.1 threshold curve
    (disk-persistable)."""
    return piecewise_table(
        symmetric_threshold_winning_polynomial(n, as_fraction(delta))
    )


@memoized_kernel
def oblivious_profile_table(
    t: RationalLike, n: int
) -> Tuple[Fraction, ...]:
    """Exact coefficient tuple of the symmetric oblivious profile
    polynomial (disk-persistable)."""
    return tuple(symmetric_oblivious_polynomial(as_fraction(t), n).coefficients)


@memoized_kernel
def irwin_hall_table(m: int) -> PiecewiseTable:
    """Exact coefficient table of the Irwin-Hall CDF on ``[0, m]``
    (disk-persistable)."""
    return piecewise_table(irwin_hall_piecewise(m))


def irwin_hall_piecewise(m: int) -> PiecewisePolynomial:
    """The Irwin-Hall CDF (Corollary 2.6) as an exact piecewise
    polynomial on ``[0, m]``.

    On ``[i, i + 1]`` the CDF is
    ``(1/m!) * sum_{j <= i} (-1)^j C(m, j) (t - j)^m`` -- the strict
    condition ``j < t`` of the scalar formula admits exactly the terms
    ``j <= i`` throughout the piece's interior, and the resulting
    polynomials agree at the shared integer breakpoints (the CDF is
    continuous), so the half-open dispatch convention never changes a
    value.
    """
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    inv_norm = Fraction(1, factorial(m))
    pieces = []
    running = Polynomial.zero()
    for i in range(m):
        sign = 1 if i % 2 == 0 else -1
        running = running + (
            sign * binomial(m, i) * Polynomial([-i, 1]) ** m
        )
        pieces.append(running * inv_norm)
    return PiecewisePolynomial.from_breakpoints(
        [Fraction(i) for i in range(m + 1)], pieces
    )


def _count_compiled() -> None:
    instr = get_instrumentation()
    if instr.enabled:
        instr.increment("batch.tables_compiled")


@memoized_kernel(persist=False)
def compiled_threshold_curve(
    n: int, delta: RationalLike
) -> CompiledPiecewise:
    """The Theorem 5.1 threshold curve, compiled for batched grids."""
    _count_compiled()
    return CompiledPiecewise(
        piecewise_from_table(threshold_curve_table(n, as_fraction(delta)))
    )


@memoized_kernel(persist=False)
def compiled_oblivious_curve(
    t: RationalLike, n: int
) -> CompiledPiecewise:
    """The symmetric oblivious profile on ``[0, 1]``, compiled."""
    _count_compiled()
    coefficients = oblivious_profile_table(as_fraction(t), n)
    return CompiledPiecewise.from_polynomial(
        Polynomial(coefficients), Fraction(0), Fraction(1)
    )


@memoized_kernel(persist=False)
def compiled_irwin_hall_cdf(m: int) -> CompiledPiecewise:
    """The Irwin-Hall CDF on ``[0, m]``, compiled."""
    _count_compiled()
    return CompiledPiecewise(piecewise_from_table(irwin_hall_table(m)))
