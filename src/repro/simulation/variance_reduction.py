"""Variance-reduced estimators for winning probabilities.

The plain Monte Carlo engine is the ground truth of the test-suite;
these estimators answer "how many samples do I really need?" for a
downstream user running larger systems:

* **antithetic variates** -- pair each input vector ``x`` with
  ``1 - x``.  For threshold protocols the win indicator is strongly
  (negatively) correlated between the pair, cutting variance;
* **stratified sampling** -- condition on the output vector ``b``
  (computable per-player for no-communication protocols); within a
  stratum the win event depends on conditioned uniform sums, sampled
  with the exact stratum probabilities as weights.  Implemented for
  single-threshold profiles, whose strata probabilities are products
  of ``beta``/``1 - beta``.

Both return the same :class:`BinomialSummary`-compatible point
estimates with their own standard errors, and both are validated in
the tests against the exact formulas and against plain Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Optional, Sequence

import numpy as np

from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.symbolic.rational import as_fraction

__all__ = [
    "VarianceReducedEstimate",
    "antithetic_winning_probability",
    "stratified_threshold_winning_probability",
]


@dataclass(frozen=True)
class VarianceReducedEstimate:
    """Point estimate with a standard error and the trial budget used."""

    estimate: float
    std_error: float
    trials: int
    method: str

    def interval(self, z_score: float = 3.89):
        """Normal confidence interval at the given z score."""
        return (
            self.estimate - z_score * self.std_error,
            self.estimate + z_score * self.std_error,
        )

    def covers(self, value: float, z_score: float = 3.89) -> bool:
        """Whether *value* lies inside the confidence interval."""
        lo, hi = self.interval(z_score)
        return lo <= value <= hi

    def __str__(self) -> str:
        return (
            f"{self.estimate:.6f} +- {self.std_error:.6f} "
            f"({self.method}, {self.trials} trials)"
        )


def antithetic_winning_probability(
    system: DistributedSystem,
    trials: int = 100_000,
    seed: Optional[int] = None,
) -> VarianceReducedEstimate:
    """Antithetic-pair estimate of the winning probability.

    Draws ``trials // 2`` input vectors, evaluates each together with
    its reflection ``1 - x``, and averages the pair means.  Requires a
    deterministic, local protocol (reflection pairing is meaningless
    for randomized rules whose coin flips cannot be paired).
    """
    if trials < 2:
        raise ValueError(f"trials must be >= 2, got {trials}")
    for alg in system.algorithms:
        if not alg.is_local or alg.is_oblivious:
            raise ValueError(
                "antithetic pairing needs deterministic input-reading "
                f"rules; got {type(alg).__name__}"
            )
    half = trials // 2
    rng = np.random.default_rng(seed)
    inputs = rng.random((half, system.n))
    wins_a = system.run_batch(inputs, rng).astype(float)
    wins_b = system.run_batch(1.0 - inputs, rng).astype(float)
    pair_means = (wins_a + wins_b) / 2
    estimate = float(pair_means.mean())
    std_error = float(pair_means.std(ddof=1) / np.sqrt(half))
    return VarianceReducedEstimate(
        estimate=estimate,
        std_error=std_error,
        trials=2 * half,
        method="antithetic",
    )


def stratified_threshold_winning_probability(
    thresholds: Sequence,
    capacity,
    trials: int = 100_000,
    seed: Optional[int] = None,
) -> VarianceReducedEstimate:
    """Stratified estimate for a single-threshold profile.

    Strata are the ``2^n`` output vectors; the stratum probability is
    the exact product of threshold masses, and within a stratum the
    inputs are conditioned uniforms (``U[0, a_i]`` or ``U[a_i, 1]``).
    The estimator is unbiased with variance never above plain Monte
    Carlo at equal budget (proportional allocation).  Degenerate
    thresholds (0/1) collapse their strata automatically (zero-mass
    strata are skipped).
    """
    a = [as_fraction(v) for v in thresholds]
    n = len(a)
    if n == 0:
        raise ValueError("need at least one player")
    for i, v in enumerate(a):
        if not 0 <= v <= 1:
            raise ValueError(f"thresholds[{i}] must be in [0, 1], got {v}")
    cap = float(as_fraction(capacity))
    if trials < 2**n:
        raise ValueError(
            f"budget {trials} too small for 2^{n} strata"
        )
    rng = np.random.default_rng(seed)
    total_estimate = 0.0
    total_variance = 0.0
    used = 0
    for bits in product((0, 1), repeat=n):
        weight = Fraction(1)
        for b, ai in zip(bits, a):
            weight *= (1 - ai) if b else ai
        if weight == 0:
            continue
        share = max(int(trials * float(weight)), 2)
        used += share
        lows = np.array(
            [0.0 if b == 0 else float(ai) for b, ai in zip(bits, a)]
        )
        highs = np.array(
            [float(ai) if b == 0 else 1.0 for b, ai in zip(bits, a)]
        )
        draws = rng.uniform(lows, highs, size=(share, n))
        ones_mask = np.array(bits, dtype=bool)
        load1 = draws[:, ones_mask].sum(axis=1)
        load0 = draws[:, ~ones_mask].sum(axis=1)
        wins = ((load0 <= cap) & (load1 <= cap)).astype(float)
        mean = float(wins.mean())
        var = float(wins.var(ddof=1)) if share > 1 else 0.0
        w = float(weight)
        total_estimate += w * mean
        total_variance += w * w * var / share
    return VarianceReducedEstimate(
        estimate=total_estimate,
        std_error=total_variance**0.5,
        trials=used,
        method="stratified",
    )


def plain_reference(
    thresholds: Sequence,
    capacity,
    trials: int = 100_000,
    seed: Optional[int] = None,
) -> VarianceReducedEstimate:
    """Plain Monte Carlo in the same return shape, for comparisons."""
    system = DistributedSystem(
        [SingleThresholdRule(as_fraction(v)) for v in thresholds],
        as_fraction(capacity),
    )
    rng = np.random.default_rng(seed)
    inputs = rng.random((trials, system.n))
    wins = system.run_batch(inputs, rng).astype(float)
    estimate = float(wins.mean())
    std_error = float(wins.std(ddof=1) / np.sqrt(trials))
    return VarianceReducedEstimate(
        estimate=estimate,
        std_error=std_error,
        trials=trials,
        method="plain",
    )
