"""Theorem 5.1: winning probabilities of single-threshold algorithms.

A non-oblivious single-threshold algorithm assigns player ``i`` the
threshold ``a_i``; the player outputs ``y_i = 0`` when ``x_i <= a_i``
and ``1`` otherwise.  Theorem 5.1 gives, for bin capacity ``delta``:

``P_A(delta) = sum_{b in {0,1}^n}  L_b(delta) * H_b(delta)``

where (with Z the zero-players and O the one-players of ``b``)

* ``L_b = P(sum_{i in Z} x_i <= delta  and  x_i <= a_i  for i in Z)``
* ``H_b = P(sum_{i in O} x_i <= delta  and  x_i >= a_i  for i in O)``

both given in closed inclusion-exclusion form by the joint probability
functions of :mod:`repro.probability.uniform_sums`.

For the *symmetric* case ``a_i = beta`` for all players (Theorem 5.2
shows the optimum is symmetric), the sum collapses over ``k = |b|``:

``P(beta) = sum_k C(n, k) A_k(beta) B_k(beta)``

``A_k(beta) = (1/(n-k)!) sum_{i : delta - i beta > 0}
              (-1)^i C(n-k, i) (delta - i beta)^(n-k)``

``B_k(beta) = (1 - beta)^k - (1/k!) sum_{i : k - delta - i(1-beta) > 0}
              (-1)^i C(k, i) (k - delta - i(1 - beta))^k``

On each interval between *breakpoints* (the points where one of the
strict conditions flips), ``P(beta)`` is a polynomial with rational
coefficients; :func:`symmetric_threshold_winning_polynomial` constructs
that exact piecewise polynomial, which Section 5.2 then maximises.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import List, Sequence

from repro.cache import memoized_kernel
from repro.errors import ValidationError
from repro.probability.uniform_sums import (
    joint_sum_below_and_inside_high,
    joint_sum_below_and_inside_low,
)
from repro.validation.contracts import check_probability
from repro.symbolic.piecewise import PiecewisePolynomial
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import (
    RationalLike,
    as_fraction,
    binomial,
    factorial,
)

__all__ = [
    "symmetric_threshold_breakpoints",
    "symmetric_threshold_winning_polynomial",
    "symmetric_threshold_winning_probability",
    "threshold_winning_probability",
]


@memoized_kernel
def threshold_winning_probability(
    delta: RationalLike, thresholds: Sequence[RationalLike]
) -> Fraction:
    """Theorem 5.1 with per-player thresholds (exact, ``O(4^n)``).

    *delta* is the bin capacity; ``thresholds[i]`` is player *i*'s
    cut-off in ``[0, 1]``.  The sum enumerates all ``2^n`` output
    vectors and evaluates both joint factors by subset
    inclusion-exclusion.
    """
    a = [as_fraction(v) for v in thresholds]
    if not a:
        raise ValidationError("need at least one player")
    for i, v in enumerate(a):
        if not 0 <= v <= 1:
            raise ValidationError(
                f"thresholds[{i}] must be in [0, 1], got {v}"
            )
    d = as_fraction(delta)
    if d <= 0:
        return Fraction(0)
    n = len(a)
    total = Fraction(0)
    for bits in product((0, 1), repeat=n):
        zeros = [a[i] for i in range(n) if bits[i] == 0]
        ones = [a[i] for i in range(n) if bits[i] == 1]
        low = joint_sum_below_and_inside_low(d, zeros)
        if low == 0:
            continue
        high = joint_sum_below_and_inside_high(d, ones)
        total += low * high
    return check_probability("threshold_winning_probability", total)


def _a_factor(beta: Fraction, n: int, k: int, delta: Fraction) -> Fraction:
    """``A_k(beta)`` -- the bin-0 joint probability with ``n - k`` zeros."""
    m = n - k
    if m == 0:
        return Fraction(1)
    total = Fraction(0)
    for i in range(m + 1):
        if delta - i * beta > 0:
            total += (-1) ** i * binomial(m, i) * (delta - i * beta) ** m
    return total / factorial(m)


def _b_factor(beta: Fraction, k: int, delta: Fraction) -> Fraction:
    """``B_k(beta)`` -- the bin-1 joint probability with ``k`` ones."""
    if k == 0:
        return Fraction(1)
    total = Fraction(0)
    for i in range(k + 1):
        if k - delta - i * (1 - beta) > 0:
            total += (
                (-1) ** i
                * binomial(k, i)
                * (k - delta - i * (1 - beta)) ** k
            )
    return (1 - beta) ** k - total / factorial(k)


@memoized_kernel
def symmetric_threshold_winning_probability(
    beta: RationalLike, n: int, delta: RationalLike
) -> Fraction:
    """Theorem 5.1 specialised to a common threshold ``beta`` (exact, O(n^2)).

    ``P(beta) = sum_k C(n, k) A_k(beta) B_k(beta)``
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    b = as_fraction(beta)
    if not 0 <= b <= 1:
        raise ValidationError(f"beta must be in [0, 1], got {b}")
    d = as_fraction(delta)
    if d <= 0:
        return Fraction(0)
    total = Fraction(0)
    for k in range(n + 1):
        total += (
            binomial(n, k) * _a_factor(b, n, k, d) * _b_factor(b, k, d)
        )
    return check_probability(
        "symmetric_threshold_winning_probability", total
    )


def symmetric_threshold_breakpoints(
    n: int, delta: RationalLike
) -> List[Fraction]:
    """All points in ``[0, 1]`` where a strict condition of Theorem 5.1 flips.

    * from ``A_k``: ``delta - i*beta = 0``  =>  ``beta = delta / i``
      for ``i = 1 .. n``;
    * from ``B_k``: ``k - delta - i*(1 - beta) = 0``  =>
      ``beta = 1 - (k - delta) / i`` for ``k = 1 .. n``, ``i = 1 .. k``.

    The returned list is sorted, starts with 0 and ends with 1.
    Between consecutive breakpoints the winning probability is a single
    polynomial in ``beta``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    d = as_fraction(delta)
    if d <= 0:
        raise ValueError(f"delta must be positive, got {d}")
    points = {Fraction(0), Fraction(1)}
    for i in range(1, n + 1):
        candidate = d / i
        if 0 < candidate < 1:
            points.add(candidate)
    for k in range(1, n + 1):
        for i in range(1, k + 1):
            candidate = 1 - (k - d) / i
            if 0 < candidate < 1:
                points.add(candidate)
    return sorted(points)


@memoized_kernel(persist=False)
def symmetric_threshold_winning_polynomial(
    n: int, delta: RationalLike
) -> PiecewisePolynomial:
    """The exact piecewise polynomial ``beta -> P(beta)`` on ``[0, 1]``.

    On each breakpoint interval the active condition pattern is fixed,
    so each ``A_k`` and ``B_k`` is a genuine polynomial in ``beta``;
    the construction evaluates the conditions at the interval midpoint
    and assembles the polynomial with exact arithmetic.  This is the
    object Section 5.2 differentiates and maximises.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    d = as_fraction(delta)
    if d <= 0:
        raise ValueError(f"delta must be positive, got {d}")

    def build(mid: Fraction) -> Polynomial:
        total = Polynomial.zero()
        for k in range(n + 1):
            m = n - k
            # A_k as a polynomial in beta around `mid`.
            if m == 0:
                a_poly = Polynomial.one()
            else:
                acc = Polynomial.zero()
                for i in range(m + 1):
                    if d - i * mid > 0:
                        acc = acc + (
                            (-1) ** i
                            * binomial(m, i)
                            * Polynomial.linear(d, -i) ** m
                        )
                a_poly = acc / factorial(m)
            # B_k as a polynomial in beta around `mid`.
            if k == 0:
                b_poly = Polynomial.one()
            else:
                acc = Polynomial.zero()
                for i in range(k + 1):
                    if k - d - i * (1 - mid) > 0:
                        acc = acc + (
                            (-1) ** i
                            * binomial(k, i)
                            * Polynomial.linear(k - d - i, i) ** k
                        )
                b_poly = (
                    Polynomial.linear(1, -1) ** k - acc / factorial(k)
                )
            total = total + binomial(n, k) * a_poly * b_poly
        return total

    breakpoints = symmetric_threshold_breakpoints(n, d)
    return PiecewisePolynomial.from_sampler(build, breakpoints)
