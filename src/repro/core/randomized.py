"""Randomized threshold algorithms: the oblivious/non-oblivious continuum.

The paper treats oblivious coins (Section 4) and deterministic single
thresholds (Section 5) as separate families.  This module analyses the
natural family *containing both*: with probability ``p`` the player
applies a threshold rule on its input, otherwise it flips an oblivious
coin.  ``p = 0`` recovers Section 4, ``p = 1`` recovers Section 5.

The exact winning probability follows by conditioning on each player's
*mode* (threshold / forced-0 / forced-1): a forced-0 player behaves
like the threshold rule with cut-off 1 and a forced-1 player like
cut-off 0 (full U[0, 1] input in the respective bin), so each mode
assignment is a Theorem 5.1 instance.  The expansion has ``3^n``
branches, collapsed to ``O(n)`` distinct branch shapes in the
symmetric case.

This family powers extension experiment **E8** (see EXPERIMENTS.md):
at ``n = 4, delta = 4/3`` -- where the coin beats every deterministic
threshold (discrepancy D2) -- does an interior mixture ``0 < p < 1``
beat both?
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.core.nonoblivious import threshold_winning_probability
from repro.model.agents import DecisionAlgorithm
from repro.symbolic.rational import RationalLike, as_fraction, binomial

__all__ = [
    "RandomizedThresholdRule",
    "best_symmetric_mixture",
    "randomized_threshold_winning_probability",
    "symmetric_mixture_winning_probability",
]


class RandomizedThresholdRule(DecisionAlgorithm):
    """With probability *p* apply ``threshold``; otherwise flip a coin
    that chooses bin 0 with probability *alpha*."""

    is_oblivious = False  # reads the input on the threshold branch
    is_local = True

    def __init__(
        self,
        p: RationalLike,
        threshold: RationalLike,
        alpha: RationalLike = Fraction(1, 2),
    ):
        self._p = as_fraction(p)
        self._threshold = as_fraction(threshold)
        self._alpha = as_fraction(alpha)
        if not 0 <= self._p <= 1:
            raise ValueError(f"p must be a probability, got {self._p}")
        if not 0 <= self._threshold <= 1:
            raise ValueError(
                f"threshold must be in [0, 1], got {self._threshold}"
            )
        if not 0 <= self._alpha <= 1:
            raise ValueError(
                f"alpha must be a probability, got {self._alpha}"
            )

    @property
    def p(self) -> Fraction:
        return self._p

    @property
    def threshold(self) -> Fraction:
        return self._threshold

    @property
    def alpha(self) -> Fraction:
        return self._alpha

    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        if rng.random() < float(self._p):
            return 0 if own_input <= float(self._threshold) else 1
        return 0 if rng.random() < float(self._alpha) else 1

    def decide_batch(
        self, own_inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        use_threshold = rng.random(own_inputs.shape[0]) < float(self._p)
        coin = rng.random(own_inputs.shape[0]) >= float(self._alpha)
        thresholded = own_inputs > float(self._threshold)
        return np.where(use_threshold, thresholded, coin).astype(np.int8)

    def probability_of_zero(self, own_input: float) -> float:
        threshold_branch = 1.0 if own_input <= float(self._threshold) else 0.0
        return float(self._p) * threshold_branch + (
            1.0 - float(self._p)
        ) * float(self._alpha)

    def __repr__(self) -> str:
        return (
            f"RandomizedThresholdRule(p={self._p}, "
            f"threshold={self._threshold}, alpha={self._alpha})"
        )


def randomized_threshold_winning_probability(
    delta: RationalLike, rules: Sequence[RandomizedThresholdRule]
) -> Fraction:
    """Exact winning probability of a randomized-threshold profile.

    Expands over the ``3^n`` mode assignments; each branch is an exact
    Theorem 5.1 evaluation.  Exponential -- intended for the paper's
    small ``n``.
    """
    if not rules:
        raise ValueError("need at least one player")
    d = as_fraction(delta)
    if d <= 0:
        return Fraction(0)
    branches = []
    for rule in rules:
        branches.append(
            (
                (rule.p, rule.threshold),  # threshold mode
                ((1 - rule.p) * rule.alpha, Fraction(1)),  # forced 0
                ((1 - rule.p) * (1 - rule.alpha), Fraction(0)),  # forced 1
            )
        )
    total = Fraction(0)
    for assignment in product(*branches):
        weight = Fraction(1)
        thresholds = []
        for probability, cutoff in assignment:
            weight *= probability
            if weight == 0:
                break
            thresholds.append(cutoff)
        if weight == 0:
            continue
        total += weight * threshold_winning_probability(d, thresholds)
    return total


def symmetric_mixture_winning_probability(
    p: RationalLike,
    beta: RationalLike,
    n: int,
    delta: RationalLike,
    alpha: RationalLike = Fraction(1, 2),
) -> Fraction:
    """The symmetric mixture: every player uses the same ``(p, beta, alpha)``.

    Collapses the ``3^n`` expansion to multinomial shape counts: only
    the numbers of threshold / forced-0 / forced-1 players matter.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    pp = as_fraction(p)
    bb = as_fraction(beta)
    aa = as_fraction(alpha)
    d = as_fraction(delta)
    if not 0 <= pp <= 1:
        raise ValueError(f"p must be a probability, got {pp}")
    w0 = (1 - pp) * aa
    w1 = (1 - pp) * (1 - aa)
    total = Fraction(0)
    for k_threshold in range(n + 1):
        for k_zero in range(n - k_threshold + 1):
            k_one = n - k_threshold - k_zero
            weight = (
                binomial(n, k_threshold)
                * binomial(n - k_threshold, k_zero)
                * pp**k_threshold
                * w0**k_zero
                * w1**k_one
            )
            if weight == 0:
                continue
            thresholds = (
                [bb] * k_threshold
                + [Fraction(1)] * k_zero
                + [Fraction(0)] * k_one
            )
            total += weight * threshold_winning_probability(d, thresholds)
    return total


def symmetric_mixture_polynomial(
    beta: RationalLike,
    n: int,
    delta: RationalLike,
    alpha: RationalLike = Fraction(1, 2),
):
    """The winning probability as an exact polynomial in ``p``.

    For fixed ``(beta, alpha)`` the mixture probability enters only
    through the Bernstein weights ``p^k (1 - p)^(n - k)``, so

    ``P(p) = sum_k C(n, k) p^k (1-p)^(n-k) *
             sum_j C(n-k, j) alpha^j (1-alpha)^(n-k-j) V(k, j)``

    where ``V(k, j)`` is the Theorem 5.1 value with ``k`` threshold
    players, ``j`` forced-0 and the rest forced-1.  Degree ``n`` in
    ``p``; maximised exactly by Sturm root isolation in
    :func:`best_symmetric_mixture_exact`.
    """
    from repro.symbolic.polynomial import Polynomial

    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    bb = as_fraction(beta)
    aa = as_fraction(alpha)
    d = as_fraction(delta)
    p_var = Polynomial.x()
    one_minus_p = Polynomial.linear(1, -1)
    total = Polynomial.zero()
    for k in range(n + 1):
        inner = Fraction(0)
        for j in range(n - k + 1):
            weight = (
                binomial(n - k, j)
                * aa**j
                * (1 - aa) ** (n - k - j)
            )
            if weight == 0:
                continue
            thresholds = (
                [bb] * k + [Fraction(1)] * j + [Fraction(0)] * (n - k - j)
            )
            inner += weight * threshold_winning_probability(d, thresholds)
        total = total + (
            binomial(n, k) * inner * p_var**k * one_minus_p ** (n - k)
        )
    return total


def best_symmetric_mixture_exact(
    n: int,
    delta: RationalLike,
    beta: RationalLike,
    alpha: RationalLike = Fraction(1, 2),
    tolerance: RationalLike = Fraction(1, 10**12),
) -> Tuple[Fraction, Fraction]:
    """Exact maximiser of the mixture polynomial over ``p in [0, 1]``.

    Returns ``(p*, P*)``.  The comparison ``P* > max(P(0), P(1))``
    certifies (exactly) when mixing strictly beats both pure families.
    """
    from repro.symbolic.roots import real_roots

    profile = symmetric_mixture_polynomial(beta, n, delta, alpha)
    candidates = [Fraction(0), Fraction(1)]
    derivative = profile.derivative()
    if not derivative.is_zero() and not derivative.is_constant():
        candidates.extend(real_roots(derivative, 0, 1, tolerance))
    elif derivative.is_constant() and not derivative.is_zero():
        pass  # monotone: endpoints suffice
    best_p = max(candidates, key=profile)
    return best_p, profile(best_p)


def best_symmetric_mixture(
    n: int,
    delta: RationalLike,
    beta: RationalLike,
    grid_size: int = 21,
    alpha: RationalLike = Fraction(1, 2),
) -> Tuple[Fraction, Fraction]:
    """Grid-search the mixing probability ``p``; returns ``(p*, P*)``.

    The endpoints reproduce the two paper families exactly (``p = 0``
    the coin, ``p = 1`` the threshold), so the search certifies whether
    an interior mixture beats both.
    """
    if grid_size < 2:
        raise ValueError(f"grid_size must be >= 2, got {grid_size}")
    d = as_fraction(delta)
    best: Tuple[Fraction, Fraction] = (Fraction(0), Fraction(-1))
    for i in range(grid_size):
        p = Fraction(i, grid_size - 1)
        value = symmetric_mixture_winning_probability(
            p, beta, n, d, alpha
        )
        if value > best[1]:
            best = (p, value)
    return best
