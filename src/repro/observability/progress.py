"""Throughput tracking and per-shard progress reporting.

Two small tools for long-running trial campaigns:

* :class:`ThroughputTracker` -- accumulates ``(units, seconds)`` pairs
  and reports an aggregate rate (trials per second, for the engine).
* :class:`ShardProgress` -- the value handed to the optional per-shard
  callback of the sharded executor as each shard's result arrives, so
  a caller can render a progress bar or stream shard telemetry without
  waiting for the whole estimate.

The callback is invoked in the parent process, **exactly once per
shard**, in shard-index order (the executor buffers out-of-order
completions and fires the contiguous prefix), and receives exact trial
and win counts -- summing them over all callbacks reconciles with the
final :class:`~repro.simulation.statistics.BinomialSummary`.  Shards
that needed recovery (a retry after a fault, or a load from a
checkpoint) are still reported once, flagged via
:attr:`ShardProgress.recovered` and :attr:`ShardProgress.attempt`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "ProgressCallback",
    "ShardProgress",
    "ThroughputTracker",
    "format_rate",
]


@dataclass(frozen=True)
class ShardProgress:
    """One completed shard, as seen by a progress callback.

    ``attempt`` is the (zero-based) execution attempt that produced the
    result; ``recovered`` is true when the shard did not succeed on a
    clean first in-run execution -- it was retried after a fault, or
    its result was loaded from a checkpoint on resume."""

    index: int
    trials: int
    wins: int
    elapsed_seconds: Optional[float]
    completed_shards: int
    total_shards: int
    attempt: int = 0
    recovered: bool = False

    @property
    def trials_per_second(self) -> Optional[float]:
        """This shard's throughput.

        ``None`` only when timing is genuinely unavailable
        (``elapsed_seconds is None``, e.g. a checkpoint record written
        without timings).  A measured ``0.0`` -- a shard faster than
        the clock's resolution -- is *timed*, not unknown, and reports
        ``inf``; an earlier revision's ``if not self.elapsed_seconds``
        conflated the two and silently dropped the rate for instant
        shards.
        """
        if self.elapsed_seconds is None:
            return None
        if self.elapsed_seconds == 0.0:
            return math.inf
        return self.trials / self.elapsed_seconds

    @property
    def fraction_done(self) -> float:
        """Completed shards over total shards, in ``[0, 1]``."""
        return self.completed_shards / self.total_shards

    def __str__(self) -> str:
        rate = self.trials_per_second
        rate_text = "" if rate is None else f" ({rate:,.0f} trials/s)"
        recovered_text = ""
        if self.recovered:
            recovered_text = f" (recovered, attempt {self.attempt})"
        return (
            f"shard {self.index}: {self.wins}/{self.trials} wins"
            f"{rate_text}{recovered_text} "
            f"[{self.completed_shards}/{self.total_shards}]"
        )


#: Signature of the per-shard progress hook accepted by the sharded
#: executor: called once per shard, in index order, with exact counts.
ProgressCallback = Callable[[ShardProgress], None]


class ThroughputTracker:
    """Thread-safe accumulator of work-per-time observations.

    Disabled trackers are no-ops, mirroring
    :class:`repro.observability.metrics.MetricsRegistry`.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._units = 0
        self._seconds = 0.0

    @property
    def enabled(self) -> bool:
        """Whether this tracker records anything."""
        return self._enabled

    def record(self, units: int, seconds: float) -> None:
        """Fold in *units* of work done in *seconds* of wall clock."""
        if not self._enabled:
            return
        if units < 0 or seconds < 0:
            raise ValueError(
                f"units and seconds must be >= 0, got {units}, {seconds}"
            )
        with self._lock:
            self._units += int(units)
            self._seconds += float(seconds)

    @property
    def units(self) -> int:
        """Total units of work recorded."""
        with self._lock:
            return self._units

    @property
    def seconds(self) -> float:
        """Total wall-clock seconds recorded."""
        with self._lock:
            return self._seconds

    @property
    def rate(self) -> Optional[float]:
        """Aggregate units per second (None while nothing is recorded)."""
        with self._lock:
            if self._seconds <= 0:
                return None
            return self._units / self._seconds

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return (
            f"ThroughputTracker({state}, {self.units} units, "
            f"{self.seconds:.3f} s)"
        )


def format_rate(rate: Optional[float], unit: str = "trials/s") -> str:
    """Human-readable rate string (``"n/a"`` when unknown)."""
    if rate is None:
        return "n/a"
    if math.isinf(rate):
        return f"inf {unit}"
    return f"{rate:,.0f} {unit}"
