"""Players and the decision-algorithm interface (Section 3.1).

Each player ``P_i`` receives a private input ``x_i ~ U[0, 1]`` and must
output a bit choosing one of two bins.  A *decision algorithm* maps the
inputs the player "sees" (its own, plus any revealed by the
communication pattern) to that bit -- deterministically or with
randomisation.

The interface is deliberately narrow:

* :meth:`DecisionAlgorithm.decide` -- one decision, given the player's
  own input and a mapping of observed inputs.  Randomized algorithms
  draw from the supplied generator, which keeps every simulation
  reproducible from a single seed.
* :meth:`DecisionAlgorithm.decide_batch` -- a vectorised fast path used
  by the Monte Carlo engine for the no-communication case (where the
  decision depends only on the player's own input).  The default
  implementation loops over :meth:`decide`; concrete no-communication
  algorithms override it with numpy vector code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["DecisionAlgorithm", "Player"]


class DecisionAlgorithm(ABC):
    """A (local) decision-making algorithm for one player."""

    #: Whether the decision ignores the player's own input
    #: (Section 3.2's *oblivious* class).
    is_oblivious: bool = False

    #: Whether the decision uses only the player's own input -- true for
    #: every algorithm in the no-communication case, including oblivious
    #: ones.  Algorithms that read observed inputs set this to False.
    is_local: bool = True

    @abstractmethod
    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        """Return the output bit (0 or 1).

        *observed* maps player indices to the inputs this player sees
        under the active communication pattern; it never includes the
        player's own index (that is *own_input*).  In the
        no-communication case *observed* is empty.
        """

    def decide_batch(
        self, own_inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorised decisions for many independent trials.

        Valid only when :attr:`is_local` is true.  The default is a
        Python loop over :meth:`decide`; override for speed.
        """
        if not self.is_local:
            raise ValueError(
                f"{type(self).__name__} reads other players' inputs; "
                "batch mode supports only local (no-communication) rules"
            )
        return np.array(
            [self.decide(float(x), {}, rng) for x in own_inputs],
            dtype=np.int8,
        )

    def probability_of_zero(self, own_input: float) -> float:
        """``P(y = 0)`` given the player's input (for local algorithms).

        Deterministic algorithms return 0.0 or 1.0.  Exposed so exact
        evaluators and tests can interrogate a rule without sampling.
        Subclasses should override; the default samples, which is only
        acceptable for tests.
        """
        rng = np.random.default_rng(0)
        draws = [self.decide(own_input, {}, rng) for _ in range(1024)]
        return 1.0 - float(np.mean(draws))


@dataclass(frozen=True)
class Player:
    """One of the ``n`` distributed entities: an index plus its algorithm."""

    index: int
    algorithm: DecisionAlgorithm
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"player index must be >= 0, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"P{self.index + 1}")

    def __str__(self) -> str:
        return f"{self.name}<{type(self.algorithm).__name__}>"
