"""Tests for repro.core.phi (the Theorem 4.1 kernel and Lemma 4.4)."""

from fractions import Fraction

import pytest

from repro.core.phi import phi, phi_forward_difference, phi_table
from repro.probability.uniform_sums import irwin_hall_cdf


class TestPhi:
    def test_product_form(self):
        t = Fraction(3, 2)
        n = 5
        for k in range(n + 1):
            assert phi(t, k, n) == irwin_hall_cdf(t, k) * irwin_hall_cdf(
                t, n - k
            )

    def test_known_values_n3_t1(self):
        # F_0(1)=1, F_1(1)=1, F_2(1)=1/2, F_3(1)=1/6
        assert phi(1, 0, 3) == Fraction(1, 6)
        assert phi(1, 1, 3) == Fraction(1, 2)
        assert phi(1, 2, 3) == Fraction(1, 2)
        assert phi(1, 3, 3) == Fraction(1, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            phi(1, -1, 3)
        with pytest.raises(ValueError):
            phi(1, 4, 3)
        with pytest.raises(ValueError):
            phi(1, 0, 0)

    def test_zero_capacity(self):
        assert phi(0, 1, 3) == 0
        assert phi(-1, 1, 3) == 0

    def test_large_capacity_saturates(self):
        assert phi(10, 2, 4) == 1


class TestLemma44Symmetry:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize(
        "t", [Fraction(1, 2), 1, Fraction(4, 3), 2, Fraction(5, 2)]
    )
    def test_phi_symmetric(self, n, t):
        for k in range(n + 1):
            assert phi(t, k, n) == phi(t, n - k, n)


class TestPhiTable:
    def test_matches_pointwise(self):
        t = Fraction(4, 3)
        n = 6
        table = phi_table(t, n)
        assert table == [phi(t, k, n) for k in range(n + 1)]

    def test_length(self):
        assert len(phi_table(1, 4)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            phi_table(1, 0)


class TestForwardDifferences:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    @pytest.mark.parametrize("t", [Fraction(1, 2), 1, Fraction(3, 2)])
    def test_positive_below_half(self, n, t):
        """Lemma 4.6 needs phi(r+1) - phi(r) > 0 for r < n/2 whenever
        phi is non-degenerate (0 < t < n)."""
        diffs = phi_forward_difference(t, n)
        for r in range(n):
            if r + 1 <= n / 2 and phi(t, r + 1, n) > 0:
                assert diffs[r] >= 0
            # strictly positive in the interior regime
            if r + 1 <= (n - 1) / 2 and 0 < t < n and diffs[r] != 0:
                assert diffs[r] > 0

    def test_antisymmetry(self):
        # phi(r+1) - phi(r) = -(phi(n-r) - phi(n-r-1)) by Lemma 4.4
        n, t = 5, Fraction(3, 2)
        diffs = phi_forward_difference(t, n)
        for r in range(n):
            assert diffs[r] == -diffs[n - 1 - r]
