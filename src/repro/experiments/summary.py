"""One-call reproduction driver: everything the paper reports, checked.

:func:`reproduce_all` runs the complete pipeline -- both worked cases,
the uniformity sweep, the figures' optima, the substrate
cross-validation and the discrepancy checks -- and returns a
structured report with per-item pass/fail.  ``repro all`` prints it.
This is the command a referee runs first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

from repro.symbolic.rational import as_fraction

__all__ = ["CheckResult", "ReproductionReport", "reproduce_all"]


@dataclass(frozen=True)
class CheckResult:
    """One verified claim: what the paper says, what we measured."""

    item: str
    expected: str
    measured: str
    passed: bool
    note: str = ""


@dataclass
class ReproductionReport:
    """All checks plus an overall verdict."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        """Plain-text report, one line per check."""
        lines = []
        width = max(len(c.item) for c in self.checks) if self.checks else 0
        for c in self.checks:
            status = "ok " if c.passed else "FAIL"
            line = (
                f"[{status}] {c.item.ljust(width)}  "
                f"expected {c.expected}, measured {c.measured}"
            )
            if c.note:
                line += f"  ({c.note})"
            lines.append(line)
        verdict = (
            "REPRODUCTION COMPLETE: all checks passed"
            if self.passed
            else f"{len(self.failures)} CHECK(S) FAILED"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _close(measured: Fraction, target: float, tol: float) -> bool:
    return abs(float(measured) - target) <= tol


def reproduce_all(monte_carlo_trials: Optional[int] = 60_000) -> ReproductionReport:
    """Run every headline check; pass ``monte_carlo_trials=None`` to
    skip the sampling-based checks (exact-only mode, a few seconds)."""
    from repro.core.nonoblivious import (
        symmetric_threshold_winning_polynomial,
    )
    from repro.core.oblivious import (
        optimal_oblivious_winning_probability,
    )
    from repro.core.randomized import best_symmetric_mixture_exact
    from repro.geometry.montecarlo import estimate_simplex_box_volume
    from repro.geometry.volume import intersection_volume
    from repro.optimize.oblivious_opt import solve_oblivious_optimum
    from repro.optimize.threshold_opt import optimal_symmetric_threshold
    from repro.symbolic.polynomial import Polynomial

    report = ReproductionReport()

    def check(item, expected, measured, passed, note=""):
        report.checks.append(
            CheckResult(
                item=item,
                expected=expected,
                measured=measured,
                passed=passed,
                note=note,
            )
        )

    # --- Section 5.2.1 ------------------------------------------------
    opt3 = optimal_symmetric_threshold(3, 1)
    check(
        "5.2.1 beta* (n=3, delta=1)",
        "1 - sqrt(1/7) = 0.622",
        f"{float(opt3.beta):.6f}",
        _close(opt3.beta, 1 - (1 / 7) ** 0.5, 1e-9),
    )
    check(
        "5.2.1 P*",
        "0.545",
        f"{float(opt3.probability):.6f}",
        round(float(opt3.probability), 3) == 0.545,
    )
    curve3 = symmetric_threshold_winning_polynomial(3, 1)
    expected_high = Polynomial(
        [Fraction(-11, 6), 9, Fraction(-21, 2), Fraction(7, 2)]
    )
    check(
        "5.2.1 cubic on (1/2, 1]",
        "-11/6 + 9b - 21/2 b^2 + 7/2 b^3",
        curve3.piece_at(Fraction(4, 5)).polynomial.pretty("b"),
        curve3.piece_at(Fraction(4, 5)).polynomial == expected_high,
    )

    # --- Section 5.2.2 ------------------------------------------------
    opt4 = optimal_symmetric_threshold(4, Fraction(4, 3))
    check(
        "5.2.2 beta* (n=4, delta=4/3)",
        "~0.678",
        f"{float(opt4.beta):.6f}",
        round(float(opt4.beta), 3) == 0.678,
    )
    cubic = opt4.stationarity_polynomial
    check(
        "5.2.2 optimality cubic",
        "-(26/3)b^3+(98/3)b^2-(368/9)b+416/27 (D3: scan sign typo)",
        cubic.pretty("b"),
        cubic
        == Polynomial(
            [
                Fraction(416, 27),
                Fraction(-368, 9),
                Fraction(98, 3),
                Fraction(-26, 3),
            ]
        ),
    )

    # --- Theorem 4.3 ----------------------------------------------------
    uniform = all(
        solve_oblivious_optimum(1, n).alpha == Fraction(1, 2)
        for n in range(2, 8)
    )
    check(
        "Thm 4.3 symmetric optimum",
        "alpha* = 1/2 for n = 2..7",
        "1/2 for all" if uniform else "varies",
        uniform,
    )
    coin3 = optimal_oblivious_winning_probability(1, 3)
    check(
        "Thm 4.3 value (n=3)",
        "5/12",
        str(coin3),
        coin3 == Fraction(5, 12),
    )

    # --- Discrepancies (asserted as found) ------------------------------
    from repro.core.oblivious import oblivious_winning_probability

    split = oblivious_winning_probability(1, [1, 0, Fraction(1, 2)])
    check(
        "D1 boundary split beats coin",
        "1/2 > 5/12",
        f"{split} vs {coin3}",
        split == Fraction(1, 2) and split > coin3,
        note="Thm 4.3 holds for symmetric profiles only",
    )
    coin4 = optimal_oblivious_winning_probability(Fraction(4, 3), 4)
    check(
        "D2 coin beats threshold at n=4, 4/3",
        "559/1296 > P*(threshold)",
        f"{float(coin4):.6f} vs {float(opt4.probability):.6f}",
        coin4 > opt4.probability,
    )

    from repro.core.nonoblivious import threshold_winning_probability

    split_threshold = threshold_winning_probability(
        Fraction(4, 3), [1, 1, 0, 0]
    )
    check(
        "D4 asymmetric split beats symmetric thresholds",
        "49/81 > P*(symmetric)",
        f"{split_threshold} vs {float(opt4.probability):.6f}",
        split_threshold == Fraction(49, 81)
        and split_threshold > opt4.probability,
        note="Thm 5.2's symmetric reduction fails at n=4, delta=4/3",
    )

    # --- Extension E8 ---------------------------------------------------
    p_star, mixture_value = best_symmetric_mixture_exact(
        4, Fraction(4, 3), opt4.beta
    )
    check(
        "E8 interior mixture",
        "p* in (0,1), beats both",
        f"p*={float(p_star):.4f}, P={float(mixture_value):.6f}",
        0 < p_star < 1
        and mixture_value > coin4
        and mixture_value > opt4.probability,
    )

    # --- Substrate (Prop 2.2) -------------------------------------------
    sigma, pi = [Fraction(3, 2), 1, 2], [1, 1, 1]
    exact_volume = intersection_volume(sigma, pi)
    if monte_carlo_trials:
        estimate = estimate_simplex_box_volume(
            sigma, pi, samples=monte_carlo_trials, seed=0
        )
        check(
            "Prop 2.2 vs Monte Carlo",
            f"{float(exact_volume):.6f} inside CI",
            f"{estimate.volume:.6f} +- {estimate.half_width:.6f}",
            estimate.covers(float(exact_volume)),
        )

    # --- Monte Carlo replay of the optimum ------------------------------
    if monte_carlo_trials:
        from repro.model.algorithms import SingleThresholdRule
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        system = DistributedSystem(
            [SingleThresholdRule(opt3.beta)] * 3, 1
        )
        summary = MonteCarloEngine(seed=0).estimate_winning_probability(
            system, trials=monte_carlo_trials
        )
        check(
            "protocol replay (n=3 optimum)",
            f"{float(opt3.probability):.5f} inside CI",
            str(summary),
            summary.covers(float(opt3.probability)),
        )

    return report
