"""Compile-once / evaluate-many batch kernels (vectorised sweeps).

The paper's winning probabilities are piecewise polynomials in the
threshold and capacity parameters; this package lowers them to float64
coefficient tables once and evaluates whole NumPy grids with
vectorised Horner -- with every point either certified by an
a-posteriori error bound or transparently served by the exact
``Fraction`` kernel.  See :mod:`repro.batch.compile` for the
evaluation pipeline, :mod:`repro.batch.tables` for the cached curve
families, and :mod:`repro.batch.agreement` for the batch-vs-exact
integrity check wired into ``repro check --batch-grid``.
"""

from repro.batch.agreement import (
    AgreementReport,
    agreement_grid,
    run_batch_agreement,
)
from repro.batch.compile import BatchResult, CompiledPiecewise
from repro.batch.tables import (
    compiled_irwin_hall_cdf,
    compiled_oblivious_curve,
    compiled_threshold_curve,
    irwin_hall_piecewise,
    piecewise_from_table,
    piecewise_table,
)

__all__ = [
    "AgreementReport",
    "BatchResult",
    "CompiledPiecewise",
    "agreement_grid",
    "compiled_irwin_hall_cdf",
    "compiled_oblivious_curve",
    "compiled_threshold_curve",
    "irwin_hall_piecewise",
    "piecewise_from_table",
    "piecewise_table",
    "run_batch_agreement",
]
