"""repro -- Optimal, Distributed Decision-Making: The Case of No Communication.

A complete, exact-arithmetic reproduction of Georgiades, Mavronicolas &
Spirakis (FCT 1999): ``n`` players each receive a private uniform input
and, with no communication, choose one of two bins of capacity
``delta``; the goal is to maximise the probability that neither bin
overflows.

Top-level convenience re-exports cover the quickstart path; the
subpackages hold the full API:

* :mod:`repro.symbolic` -- exact polynomials, root isolation, piecewise
  functions;
* :mod:`repro.geometry` -- the simplex/box polytopes and the
  inclusion-exclusion volume of Proposition 2.2;
* :mod:`repro.probability` -- exact CDFs/PDFs for sums of uniforms
  (Lemmas 2.4-2.7, Irwin-Hall);
* :mod:`repro.model` -- players, decision rules, communication
  patterns, the distributed system;
* :mod:`repro.core` -- the winning-probability theorems (4.1, 5.1) and
  optimality conditions;
* :mod:`repro.optimize` -- exact and numeric optimisers;
* :mod:`repro.simulation` -- the Monte Carlo validation testbed;
* :mod:`repro.validation` -- runtime contracts, the analytic/MC
  cross-validation oracle, and the certified float fast path;
* :mod:`repro.baselines` -- comparison protocols;
* :mod:`repro.experiments` -- regeneration of every figure and table.
"""

from repro.core.nonoblivious import (
    symmetric_threshold_winning_polynomial,
    symmetric_threshold_winning_probability,
    threshold_winning_probability,
)
from repro.core.oblivious import (
    oblivious_winning_probability,
    optimal_oblivious_winning_probability,
)
from repro.core.winning import exact_winning_probability
from repro.errors import (
    ContractViolation,
    NumericalInstabilityError,
    ReproError,
    ValidationError,
)
from repro.model.algorithms import ObliviousCoin, SingleThresholdRule
from repro.model.system import DistributedSystem, Outcome
from repro.optimize.oblivious_opt import solve_oblivious_optimum
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.simulation.engine import MonteCarloEngine

__version__ = "1.0.0"

__all__ = [
    "ContractViolation",
    "DistributedSystem",
    "MonteCarloEngine",
    "NumericalInstabilityError",
    "ObliviousCoin",
    "Outcome",
    "ReproError",
    "SingleThresholdRule",
    "ValidationError",
    "__version__",
    "exact_winning_probability",
    "oblivious_winning_probability",
    "optimal_oblivious_winning_probability",
    "optimal_symmetric_threshold",
    "solve_oblivious_optimum",
    "symmetric_threshold_winning_polynomial",
    "symmetric_threshold_winning_probability",
    "threshold_winning_probability",
]
