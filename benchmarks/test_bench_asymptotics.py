"""E11 -- large-n asymptotics (extension).

Exact optima out to n = 10 at fixed capacity: decay ratios of the
winning probabilities and the persistence of the multiplicative
knowledge premium.
"""

from fractions import Fraction

from conftest import record

from repro.experiments.asymptotics import asymptotics_table, decay_ratios

NS = (2, 3, 4, 5, 6, 7, 8, 9, 10)


def test_bench_asymptotics_table(benchmark):
    table = benchmark.pedantic(
        lambda: asymptotics_table(NS, delta=1), rounds=1, iterations=1
    )
    ratios = decay_ratios(table)
    for row, ratio in zip(table[1:], ratios):
        record(
            f"asymptotics n={row.n}",
            beta_star=f"{float(row.beta_star):.5f}",
            p_threshold=f"{float(row.threshold_value):.3e}",
            p_coin=f"{float(row.coin_value):.3e}",
            decay_ratio=f"{float(ratio):.4f}",
            advantage=f"{float(row.relative_advantage):.4f}",
        )
    # the decay accelerates monotonically ...
    assert ratios == sorted(ratios, reverse=True)
    # ... while the knowledge premium persists
    assert all(
        Fraction(105, 100) < row.relative_advantage < Fraction(3, 2)
        for row in table
    )
    # beta* keeps falling toward the "spread the mass" regime
    betas = [row.beta_star for row in table[1:]]
    assert betas == sorted(betas, reverse=True)
