"""Exact volumes by inclusion-exclusion (Proposition 2.2 and Lemma 2.3).

The cornerstone of the paper is the polytope

``SigmaPi^(m)(sigma, pi) = Sigma^(m)(sigma)  intersect  Pi^(m)(pi)``,

the portion of the orthogonal simplex lying inside the box.  Its volume
has the closed form (Proposition 2.2)

``Vol = (1/m!) prod_l sigma_l * sum_{I : sum_{l in I} pi_l/sigma_l < 1}
        (-1)^|I| (1 - sum_{l in I} pi_l / sigma_l)^m``

where ``I`` ranges over subsets of ``{1..m}`` satisfying the strict
condition.  The proof subtracts, for each subset ``I``, the corner of
the simplex cut off by pushing every coordinate in ``I`` beyond its box
bound; Lemma 2.3 identifies each corner as a similar simplex with
similarity ratio ``1 - sum_{l in I} pi_l / sigma_l``.

Both the raw formula and an object-oriented wrapper are provided, plus a
direct recursive integration routine used as an independent witness in
the test-suite.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import combinations
from typing import Sequence, Tuple

from repro.cache import memoized_kernel
from repro.errors import ValidationError
from repro.geometry.box import Box
from repro.geometry.polytope import Polytope
from repro.geometry.simplex import OrthogonalSimplex
from repro.symbolic.rational import RationalLike, as_fraction, factorial
from repro.validation.contracts import (
    check_volume_subadditive,
    contracts_enabled,
)
from repro.validation.fastpath import (
    EPS,
    certified_alternating_sum,
    resolve_guarded,
)

__all__ = [
    "SimplexBoxIntersection",
    "corner_simplex_volume",
    "intersection_volume",
    "intersection_volume_by_integration",
    "intersection_volume_fast",
]


def _validated_sides(
    sigma: Sequence[RationalLike], pi: Sequence[RationalLike]
) -> Tuple[Tuple[Fraction, ...], Tuple[Fraction, ...]]:
    s = tuple(as_fraction(v) for v in sigma)
    p = tuple(as_fraction(v) for v in pi)
    if len(s) != len(p):
        raise ValidationError(
            f"dimension mismatch: {len(s)} simplex sides, {len(p)} box sides"
        )
    if not s:
        raise ValidationError("need at least one dimension")
    for i, v in enumerate(s):
        if v <= 0:
            raise ValidationError(f"sigma[{i}] must be positive, got {v}")
    for i, v in enumerate(p):
        if v <= 0:
            raise ValidationError(f"pi[{i}] must be positive, got {v}")
    return s, p


def corner_simplex_volume(
    sigma: Sequence[RationalLike],
    pi: Sequence[RationalLike],
    subset: Sequence[int],
) -> Fraction:
    """Lemma 2.3: volume of the simplex corner beyond ``x_l >= pi_l, l in subset``.

    Returns ``(1/m!) prod sigma_l * (1 - sum_{l in subset} pi_l/sigma_l)^m``
    when the ratio sum is below 1, and 0 otherwise (the corner is empty).
    """
    s, p = _validated_sides(sigma, pi)
    m = len(s)
    ratio_sum = sum((p[l] / s[l] for l in subset), Fraction(0))
    if ratio_sum >= 1:
        return Fraction(0)
    base = OrthogonalSimplex(s).volume()
    return base * (1 - ratio_sum) ** m


@memoized_kernel
def intersection_volume(
    sigma: Sequence[RationalLike], pi: Sequence[RationalLike]
) -> Fraction:
    """Proposition 2.2: exact volume of ``Sigma^(m)(sigma) ∩ Pi^(m)(pi)``.

    Runs over all ``2^m`` subsets; exact and fast for the dimensions the
    paper uses (``m = n`` players, small).  The subset enumeration
    short-circuits: once every singleton ratio ``pi_l / sigma_l``
    exceeds 1 the alternating sum collapses to the simplex volume.
    """
    s, p = _validated_sides(sigma, pi)
    m = len(s)
    ratios = [p[l] / s[l] for l in range(m)]
    prefactor = Fraction(1)
    for v in s:
        prefactor *= v
    prefactor /= factorial(m)

    total = Fraction(0)
    sign = 1
    for size in range(m + 1):
        layer = Fraction(0)
        hit = False
        for subset in combinations(range(m), size):
            ratio_sum = sum((ratios[l] for l in subset), Fraction(0))
            if ratio_sum < 1:
                layer += (1 - ratio_sum) ** m
                hit = True
        total += sign * layer
        sign = -sign
        if size > 0 and not hit:
            # Every subset of this size already violates the condition;
            # larger subsets only increase the ratio sum, so stop early.
            break
    volume = prefactor * total
    if contracts_enabled():
        box_volume = Fraction(1)
        for v in p:
            box_volume *= v
        check_volume_subadditive(
            "intersection_volume",
            volume,
            [OrthogonalSimplex(s).volume(), box_volume],
        )
    return volume


def intersection_volume_fast(
    sigma: Sequence[RationalLike],
    pi: Sequence[RationalLike],
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
    fallback: str = "exact",
) -> float:
    """Guarded float fast path for :func:`intersection_volume`.

    Evaluates the Proposition 2.2 alternating series in compensated
    float arithmetic with a running error bound (see
    :mod:`repro.validation.fastpath`); returns the float when the
    bound certifies it and otherwise falls back to the exact
    ``Fraction`` path (``fallback="exact"``, counted in the metrics)
    or raises :class:`~repro.errors.NumericalInstabilityError`
    (``fallback="raise"``).
    """
    s, p = _validated_sides(sigma, pi)
    m = len(s)
    ratios = [float(p[l] / s[l]) for l in range(m)]
    prefactor = Fraction(1)
    for v in s:
        prefactor *= v
    prefactor /= factorial(m)

    def bases():
        for size in range(m + 1):
            sign = 1 if size % 2 == 0 else -1
            for subset in combinations(ratios, size):
                ratio_sum = math.fsum(subset)
                error = 3.0 * EPS * (1.0 + ratio_sum)
                yield (sign, 1.0 - ratio_sum, error)

    guarded = certified_alternating_sum(
        bases(),
        m,
        float(1 / prefactor),
        rel_tol=rel_tol,
        abs_tol=abs_tol,
    )
    value = resolve_guarded(
        "intersection_volume",
        guarded,
        lambda: intersection_volume(s, p),
        fallback=fallback,
    )
    return max(0.0, value)


def intersection_volume_by_integration(
    sigma: Sequence[RationalLike], pi: Sequence[RationalLike]
) -> Fraction:
    """Independent witness: compute the same volume by recursive integration.

    Integrates out one coordinate at a time:

    ``Vol_m(theta) = integral_0^{min(pi_m, theta*sigma_m)}
                     Vol_{m-1}(theta - x/sigma_m) dx``

    implemented by tracking the volume as an exact piecewise polynomial
    in the remaining simplex budget ``theta``.  Exponentially slower to
    write down than Proposition 2.2 but derived by a completely
    different route, which is what makes it a useful cross-check.
    """
    from repro.symbolic.piecewise import Piece, PiecewisePolynomial
    from repro.symbolic.polynomial import Polynomial

    s, p = _validated_sides(sigma, pi)

    # volume(theta) for the first k coordinates, as a piecewise
    # polynomial in theta on [0, 1]; theta is the remaining fraction of
    # the simplex budget sum x_l / sigma_l <= theta.
    current = PiecewisePolynomial(
        [Piece(Fraction(0), Fraction(1), Polynomial.one())]
    )
    for k in range(len(s)):
        cap = min(p[k] / s[k], Fraction(1))  # x_k / sigma_k <= cap
        current = _integrate_budget(current, cap, s[k])
    return current(Fraction(1))


def _integrate_budget(volume, cap: Fraction, side: Fraction):
    """One integration step for :func:`intersection_volume_by_integration`.

    Given ``V_{k-1}(theta)`` piecewise on [0, 1], returns

    ``V_k(theta) = side * integral_0^{min(cap, theta)} V_{k-1}(theta - u) du``

    (the substitution ``u = x_k / sigma_k`` contributes the factor
    ``side = sigma_k``).
    """
    from repro.symbolic.piecewise import Piece, PiecewisePolynomial
    from repro.symbolic.polynomial import Polynomial

    # Antiderivative W of V (piecewise, continuous, W(0) = 0).
    anti_pieces = []
    running = Fraction(0)
    for piece in volume.pieces:
        anti = piece.polynomial.antiderivative()
        # adjust constant so W is continuous: W(piece.lower) == running
        anti = anti + Polynomial.constant(running - anti(piece.lower))
        anti_pieces.append(Piece(piece.lower, piece.upper, anti))
        running = anti(piece.upper)
    anti_fn = PiecewisePolynomial(anti_pieces)

    # V_k(theta) = side * (W(theta) - W(theta - min(cap, theta)))
    #            = side * (W(theta) - W(max(theta - cap, 0)))
    breakpoints = sorted(
        {Fraction(0), Fraction(1), cap}
        | {bp for bp in anti_fn.breakpoints}
        | {bp + cap for bp in anti_fn.breakpoints if 0 <= bp + cap <= 1}
    )
    breakpoints = [b for b in breakpoints if 0 <= b <= 1]

    def build(mid: Fraction) -> Polynomial:
        # Polynomial expression of W(theta) near mid.
        w_hi = anti_fn.piece_at(mid).polynomial
        lower_arg = mid - cap
        if lower_arg <= 0:
            w_lo = Polynomial.constant(anti_fn(Fraction(0)))
        else:
            w_lo = anti_fn.piece_at(lower_arg).polynomial.compose(
                Polynomial.linear(-cap, 1)
            )
        return (w_hi - w_lo) * side

    return PiecewisePolynomial.from_sampler(build, breakpoints)


class SimplexBoxIntersection:
    """The polytope ``SigmaPi^(m)(sigma, pi)`` with volume and membership.

    Wraps :class:`OrthogonalSimplex` and :class:`Box` so callers can
    treat the intersection as a first-class object.
    """

    def __init__(
        self, sigma: Sequence[RationalLike], pi: Sequence[RationalLike]
    ):
        s, p = _validated_sides(sigma, pi)
        self._simplex = OrthogonalSimplex(s)
        self._box = Box.from_sides(p)

    @property
    def simplex(self) -> OrthogonalSimplex:
        return self._simplex

    @property
    def box(self) -> Box:
        return self._box

    @property
    def dimension(self) -> int:
        return self._simplex.dimension

    def volume(self) -> Fraction:
        """Exact volume via Proposition 2.2."""
        return intersection_volume(self._simplex.sides, self._box.sides)

    def contains(self, point: Sequence[RationalLike]) -> bool:
        """Membership in both the simplex and the box."""
        return self._simplex.contains(point) and self._box.contains(point)

    def as_polytope(self) -> Polytope:
        """H-representation of the intersection."""
        return self._simplex.as_polytope().intersect(self._box.as_polytope())

    def __repr__(self) -> str:
        return (
            f"SimplexBoxIntersection(sigma={[str(v) for v in self._simplex.sides]}, "
            f"pi={[str(v) for v in self._box.sides]})"
        )
