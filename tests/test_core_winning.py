"""Tests for repro.core.winning (the exact dispatch front-end)."""

from fractions import Fraction

import pytest

from repro.core.nonoblivious import threshold_winning_probability
from repro.core.oblivious import oblivious_winning_probability
from repro.core.winning import exact_winning_probability
from repro.model.algorithms import (
    CallableRule,
    IntervalRule,
    ObliviousCoin,
    SingleThresholdRule,
)


class TestDispatch:
    def test_all_oblivious(self):
        algs = [ObliviousCoin(Fraction(1, 3)), ObliviousCoin(Fraction(2, 3))]
        assert exact_winning_probability(algs, 1) == (
            oblivious_winning_probability(1, [Fraction(1, 3), Fraction(2, 3)])
        )

    def test_all_thresholds(self):
        algs = [
            SingleThresholdRule(Fraction(1, 2)),
            SingleThresholdRule(Fraction(3, 4)),
        ]
        assert exact_winning_probability(algs, 1) == (
            threshold_winning_probability(
                1, [Fraction(1, 2), Fraction(3, 4)]
            )
        )

    def test_unsupported_types_raise(self):
        algs = [SingleThresholdRule(Fraction(1, 2)), CallableRule(lambda x: 0)]
        with pytest.raises(NotImplementedError, match="CallableRule"):
            exact_winning_probability(algs, 1)

    def test_interval_rule_now_supported(self):
        # extension: interval rules gained an exact evaluator, so the
        # dispatch covers them (see test_core_winning_general.py)
        from repro.core.interval_rules import (
            interval_rule_winning_probability,
        )

        algs = [IntervalRule([Fraction(1, 2)], [0, 1])]
        assert exact_winning_probability(algs, 1) == (
            interval_rule_winning_probability(1, algs)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_winning_probability([], 1)


class TestMixedProfiles:
    def test_coin_as_average_of_forced_thresholds(self):
        # one coin + one threshold: conditioning identity
        coin = ObliviousCoin(Fraction(1, 3))
        thresh = SingleThresholdRule(Fraction(1, 2))
        mixed = exact_winning_probability([coin, thresh], 1)
        forced0 = threshold_winning_probability(
            1, [Fraction(1), Fraction(1, 2)]
        )
        forced1 = threshold_winning_probability(
            1, [Fraction(0), Fraction(1, 2)]
        )
        assert mixed == Fraction(1, 3) * forced0 + Fraction(2, 3) * forced1

    def test_mixed_reduces_to_oblivious_when_all_coins(self):
        # the mixed path and the oblivious path must agree when given
        # coin-only profiles via different call shapes
        coins = [ObliviousCoin(Fraction(1, 4)), ObliviousCoin(Fraction(3, 4))]
        direct = exact_winning_probability(coins, Fraction(4, 3))
        # degenerate "thresholds" 1 and 0 encode forced bins
        manual = Fraction(0)
        for b0, w0 in ((1, Fraction(1, 4)), (0, Fraction(3, 4))):
            for b1, w1 in ((1, Fraction(3, 4)), (0, Fraction(1, 4))):
                manual += w0 * w1 * threshold_winning_probability(
                    Fraction(4, 3),
                    [Fraction(b0), Fraction(b1)],
                )
        assert direct == manual

    def test_mixed_against_monte_carlo(self):
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        algs = [
            ObliviousCoin(Fraction(2, 5)),
            SingleThresholdRule(Fraction(3, 5)),
            SingleThresholdRule(Fraction(1, 2)),
        ]
        exact = exact_winning_probability(algs, 1)
        engine = MonteCarloEngine(seed=77)
        summary = engine.estimate_winning_probability(
            DistributedSystem(algs, 1), trials=150_000
        )
        assert summary.covers(float(exact))

    def test_deterministic_coin_shortcut(self):
        # coins with alpha in {0, 1} contribute a single branch
        algs = [ObliviousCoin(1), SingleThresholdRule(Fraction(1, 2))]
        assert exact_winning_probability(algs, 1) == (
            threshold_winning_probability(1, [1, Fraction(1, 2)])
        )
