"""Piecewise polynomial functions with exact rational breakpoints.

Theorem 5.1's winning probability, as a function of the common threshold
``beta``, is polynomial on each interval between *breakpoints* -- the
points where one of the strict inclusion-exclusion conditions
``delta - i*beta > 0`` or ``k - delta - i*(1 - beta) > 0`` changes sign.
:class:`PiecewisePolynomial` represents exactly this object and provides
the operations the reproduction needs: exact evaluation, arithmetic,
differentiation piece-by-piece, and exact global maximisation (compare
all stationary points, breakpoints and endpoints).

**Dispatch convention.**  Pieces are *dispatched* half-open: a point on
a shared breakpoint belongs to the piece that *starts* there
(``[lower, upper)``), except that the last piece also owns the domain's
right endpoint.  This is the only convention a vectorised
``searchsorted`` dispatch can implement exactly, so scalar dispatch
(:meth:`PiecewisePolynomial.piece_at`, :meth:`evaluate_float`) and the
batch layer (:mod:`repro.batch`) share it; an earlier revision
dispatched scalar lookups to the *left* piece, which disagreed with the
batch layer at every interior breakpoint.  For the continuous functions
this package builds the *value* is the same either way; the convention
matters for derivatives and for identifying which polynomial a
breakpoint "belongs" to.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import PiecewiseDomainError
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction
from repro.symbolic.roots import real_roots

__all__ = ["Piece", "PiecewisePolynomial"]


@dataclass(frozen=True)
class Piece:
    """One polynomial piece valid on the interval from ``lower`` to ``upper``.

    Geometrically the piece covers the closed interval (adjacent pieces
    of a continuous function agree at the shared breakpoint); for
    *dispatch* the interval is treated as half-open ``[lower, upper)``
    with the final piece of a function also owning ``upper`` -- see
    :meth:`owns` and the module docstring.  Zero-width and inverted
    pieces are rejected: a zero-width piece can never own any point
    under the half-open convention, so accepting one silently would
    reintroduce the ambiguous-dispatch bug this class now guards
    against.
    """

    lower: Fraction
    upper: Fraction
    polynomial: Polynomial

    def __post_init__(self) -> None:
        if self.lower >= self.upper:
            raise PiecewiseDomainError(
                f"piece must have positive width, got "
                f"[{self.lower}, {self.upper}]"
            )

    def contains(self, point: Fraction) -> bool:
        """Whether *point* lies in this piece's closed interval.

        This is geometric membership: both endpoints count, so a shared
        breakpoint is contained in *two* adjacent pieces.  Use
        :meth:`owns` (or :meth:`PiecewisePolynomial.piece_at`) for
        dispatch, where every point resolves to exactly one piece.
        """
        return self.lower <= point <= self.upper

    def owns(self, point: Fraction, last: bool = False) -> bool:
        """Whether *point* dispatches to this piece: ``lower <= point <
        upper``, closed on the right as well when this is the *last*
        piece of its function."""
        if last:
            return self.lower <= point <= self.upper
        return self.lower <= point < self.upper

    def width(self) -> Fraction:
        """Length of the piece's interval."""
        return self.upper - self.lower


class PiecewisePolynomial:
    """A function that is polynomial on each of finitely many intervals.

    Pieces must be contiguous (each piece starts where the previous one
    ends) and are sorted on construction.  The function's domain is the
    closed interval from the first piece's lower bound to the last
    piece's upper bound.
    """

    def __init__(self, pieces: Sequence[Piece]):
        if not pieces:
            raise PiecewiseDomainError(
                "a PiecewisePolynomial needs at least one piece"
            )
        ordered = sorted(pieces, key=lambda p: (p.lower, p.upper))
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev.upper != nxt.lower:
                raise PiecewiseDomainError(
                    f"pieces are not contiguous: [{prev.lower}, {prev.upper}] "
                    f"then [{nxt.lower}, {nxt.upper}]"
                )
        self._pieces: Tuple[Piece, ...] = tuple(ordered)
        # Lazily-built float dispatch/evaluation table (see
        # _float_table): [float breakpoints], [[float coeffs], ...].
        self._floats: Optional[
            Tuple[List[float], List[List[float]]]
        ] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_breakpoints(
        cls,
        breakpoints: Sequence[RationalLike],
        polynomials: Sequence[Polynomial],
    ) -> "PiecewisePolynomial":
        """Build from ``n+1`` strictly increasing breakpoints and ``n``
        polynomials.

        Repeated or out-of-order breakpoints are rejected with
        :class:`~repro.errors.PiecewiseDomainError`: a repeated
        breakpoint would create a zero-width piece that silently
        swallows its polynomial (no point can ever dispatch to it), and
        an out-of-order sequence would silently pair polynomials with
        intervals the caller did not intend.
        """
        points = [as_fraction(b) for b in breakpoints]
        if len(points) != len(polynomials) + 1:
            raise PiecewiseDomainError(
                f"need len(breakpoints) == len(polynomials) + 1, got "
                f"{len(points)} and {len(polynomials)}"
            )
        for prev, nxt in zip(points, points[1:]):
            if prev >= nxt:
                raise PiecewiseDomainError(
                    f"breakpoints must be strictly increasing, got "
                    f"{prev} then {nxt}"
                )
        pieces = [
            Piece(points[i], points[i + 1], polynomials[i])
            for i in range(len(polynomials))
        ]
        return cls(pieces)

    @classmethod
    def from_sampler(
        cls,
        builder: Callable[[Fraction], Polynomial],
        breakpoints: Sequence[RationalLike],
    ) -> "PiecewisePolynomial":
        """Build by asking *builder* for the polynomial valid around the
        midpoint of each consecutive breakpoint pair.

        This is how the winning-probability construction works: the
        inclusion-exclusion conditions are constant on each open
        interval, so evaluating the condition pattern at the midpoint
        determines the piece's polynomial exactly.
        """
        points = sorted({as_fraction(b) for b in breakpoints})
        if len(points) < 2:
            raise PiecewiseDomainError(
                "need at least two distinct breakpoints"
            )
        pieces = []
        for lo, hi in zip(points, points[1:]):
            mid = (lo + hi) / 2
            pieces.append(Piece(lo, hi, builder(mid)))
        return cls(pieces)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pieces(self) -> Tuple[Piece, ...]:
        return self._pieces

    @property
    def lower(self) -> Fraction:
        """Left end of the domain."""
        return self._pieces[0].lower

    @property
    def upper(self) -> Fraction:
        """Right end of the domain."""
        return self._pieces[-1].upper

    @property
    def breakpoints(self) -> List[Fraction]:
        """All breakpoints including the two domain endpoints."""
        return [p.lower for p in self._pieces] + [self.upper]

    def piece_index_at(self, point: RationalLike) -> int:
        """Index of the unique piece that *owns* *point*.

        Pieces own their interval half-open (``[lower, upper)``); the
        last piece also owns the domain's right endpoint.  A point on a
        shared breakpoint therefore resolves to exactly one piece --
        the one that *starts* there -- matching the
        ``searchsorted``-based dispatch of the vectorised batch layer
        (:mod:`repro.batch`) exactly.
        """
        x = as_fraction(point)
        if not self.lower <= x <= self.upper:
            raise PiecewiseDomainError(
                f"{x} outside domain [{self.lower}, {self.upper}]"
            )
        # Binary search over the piece lower bounds: the owning piece is
        # the last one whose lower bound is <= x (clamped so the domain
        # upper endpoint stays with the final piece).
        lowers = [p.lower for p in self._pieces]
        index = bisect.bisect_right(lowers, x) - 1
        return min(max(index, 0), len(self._pieces) - 1)

    def piece_at(self, point: RationalLike) -> Piece:
        """The unique piece that owns *point* (see :meth:`piece_index_at`).

        At a shared breakpoint this is the piece that *starts* there --
        the half-open dispatch convention shared with the batch layer.
        (An earlier revision returned the *left* piece, disagreeing
        with vectorised dispatch at every interior breakpoint.)
        """
        return self._pieces[self.piece_index_at(point)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, point: RationalLike) -> Fraction:
        """Exact evaluation."""
        x = as_fraction(point)
        return self.piece_at(x).polynomial(x)

    def _float_table(self) -> Tuple[List[float], List[List[float]]]:
        """The cached float dispatch table: breakpoints and per-piece
        coefficients converted once (correctly rounded) to float64."""
        if self._floats is None:
            edges = [float(p.lower) for p in self._pieces]
            edges.append(float(self.upper))
            coeffs = [
                [float(c) for c in p.polynomial.coefficients]
                for p in self._pieces
            ]
            self._floats = (edges, coeffs)
        return self._floats

    def evaluate_float(self, point: float) -> float:
        """True float64 evaluation: float dispatch + float Horner.

        Dispatch happens on the float64 images of the breakpoints with
        the same half-open convention as :meth:`piece_at` and the batch
        layer, and the owning piece is evaluated by Horner's rule in
        float64 -- identical operations, in the same order, as the
        vectorised :class:`repro.batch.CompiledPiecewise`, so the two
        agree bit-for-bit on every point (including points that sit
        exactly on representable breakpoints).

        An earlier revision round-tripped the float through
        ``as_fraction`` and ran the exact kernel -- as slow as the
        exact path, and dispatched in *exact* arithmetic, which can
        pick a different piece than float dispatch at representable
        breakpoints.
        """
        x = float(point)
        edges, coeffs = self._float_table()
        if not edges[0] <= x <= edges[-1]:
            raise PiecewiseDomainError(
                f"{x!r} outside float domain [{edges[0]}, {edges[-1]}]"
            )
        # Same half-open dispatch as piece_index_at, on float edges:
        # the owning piece is the last whose lower edge is <= x.
        index = bisect.bisect_right(edges, x, hi=len(edges) - 1) - 1
        index = max(index, 0)
        result = 0.0
        for c in reversed(coeffs[index]):
            result = result * x + c
        return result

    def sample(self, count: int) -> List[Tuple[Fraction, Fraction]]:
        """Evaluate on *count* evenly spaced points across the domain."""
        from repro.symbolic.rational import rational_range

        xs = rational_range(self.lower, self.upper, count)
        return [(x, self(x)) for x in xs]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map_pieces(
        self, transform: Callable[[Polynomial], Polynomial]
    ) -> "PiecewisePolynomial":
        """Apply *transform* to every piece's polynomial."""
        return PiecewisePolynomial(
            [Piece(p.lower, p.upper, transform(p.polynomial)) for p in self._pieces]
        )

    def derivative(self) -> "PiecewisePolynomial":
        """Piecewise derivative (defined piece-by-piece; breakpoint values
        follow the convention of :meth:`piece_at`)."""
        return self.map_pieces(lambda poly: poly.derivative())

    def simplify(self) -> "PiecewisePolynomial":
        """Merge adjacent pieces whose polynomials are identical."""
        merged: List[Piece] = []
        for piece in self._pieces:
            if merged and merged[-1].polynomial == piece.polynomial:
                merged[-1] = Piece(merged[-1].lower, piece.upper, piece.polynomial)
            else:
                merged.append(piece)
        return PiecewisePolynomial(merged)

    def _binary_op(
        self,
        other: "PiecewisePolynomial",
        op: Callable[[Polynomial, Polynomial], Polynomial],
    ) -> "PiecewisePolynomial":
        if (self.lower, self.upper) != (other.lower, other.upper):
            raise ValueError(
                f"domain mismatch: [{self.lower}, {self.upper}] vs "
                f"[{other.lower}, {other.upper}]"
            )
        points = sorted(set(self.breakpoints) | set(other.breakpoints))
        pieces = []
        for lo, hi in zip(points, points[1:]):
            mid = (lo + hi) / 2
            left = self.piece_at(mid).polynomial
            right = other.piece_at(mid).polynomial
            pieces.append(Piece(lo, hi, op(left, right)))
        return PiecewisePolynomial(pieces)

    def __add__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a + b)

    def __sub__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a - b)

    def __mul__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a * b)

    def scale(self, factor: RationalLike) -> "PiecewisePolynomial":
        """Multiply the whole function by a rational constant."""
        f = as_fraction(factor)
        return self.map_pieces(lambda poly: poly * f)

    # ------------------------------------------------------------------
    # Optimisation
    # ------------------------------------------------------------------
    def critical_points(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> List[Fraction]:
        """All candidate extrema: breakpoints plus interior stationary points.

        Stationary points are found exactly per piece with Sturm-based
        root isolation on the piece's derivative; irrational roots are
        refined to *tolerance*.
        """
        candidates = set(self.breakpoints)
        for piece in self._pieces:
            deriv = piece.polynomial.derivative()
            if deriv.is_zero() or deriv.is_constant():
                continue
            for root in real_roots(deriv, piece.lower, piece.upper, tolerance):
                if piece.lower <= root <= piece.upper:
                    candidates.add(root)
        return sorted(candidates)

    def maximize(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> Tuple[Fraction, Fraction]:
        """Return ``(argmax, max)`` over the whole domain.

        Ties break toward the smallest argmax, which keeps results
        deterministic.
        """
        best_x: Optional[Fraction] = None
        best_v: Optional[Fraction] = None
        for x in self.critical_points(tolerance):
            v = self(x)
            if best_v is None or v > best_v:
                best_x, best_v = x, v
        assert best_x is not None and best_v is not None
        return best_x, best_v

    def minimize(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> Tuple[Fraction, Fraction]:
        """Return ``(argmin, min)`` over the whole domain."""
        negated = self.map_pieces(lambda poly: -poly)
        x, v = negated.maximize(tolerance)
        return x, -v

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"PiecewisePolynomial({len(self._pieces)} pieces on [{self.lower}, {self.upper}])"

    def pretty(self, variable: str = "x") -> str:
        """Multi-line rendering listing every piece."""
        lines = []
        for piece in self._pieces:
            lines.append(
                f"[{piece.lower}, {piece.upper}]: {piece.polynomial.pretty(variable)}"
            )
        return "\n".join(lines)
