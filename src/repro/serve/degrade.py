"""Deadline budgets and the tiered answer policy of the serving layer.

Every request enters with a :class:`Deadline` -- a monotonic-clock
budget fixed at admission time -- and the kernel tiers consume it in
order of cost:

1. **Certified float** (always runs): one vectorised Horner pass
   through the compiled piecewise table
   (:meth:`~repro.batch.compile.CompiledPiecewise.evaluate_with_bound`)
   yields the value *and* an a-posteriori error bound in microseconds.
   When the bound clears the tolerance the answer is final and
   bit-identical to the scalar float path.
2. **Exact fallback** (conditional): an uncertified point is recomputed
   by the exact ``Fraction`` kernel -- but only while deadline budget
   remains *and* the circuit breaker around the exact tier is closed.
   The fallback runs off-loop in the default executor with a timeout of
   the remaining budget, so a pathological point cannot stall the
   event loop or blow the request's deadline.
3. **Degraded** (always possible): when the budget is spent or the
   breaker is open, the float value from tier 1 is served as-is,
   explicitly flagged ``tier="degraded"`` and carrying its certified
   error bound.  Degradation is never silent: the response says
   exactly how wrong it can be.

The same ladder shapes ``/v1/optimal-strategy``:
:func:`certified_grid_optimum` is the degraded tier -- a dense float
grid over the compiled curve plus the per-piece Lipschitz ceiling of
:func:`~repro.optimize.threshold_opt.optimal_symmetric_threshold_batched`,
which brackets the true optimum ``P*`` in ``[floor, ceiling]`` with
sound (never heuristic) arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

__all__ = [
    "Deadline",
    "GridOptimum",
    "TIER_ASYMPTOTIC",
    "TIER_CERTIFIED",
    "TIER_DEGRADED",
    "TIER_EXACT",
    "certified_grid_optimum",
    "certifies",
]

#: Answer tiers, in descending order of preference.
TIER_CERTIFIED = "certified"  # float value, bound clears tolerance
TIER_EXACT = "exact"  # Fraction fallback ran within budget
TIER_ASYMPTOTIC = "asymptotic"  # large-n tier: certified analytic bound
TIER_DEGRADED = "degraded"  # float value served with its bound only

#: Default certification tolerances -- the same defaults as
#: :meth:`CompiledPiecewise.evaluate_certified`.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-15


class Deadline:
    """A request's time budget on the monotonic clock.

    Created once at admission; every tier asks :meth:`remaining`
    before spending work.  *clock* is injectable so the tests can
    drive expiry without sleeping.
    """

    __slots__ = ("_clock", "_start", "budget_seconds")

    def __init__(
        self,
        budget_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {budget_ms}")
        self._clock = clock
        self._start = clock()
        self.budget_seconds = budget_ms / 1000.0

    def elapsed(self) -> float:
        """Seconds since admission."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.budget_seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        return self.elapsed() >= self.budget_seconds

    def __repr__(self) -> str:
        return (
            f"Deadline({self.budget_seconds * 1000:.0f}ms, "
            f"{self.remaining() * 1000:.0f}ms left)"
        )


def certifies(
    value: float,
    bound: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Whether a float answer's a-posteriori bound clears the
    tolerance -- the same predicate as
    :meth:`CompiledPiecewise.evaluate_certified`."""
    return bound <= max(abs_tol, rel_tol * abs(value))


@dataclass(frozen=True)
class GridOptimum:
    """The degraded tier's answer to "where is the maximum?".

    *probability* is the best sampled float value; the true optimum
    ``P*`` provably lies in ``[floor, ceiling]``, so
    ``|probability - P*| <= error_bound`` where ``error_bound =
    max(ceiling - probability, probability - floor)``.  *beta* is the
    best sampled abscissa, located to within *beta_resolution* of a
    true argmax only heuristically -- which is why the response flags
    the whole answer ``degraded`` rather than pretending precision.
    """

    beta: float
    probability: float
    floor: float
    ceiling: float
    beta_resolution: float

    @property
    def error_bound(self) -> float:
        return max(
            self.ceiling - self.probability, self.probability - self.floor
        )


def certified_grid_optimum(
    compiled, samples_per_piece: int = 128
) -> GridOptimum:
    """Bracket a compiled curve's maximum on a float grid, soundly.

    The same bound construction as the batched optimiser's pruning
    pass (:func:`optimal_symmetric_threshold_batched`): per piece, the
    exact derivative-magnitude (Lipschitz) bound ``sum i |c_i|
    M^(i-1)`` caps how far the true maximum can rise above the best
    sample, and the per-point float evaluation bounds cap what the
    samples themselves can lie about.  Unlike the optimiser this never
    opens the exact tier -- it is the degraded answer, built entirely
    from work already done in float.
    """
    import numpy as np

    pieces = compiled.exact.pieces
    count = max(samples_per_piece, 2)
    grids = [
        np.linspace(float(p.lower), float(p.upper), count) for p in pieces
    ]
    xs = np.concatenate(grids)
    values, bounds = compiled.evaluate_with_bound(xs)
    finite = np.isfinite(bounds)
    floor = (
        float(np.max(values[finite] - bounds[finite]))
        if bool(finite.any())
        else float("-inf")
    )
    ceiling = float("-inf")
    for index, piece in enumerate(pieces):
        sample_xs = grids[index]
        sample_values = values[index * count : (index + 1) * count]
        sample_bounds = bounds[index * count : (index + 1) * count]
        scale = max(abs(piece.lower), abs(piece.upper))
        lipschitz = Fraction(0)
        for degree, coeff in enumerate(piece.polynomial.coefficients):
            if degree:
                lipschitz += degree * abs(coeff) * scale ** (degree - 1)
        # Samples that land exactly on a piece edge can dispatch to the
        # neighbouring piece and come back with an infinite bound; drop
        # them and widen the Lipschitz coverage radius so every point of
        # the piece is still within reach of a trusted sample.
        trusted = np.isfinite(sample_bounds)
        if not bool(trusted.any()):
            ceiling = float("inf")
            break
        trusted_xs = sample_xs[trusted]
        reach = max(
            float(trusted_xs[0]) - float(piece.lower),
            float(piece.upper) - float(trusted_xs[-1]),
            float(np.max(np.diff(trusted_xs)) / 2.0)
            if trusted_xs.size > 1
            else 0.0,
        )
        slack = float(np.max(sample_bounds[trusted]))
        piece_ceiling = (
            float(np.max(sample_values[trusted]))
            + float(lipschitz) * reach * (1.0 + 1e-9)
            + slack
            + 1e-12
        )
        ceiling = max(ceiling, piece_ceiling)
    best = int(np.argmax(np.where(finite, values, float("-inf"))))
    resolution = max(
        float(p.width()) / (count - 1) for p in pieces
    )
    return GridOptimum(
        beta=float(xs[best]),
        probability=float(values[best]),
        floor=floor,
        ceiling=min(ceiling, 1.0),  # probabilities cannot exceed 1
        beta_resolution=resolution,
    )


async def exact_fallback_with_budget(
    exact_kernel: Callable[[], object],
    deadline: Deadline,
    min_budget_seconds: float = 0.005,
) -> Optional[object]:
    """Run the exact tier off-loop within the remaining budget.

    Returns the exact value, or ``None`` when the budget is already
    too thin to bother (*min_budget_seconds*) or expires mid-compute.
    A timed-out computation keeps running in its executor thread --
    Python offers no safe preemption -- but the request stops waiting
    for it; the circuit breaker exists precisely to stop *sustained*
    overruns from piling up such orphans.
    """
    import asyncio

    remaining = deadline.remaining()
    if remaining < min_budget_seconds:
        return None
    loop = asyncio.get_running_loop()
    try:
        return await asyncio.wait_for(
            loop.run_in_executor(None, exact_kernel), timeout=remaining
        )
    except asyncio.TimeoutError:
        return None
