"""Random-variable objects wrapping the exact formulas.

The formula modules (:mod:`repro.probability.uniform_sums`) are pure
functions; this module offers a small object layer for callers that
prefer to build a distribution once and query it repeatedly -- notably
the simulation substrate, which samples these objects to validate the
exact CDFs.

Sums of uniforms on *arbitrary* intervals ``[a_i, b_i]`` are supported
by shifting: ``sum U[a_i, b_i] == sum a_i + sum U[0, b_i - a_i]``, which
reduces every query to Lemma 2.4.  This generalises both Lemma 2.4
(``a_i = 0``) and Lemma 2.7 (``b_i = 1``), and the test-suite checks the
reductions agree.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.probability.uniform_sums import sum_uniform_cdf, sum_uniform_pdf
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["Uniform", "SumOfUniforms"]


class Uniform:
    """A uniform random variable on ``[lower, upper]`` with exact queries."""

    def __init__(self, lower: RationalLike = 0, upper: RationalLike = 1):
        self._lower = as_fraction(lower)
        self._upper = as_fraction(upper)
        if self._lower >= self._upper:
            raise ValueError(
                f"need lower < upper, got [{self._lower}, {self._upper}]"
            )

    @property
    def lower(self) -> Fraction:
        return self._lower

    @property
    def upper(self) -> Fraction:
        return self._upper

    @property
    def mean(self) -> Fraction:
        return (self._lower + self._upper) / 2

    @property
    def variance(self) -> Fraction:
        return (self._upper - self._lower) ** 2 / 12

    def cdf(self, t: RationalLike) -> Fraction:
        """Exact ``P(X <= t)``."""
        tt = as_fraction(t)
        if tt <= self._lower:
            return Fraction(0)
        if tt >= self._upper:
            return Fraction(1)
        return (tt - self._lower) / (self._upper - self._lower)

    def pdf(self, t: RationalLike) -> Fraction:
        """Exact density (0 outside the support)."""
        tt = as_fraction(t)
        if self._lower < tt < self._upper:
            return 1 / (self._upper - self._lower)
        return Fraction(0)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw *count* float samples."""
        return rng.uniform(float(self._lower), float(self._upper), size=count)

    def conditioned_below(self, threshold: RationalLike) -> "Uniform":
        """The distribution of X given ``X <= threshold`` (still uniform)."""
        tt = as_fraction(threshold)
        if not self._lower < tt <= self._upper:
            raise ValueError(
                f"threshold {tt} must lie in ({self._lower}, {self._upper}]"
            )
        return Uniform(self._lower, tt)

    def conditioned_above(self, threshold: RationalLike) -> "Uniform":
        """The distribution of X given ``X >= threshold`` (still uniform)."""
        tt = as_fraction(threshold)
        if not self._lower <= tt < self._upper:
            raise ValueError(
                f"threshold {tt} must lie in [{self._lower}, {self._upper})"
            )
        return Uniform(tt, self._upper)

    def __repr__(self) -> str:
        return f"Uniform([{self._lower}, {self._upper}])"


class SumOfUniforms:
    """The sum of independent uniforms on arbitrary intervals.

    Queries are exact, computed by shifting to Lemma 2.4 form.  The
    subset enumeration in the underlying formula is exponential in the
    number of summands; intended for the paper's small player counts.
    """

    def __init__(self, variables: Sequence[Uniform]):
        if not variables:
            raise ValueError("SumOfUniforms needs at least one variable")
        self._variables: Tuple[Uniform, ...] = tuple(variables)
        self._offset = sum((v.lower for v in variables), Fraction(0))
        self._spans = [v.upper - v.lower for v in variables]

    @classmethod
    def iid_unit(cls, count: int) -> "SumOfUniforms":
        """``count`` iid U[0, 1] variables -- the Irwin-Hall sum."""
        return cls([Uniform(0, 1) for _ in range(count)])

    @property
    def variables(self) -> Tuple[Uniform, ...]:
        return self._variables

    @property
    def count(self) -> int:
        return len(self._variables)

    @property
    def support(self) -> Tuple[Fraction, Fraction]:
        """The interval on which the sum has positive density."""
        lo = self._offset
        hi = sum((v.upper for v in self._variables), Fraction(0))
        return lo, hi

    @property
    def mean(self) -> Fraction:
        return sum((v.mean for v in self._variables), Fraction(0))

    @property
    def variance(self) -> Fraction:
        return sum((v.variance for v in self._variables), Fraction(0))

    def cdf(self, t: RationalLike) -> Fraction:
        """Exact ``P(sum <= t)`` via the shift reduction to Lemma 2.4."""
        tt = as_fraction(t)
        return sum_uniform_cdf(tt - self._offset, self._spans)

    def pdf(self, t: RationalLike) -> Fraction:
        """Exact density via the shift reduction to Lemma 2.5."""
        tt = as_fraction(t)
        lo, hi = self.support
        if tt <= lo or tt >= hi:
            return Fraction(0)
        return sum_uniform_pdf(tt - self._offset, self._spans)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw *count* float samples of the sum."""
        total = np.zeros(count)
        for v in self._variables:
            total += v.sample(rng, count)
        return total

    def empirical_cdf(
        self,
        t: float,
        samples: int = 100_000,
        seed: Optional[int] = None,
    ) -> float:
        """Monte Carlo estimate of the CDF, for validation against :meth:`cdf`."""
        rng = np.random.default_rng(seed)
        draws = self.sample(rng, samples)
        return float(np.mean(draws <= t))

    def __repr__(self) -> str:
        return f"SumOfUniforms({list(self._variables)!r})"
