"""Tests for repro.core.interval_rules (the step-function extension)."""

from fractions import Fraction

import pytest

from repro.core.interval_rules import (
    best_two_cut_perturbation,
    interval_rule_winning_probability,
    rule_segments,
    single_threshold_as_interval_rule,
)
from repro.core.nonoblivious import threshold_winning_probability
from repro.model.algorithms import IntervalRule
from repro.probability.uniform_sums import (
    irwin_hall_cdf,
    joint_sum_below_and_inside_boxes,
)


class TestJointBoxes:
    def test_generalises_low_joint(self):
        from repro.probability.uniform_sums import (
            joint_sum_below_and_inside_low,
        )

        alphas = [Fraction(1, 3), Fraction(2, 3)]
        t = Fraction(3, 4)
        assert joint_sum_below_and_inside_boxes(
            t, [(0, a) for a in alphas]
        ) == joint_sum_below_and_inside_low(t, alphas)

    def test_generalises_high_joint(self):
        from repro.probability.uniform_sums import (
            joint_sum_below_and_inside_high,
        )

        alphas = [Fraction(1, 4), Fraction(1, 2)]
        t = Fraction(7, 4)
        assert joint_sum_below_and_inside_boxes(
            t, [(a, 1) for a in alphas]
        ) == joint_sum_below_and_inside_high(t, alphas)

    def test_empty(self):
        assert joint_sum_below_and_inside_boxes(1, []) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            joint_sum_below_and_inside_boxes(
                1, [(Fraction(1, 2), Fraction(1, 2))]
            )
        with pytest.raises(ValueError):
            joint_sum_below_and_inside_boxes(1, [(0, Fraction(3, 2))])


class TestSegments:
    def test_single_threshold_segments(self):
        rule = single_threshold_as_interval_rule(Fraction(2, 5))
        assert rule_segments(rule, 0) == [(Fraction(0), Fraction(2, 5))]
        assert rule_segments(rule, 1) == [(Fraction(2, 5), Fraction(1))]

    def test_degenerate_thresholds(self):
        always_one = single_threshold_as_interval_rule(0)
        assert rule_segments(always_one, 0) == []
        assert rule_segments(always_one, 1) == [(0, 1)]
        always_zero = single_threshold_as_interval_rule(1)
        assert rule_segments(always_zero, 0) == [(0, 1)]
        assert rule_segments(always_zero, 1) == []

    def test_sandwich_segments(self):
        rule = IntervalRule([Fraction(1, 4), Fraction(3, 4)], [0, 1, 0])
        assert rule_segments(rule, 0) == [
            (Fraction(0), Fraction(1, 4)),
            (Fraction(3, 4), Fraction(1)),
        ]
        assert rule_segments(rule, 1) == [
            (Fraction(1, 4), Fraction(3, 4))
        ]

    def test_adjacent_same_bit_segments_merged(self):
        rule = IntervalRule(
            [Fraction(1, 4), Fraction(1, 2)], [0, 0, 1]
        )
        assert rule_segments(rule, 0) == [(Fraction(0), Fraction(1, 2))]

    def test_zero_width_segment_dropped(self):
        rule = IntervalRule([Fraction(0), Fraction(1, 2)], [1, 0, 1])
        # the [0, 0] "segment" labelled 1 vanishes
        assert rule_segments(rule, 0) == [(Fraction(0), Fraction(1, 2))]
        assert rule_segments(rule, 1) == [(Fraction(1, 2), Fraction(1))]

    def test_bit_validation(self):
        rule = single_threshold_as_interval_rule(Fraction(1, 2))
        with pytest.raises(ValueError):
            rule_segments(rule, 2)


class TestIntervalWinningProbability:
    def test_reduces_to_theorem_5_1(self):
        for thresholds in (
            [Fraction(1, 2)] * 3,
            [Fraction(311, 500)] * 3,
            [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)],
        ):
            rules = [
                single_threshold_as_interval_rule(a) for a in thresholds
            ]
            assert interval_rule_winning_probability(1, rules) == (
                threshold_winning_probability(1, thresholds)
            )

    def test_constant_rules(self):
        # everyone forced to bin 1: Irwin-Hall
        rules = [single_threshold_as_interval_rule(0)] * 3
        assert interval_rule_winning_probability(1, rules) == (
            irwin_hall_cdf(1, 3)
        )

    def test_flipped_threshold_symmetry(self):
        # swapping the two bins everywhere leaves the winning
        # probability unchanged
        beta = Fraction(3, 5)
        normal = [IntervalRule([beta], [0, 1])] * 3
        flipped = [IntervalRule([beta], [1, 0])] * 3
        assert interval_rule_winning_probability(
            1, normal
        ) == interval_rule_winning_probability(1, flipped)

    def test_sandwich_rule_against_monte_carlo(self):
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        rule = IntervalRule([Fraction(1, 2), Fraction(4, 5)], [0, 1, 0])
        rules = [rule] * 3
        exact = interval_rule_winning_probability(1, rules)
        summary = MonteCarloEngine(seed=55).estimate_winning_probability(
            DistributedSystem(rules, 1), trials=120_000
        )
        assert summary.covers(float(exact))

    def test_mixed_rule_shapes_against_monte_carlo(self):
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        rules = [
            IntervalRule([Fraction(1, 3)], [1, 0]),
            IntervalRule(
                [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)],
                [0, 1, 0, 1],
            ),
            single_threshold_as_interval_rule(Fraction(3, 5)),
        ]
        exact = interval_rule_winning_probability(Fraction(4, 3), rules)
        summary = MonteCarloEngine(seed=56).estimate_winning_probability(
            DistributedSystem(rules, Fraction(4, 3)), trials=120_000
        )
        assert summary.covers(float(exact))

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_rule_winning_probability(1, [])
        rules = [single_threshold_as_interval_rule(Fraction(1, 2))]
        assert interval_rule_winning_probability(0, rules) == 0

    def test_range(self):
        rule = IntervalRule([Fraction(2, 5), Fraction(3, 5)], [1, 0, 1])
        v = interval_rule_winning_probability(Fraction(1, 2), [rule] * 2)
        assert 0 <= v <= 1


class TestTwoCutAblation:
    def test_no_improvement_at_paper_optimum(self):
        """At the Section 5.2.1 optimum, 'send the largest inputs back
        to bin 0' refinements do not help -- the single threshold wins
        in the whole perturbation family."""
        best, single, cuts = best_two_cut_perturbation(
            3,
            1,
            Fraction(62204, 100000),
            offsets=[Fraction(k, 25) for k in range(-2, 10)],
        )
        assert best == single

    def test_improvement_possible_at_bad_threshold(self):
        """Away from the optimum the family must be able to improve
        (sanity check that the search is not vacuous): at beta = 0.9
        the two-cut family strictly beats the single threshold."""
        best, single, cuts = best_two_cut_perturbation(
            3,
            1,
            Fraction(9, 10),
            offsets=[Fraction(k, 20) - Fraction(1, 2) for k in range(0, 20)],
        )
        assert best > single
