"""Tests for repro.core.optimality (Corollary 4.2 / Theorem 5.2)."""

from fractions import Fraction

import pytest

from repro.core.nonoblivious import symmetric_threshold_winning_polynomial
from repro.core.oblivious import oblivious_winning_probability
from repro.core.optimality import (
    oblivious_gradient,
    oblivious_partial,
    symmetric_threshold_stationarity,
    threshold_gradient,
)
from repro.symbolic.polynomial import Polynomial


class TestObliviousGradient:
    def test_vanishes_at_fair_coin(self):
        for n in (2, 3, 4, 5):
            for t in (Fraction(1, 2), 1, Fraction(4, 3)):
                grad = oblivious_gradient(t, [Fraction(1, 2)] * n)
                assert all(g == 0 for g in grad)

    def test_matches_finite_difference(self):
        t = Fraction(1)
        alphas = [Fraction(1, 3), Fraction(2, 5), Fraction(3, 4)]
        h = Fraction(1, 10**6)
        for k in range(3):
            up = list(alphas)
            down = list(alphas)
            up[k] += h
            down[k] -= h
            numeric = (
                oblivious_winning_probability(t, up)
                - oblivious_winning_probability(t, down)
            ) / (2 * h)
            exact = oblivious_partial(t, alphas, k)
            # the objective is multilinear in alpha, so the central
            # difference is EXACT
            assert numeric == exact

    def test_index_validation(self):
        with pytest.raises(ValueError):
            oblivious_partial(1, [Fraction(1, 2)] * 3, 3)

    def test_single_player(self):
        # n = 1: P = alpha*phi(0) + (1-alpha)*phi(1); gradient is
        # phi(0) - phi(1) = 0 by symmetry
        grad = oblivious_gradient(1, [Fraction(1, 3)])
        assert grad == [Fraction(0)]

    def test_gradient_sign_pushes_toward_balance(self):
        # with everyone biased to bin 0 (alpha > 1/2), the partial
        # derivative should be negative: decreasing alpha_k (moving
        # toward bin 1) helps.
        t = Fraction(1)
        grad = oblivious_gradient(t, [Fraction(3, 4)] * 3)
        assert all(g < 0 for g in grad)
        grad = oblivious_gradient(t, [Fraction(1, 4)] * 3)
        assert all(g > 0 for g in grad)


class TestThresholdGradient:
    def test_matches_piecewise_derivative_in_symmetric_case(self):
        n, delta = 3, Fraction(1)
        beta = Fraction(7, 10)  # interior of the (1/2, 1] piece
        curve = symmetric_threshold_winning_polynomial(n, delta)
        # d/dbeta of P(beta, beta, beta) = sum of partials
        total_exact = curve.derivative()(beta)
        grad = threshold_gradient(delta, [beta] * n)
        assert abs(sum(grad) - total_exact) < Fraction(1, 10**4)

    def test_zero_at_optimum(self):
        # near beta* the summed gradient changes sign
        n, delta = 3, Fraction(1)
        below = [Fraction(61, 100)] * n
        above = [Fraction(64, 100)] * n
        assert sum(threshold_gradient(delta, below)) > 0
        assert sum(threshold_gradient(delta, above)) < 0

    def test_step_validation(self):
        with pytest.raises(ValueError):
            threshold_gradient(1, [Fraction(1, 2)], step=0)

    def test_boundary_thresholds_handled(self):
        grad = threshold_gradient(1, [Fraction(0), Fraction(1)])
        assert len(grad) == 2


class TestSymmetricStationarity:
    def test_n3_delta1_matches_paper_quadratic(self):
        stationarity = symmetric_threshold_stationarity(3, 1)
        piece = stationarity.piece_at(Fraction(3, 4)).polynomial
        # (21/2)(beta^2 - 2 beta + 6/7)
        assert piece == Polynomial([Fraction(6, 7), -2, 1]) * Fraction(21, 2)

    def test_root_is_paper_threshold(self):
        from repro.symbolic.roots import real_roots

        stationarity = symmetric_threshold_stationarity(3, 1)
        piece = stationarity.piece_at(Fraction(3, 4)).polynomial
        roots = real_roots(piece, Fraction(1, 2), 1, Fraction(1, 10**15))
        assert len(roots) == 1
        assert abs(float(roots[0]) - (1 - (1 / 7) ** 0.5)) < 1e-13

    def test_derivative_of_curve(self):
        n, delta = 4, Fraction(4, 3)
        curve = symmetric_threshold_winning_polynomial(n, delta)
        stationarity = symmetric_threshold_stationarity(n, delta)
        for i in range(1, 10):
            beta = Fraction(i, 10)
            assert stationarity(beta) == curve.derivative()(beta)
