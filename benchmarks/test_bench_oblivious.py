"""E5 -- Theorem 4.3: the uniformity table for oblivious algorithms.

For n = 2 .. 8: verify the fair coin solves the optimality conditions
(zero gradient), is the symmetric optimum, and tabulate its winning
probability; also record discrepancy D1 (deterministic boundary splits
beat the fair coin).
"""

from fractions import Fraction

from conftest import record

from repro.core.optimality import oblivious_gradient
from repro.optimize.oblivious_opt import (
    boundary_split_value,
    solve_oblivious_optimum,
)

NS = (2, 3, 4, 5, 6, 7, 8)


def test_bench_uniformity_table(benchmark):
    def build():
        return [solve_oblivious_optimum(1, n) for n in NS]

    results = benchmark(build)
    for result in results:
        # Theorem 4.3: alpha* = 1/2 for every n (uniformity)
        assert result.alpha == Fraction(1, 2)
        # and it is a stationary point of the full asymmetric problem
        grad = oblivious_gradient(1, [Fraction(1, 2)] * result.n)
        assert all(g == 0 for g in grad)
        record(
            f"oblivious n={result.n}",
            alpha_star="1/2",
            p_star=f"{float(result.probability):.6f}",
        )

    # known anchors
    assert results[0].probability == Fraction(3, 4)  # n=2
    assert results[1].probability == Fraction(5, 12)  # n=3

    # the value decays monotonically at fixed capacity
    values = [r.probability for r in results]
    assert values == sorted(values, reverse=True)


def test_bench_boundary_discrepancy(benchmark):
    """Discrepancy D1: the deterministic split (an oblivious boundary
    profile) beats the fair coin for every n >= 2 at delta = 1."""

    def build():
        return {n: boundary_split_value(1, n) for n in NS}

    splits = benchmark(build)
    for n in NS:
        fair = solve_oblivious_optimum(1, n).probability
        assert splits[n] > fair
        record(
            f"split vs coin n={n}",
            split=f"{float(splits[n]):.6f}",
            fair_coin=f"{float(fair):.6f}",
        )
    assert splits[2] == 1
    assert splits[3] == Fraction(1, 2)
