"""Quickstart: the paper's problem in ten lines, then the headline results.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    DistributedSystem,
    MonteCarloEngine,
    SingleThresholdRule,
    exact_winning_probability,
    optimal_oblivious_winning_probability,
    optimal_symmetric_threshold,
)


def main() -> None:
    # Three players, two bins of capacity 1, no communication.
    # Each player drops its uniform input into bin 0 when it is small
    # (below a threshold) and into bin 1 otherwise.
    beta = Fraction(62, 100)
    algorithms = [SingleThresholdRule(beta) for _ in range(3)]

    # Exact winning probability (Theorem 5.1):
    exact = exact_winning_probability(algorithms, capacity=1)
    print(f"P(win) with threshold {beta}: {float(exact):.6f} (exact: {exact})")

    # The same number from actually running the protocol 200k times:
    engine = MonteCarloEngine(seed=0)
    system = DistributedSystem(algorithms, capacity=1)
    summary = engine.estimate_winning_probability(system, trials=200_000)
    print(f"P(win) simulated:           {summary}")
    assert summary.covers(float(exact))

    # The optimal threshold (Section 5.2.1): beta* = 1 - sqrt(1/7)
    optimum = optimal_symmetric_threshold(3, 1)
    print(
        f"optimal threshold beta* = {float(optimum.beta):.6f}, "
        f"P* = {float(optimum.probability):.6f}"
    )

    # ... versus the best algorithm that never looks at its input
    # (Theorem 4.3: the fair coin):
    oblivious = optimal_oblivious_winning_probability(1, 3)
    print(
        f"optimal oblivious (fair coin) P* = {float(oblivious):.6f} "
        f"(= {oblivious})"
    )
    print(
        "value of looking at your own input: "
        f"+{float(optimum.probability - oblivious):.6f}"
    )


if __name__ == "__main__":
    main()
