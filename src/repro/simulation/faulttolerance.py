"""Fault tolerance for the sharded Monte Carlo executor.

At the trial counts needed to resolve tail probabilities near the
optimal threshold (10^7-10^9), a single crashed worker or one hung
shard must not discard hours of completed work.  This module supplies
the three ingredients the executor in
:mod:`repro.simulation.parallel` composes:

* **Retry policy** -- :class:`RetryPolicy` bounds how many times a
  failed shard is re-executed, with exponential backoff between
  attempts and an optional per-shard wall-clock timeout.  A retried
  shard replays the *same* named seed stream
  (``f"{stream}/shard-{i}"``), so the result is bit-identical to a
  run that never failed: the stream name, not the schedule, is the
  randomness.
* **Deterministic fault injection** -- :class:`FaultPlan` maps
  ``(stream, shard_index, attempt)`` keys to :class:`FaultSpec`
  actions.  Compute faults (crash, hang, slow, corrupt-result) fire
  inside the worker entry point before the trial loop; network faults
  (drop, delay, partition, dup) fire at the frame layer of the
  distributed transport (:mod:`repro.distributed`).  The plan is
  inert data threaded through both layers; it is only ever populated
  by tests and the CLI chaos mode, so every recovery path can be
  exercised reproducibly -- the same plan always fails the same
  attempt of the same shard.
* **Checkpoint/resume** -- completed shard outcomes stream to a JSONL
  checkpoint (:class:`CheckpointWriter`: append-then-``fsync``, one
  self-checksummed record per shard, a header pinning the root seed).
  :func:`load_checkpoint` returns the salvageable records for a run
  fingerprint (root seed, stream, shard plan, system digest), so a
  resumed run re-executes only missing or corrupt shards.

Nothing here touches a random stream: fault tolerance changes *when*
shards execute, never *what* they draw.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.fsutil import fsync_directory
from repro.observability.runmeta import run_header

__all__ = [
    "ALL_FAULT_KINDS",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointFingerprintError",
    "CheckpointRecord",
    "CheckpointWriter",
    "CorruptShardResultError",
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultToleranceConfig",
    "FaultToleranceError",
    "InjectedCrashError",
    "RetryPolicy",
    "ShardFailure",
    "ShardRetriesExhaustedError",
    "ShardTimeoutError",
    "backoff_jitter_unit",
    "load_checkpoint",
    "run_fingerprint",
    "system_digest",
]

CHECKPOINT_VERSION = 1

#: Compute-layer fault kinds: applied by the shard worker entry point
#: before the trial loop starts (serial, pool and remote paths alike).
FAULT_KINDS = ("crash", "hang", "slow", "corrupt")

#: Network-layer fault kinds: applied at the frame layer of the
#: distributed transport when a worker delivers a shard summary.
#: ``drop`` discards the summary frame (the lease expires and the
#: shard is reassigned), ``delay`` sleeps before sending, ``partition``
#: severs the connection mid-send (the worker reconnects), ``dup``
#: sends the summary twice (the coordinator must deduplicate).
NETWORK_FAULT_KINDS = ("drop", "delay", "partition", "dup")

#: Every fault kind a :class:`FaultPlan` accepts.
ALL_FAULT_KINDS = FAULT_KINDS + NETWORK_FAULT_KINDS


class FaultToleranceError(RuntimeError):
    """Base class for every failure the fault-tolerance layer raises."""


class InjectedCrashError(FaultToleranceError):
    """Raised inside a worker by a ``crash`` fault (chaos mode only)."""


class ShardTimeoutError(FaultToleranceError):
    """A shard exceeded the policy's per-shard wall-clock timeout."""


class CorruptShardResultError(FaultToleranceError):
    """A shard returned an impossible result (win count outside
    ``[0, trials]``); the parent rejects it and schedules a retry."""


class ShardRetriesExhaustedError(FaultToleranceError):
    """A shard failed more times than :attr:`RetryPolicy.max_retries`
    allows.  Carries enough context for callers to report which shard
    gave up, after how many attempts, and why."""

    def __init__(
        self, index: int, stream: str, attempts: int, last_error: str
    ):
        super().__init__(
            f"shard {index} (stream {stream!r}) failed {attempts} "
            f"attempt(s); last error: {last_error}"
        )
        self.index = index
        self.stream = stream
        self.attempts = attempts
        self.last_error = last_error


class CheckpointError(FaultToleranceError):
    """A checkpoint file could not be written or read."""


class CheckpointFingerprintError(CheckpointError):
    """A checkpoint belongs to a different run (root seed mismatch)."""


def backoff_jitter_unit(jitter_key: Tuple[Any, ...]) -> float:
    """A deterministic value in ``[0, 1)`` derived from *jitter_key*.

    The key's parts (typically stream name, shard index, attempt) are
    joined textually and hashed with SHA-256; the first 8 bytes become
    a uniform-looking fraction.  Pure arithmetic on the key -- no RNG
    object, no global state -- so retry scheduling stays exactly
    reproducible across runs, processes and machines.
    """
    text = "\x1f".join(str(part) for part in jitter_key)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to shard failures.

    ``max_retries`` bounds *re*-executions: a shard runs at most
    ``max_retries + 1`` times.  ``shard_timeout`` is a per-shard
    wall-clock limit in seconds, enforced only on the process-pool
    path (an in-process shard cannot be interrupted).  Backoff before
    retry ``k`` (0-based) is
    ``min(backoff_max, backoff_base * backoff_factor**k)`` seconds --
    the backoff only delays scheduling, it never touches a stream.

    When a *jitter key* is supplied to :meth:`backoff_seconds`, the
    delay is scaled down by a deterministic per-key fraction of up to
    ``backoff_jitter`` (SHA-256 of the key, no RNG state), so shards
    that fail simultaneously -- a killed worker drops every lease it
    held at once -- retry staggered instead of stampeding, while the
    same key always yields the same delay.  Jitter shapes *when* a
    retry runs, never *what* it draws, so replay stays bit-identical.
    """

    max_retries: int = 0
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if not 0 <= self.backoff_jitter <= 1:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got "
                f"{self.backoff_jitter}"
            )

    @property
    def max_attempts(self) -> int:
        """Total executions allowed per shard (first try + retries)."""
        return self.max_retries + 1

    def backoff_seconds(
        self,
        retry_index: int,
        jitter_key: Optional[Tuple[Any, ...]] = None,
    ) -> float:
        """Delay before retry *retry_index* (0-based), in seconds.

        Without *jitter_key* the delay is the exact exponential
        schedule (the historical behaviour).  With a key -- the
        executor passes ``(stream, shard, attempt)`` -- the delay is
        multiplied by a deterministic factor in
        ``[1 - backoff_jitter, 1]`` derived from SHA-256 of the key:
        distinct shards de-synchronise, while the same shard's same
        attempt always waits the same time (the replay guarantee
        extends to scheduling).
        """
        if retry_index < 0:
            raise ValueError(
                f"retry_index must be >= 0, got {retry_index}"
            )
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor**retry_index,
        )
        if jitter_key is not None and self.backoff_jitter > 0 and delay > 0:
            delay *= 1.0 - self.backoff_jitter * backoff_jitter_unit(
                jitter_key
            )
        return delay


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens and (for timed kinds) how long.

    Compute kinds fire in the shard worker: ``crash`` raises
    :class:`InjectedCrashError` before the shard consumes any
    randomness; ``hang`` and ``slow`` sleep *seconds* before running
    normally (a hang is just a sleep the caller's timeout or lease is
    expected to beat); ``corrupt`` returns an impossible win count
    (``trials + 1``) without running, which the parent's range check
    rejects.

    Network kinds fire at the distributed frame layer when the worker
    delivers its summary: ``drop`` discards the frame, ``delay``
    sleeps *seconds* before sending, ``partition`` severs the
    connection instead of sending, ``dup`` sends the frame twice.
    """

    kind: str
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{ALL_FAULT_KINDS}"
            )
        if self.seconds < 0:
            raise ValueError(
                f"seconds must be >= 0, got {self.seconds}"
            )

    @property
    def is_network(self) -> bool:
        """Whether this fault fires at the frame layer rather than in
        the shard worker."""
        return self.kind in NETWORK_FAULT_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Keys are ``(stream, shard_index, attempt)`` where *stream* is the
    executor's base stream name (``None`` matches any stream, which is
    what the CLI chaos mode uses).  The plan is plain picklable data:
    it crosses the process boundary with the task and is consulted by
    the worker entry point before the trial loop starts, so the same
    plan deterministically fails the same attempts everywhere --
    serial path included.
    """

    faults: Mapping[Tuple[Optional[str], int, int], FaultSpec] = field(
        default_factory=dict
    )

    def __post_init__(self):
        for key, spec in self.faults.items():
            stream, index, attempt = key
            if stream is not None and not isinstance(stream, str):
                raise ValueError(f"stream key must be str or None: {key!r}")
            if index < 0 or attempt < 0:
                raise ValueError(
                    f"shard index and attempt must be >= 0: {key!r}"
                )
            if not isinstance(spec, FaultSpec):
                raise ValueError(
                    f"fault for {key!r} must be a FaultSpec, got {spec!r}"
                )

    @classmethod
    def single(
        cls,
        kind: str,
        shard: int,
        attempt: int = 0,
        stream: Optional[str] = None,
        seconds: float = 0.0,
    ) -> "FaultPlan":
        """A plan with exactly one fault (the common test/chaos case)."""
        return cls(
            {(stream, shard, attempt): FaultSpec(kind, seconds=seconds)}
        )

    def lookup(
        self, stream: str, shard_index: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The fault to inject for this attempt, if any.  An exact
        stream match wins over the ``None`` wildcard."""
        spec = self.faults.get((stream, shard_index, attempt))
        if spec is None:
            spec = self.faults.get((None, shard_index, attempt))
        return spec

    def compute_fault(
        self, stream: str, shard_index: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The compute-layer fault for this attempt, if any.  Network
        kinds are invisible here: they target the transport, and the
        shard worker must run normally underneath them."""
        spec = self.lookup(stream, shard_index, attempt)
        if spec is not None and spec.is_network:
            return None
        return spec

    def network_fault(
        self, stream: str, shard_index: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The frame-layer fault for this attempt, if any.  Compute
        kinds are invisible here for the symmetric reason."""
        spec = self.lookup(stream, shard_index, attempt)
        if spec is not None and not spec.is_network:
            return None
        return spec

    def __len__(self) -> int:
        """Number of scheduled faults."""
        return len(self.faults)


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Everything the sharded executor needs to survive failures.

    *retry* governs re-execution; *fault_plan* (tests/chaos mode only)
    injects deterministic failures; *checkpoint_path* streams completed
    shard outcomes to a JSONL file; *resume* additionally loads that
    file first and re-executes only shards it does not already hold.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional[FaultPlan] = None
    checkpoint_path: Optional[Union[str, Path]] = None
    resume: bool = False

    def __post_init__(self):
        if self.resume and self.checkpoint_path is None:
            raise ValueError("resume=True requires a checkpoint_path")


@dataclass(frozen=True)
class ShardFailure:
    """One observed shard failure: which shard, which attempt, why.

    ``kind`` is one of ``"error"`` (the worker raised), ``"timeout"``
    (the shard exceeded the policy's wall-clock limit), ``"corrupt"``
    (the result failed the parent's range check), ``"pool"`` (the
    process pool died under the shard), ``"lease"`` (a distributed
    lease expired before the summary arrived), ``"disconnect"`` (the
    leasing worker's connection dropped), or ``"rejected"`` (a remote
    summary failed fingerprint validation).
    """

    index: int
    stream: str
    attempt: int
    kind: str
    message: str


# ---------------------------------------------------------------------------
# Run fingerprints
# ---------------------------------------------------------------------------


def system_digest(system: Any, inputs: Any = None) -> str:
    """A stable digest of the simulated system (and input distribution).

    Uses the pickle byte stream when the objects are picklable (they
    must be for the pool path anyway) and falls back to ``repr`` so the
    serial path can still fingerprint unpicklable systems.  The digest
    guards checkpoint reuse: a resumed run only salvages records whose
    fingerprint -- which includes this digest -- matches exactly.
    """
    try:
        payload = pickle.dumps((system, inputs), protocol=2)
    except Exception:
        payload = repr((system, inputs)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def run_fingerprint(
    root_seed: int,
    stream: str,
    plan: Sequence[int],
    digest: str,
    batch_size: int,
) -> str:
    """The identity of one sharded call, as stored on every checkpoint
    record: root seed, base stream, exact shard plan, system digest and
    batch size.  Two calls share a fingerprint iff their shard results
    are interchangeable bit for bit."""
    payload = json.dumps(
        {
            "root_seed": root_seed,
            "stream": stream,
            "plan": list(plan),
            "system": digest,
            "batch_size": batch_size,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Checkpoint file format
# ---------------------------------------------------------------------------


def _checksum(payload: Mapping[str, Any]) -> str:
    """First 16 hex chars of the SHA-256 of the canonical JSON form."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _sealed_line(payload: Dict[str, Any]) -> str:
    """One JSONL line: the payload plus its own checksum."""
    return (
        json.dumps(
            {**payload, "checksum": _checksum(payload)},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


def _open_line(text: str) -> Optional[Dict[str, Any]]:
    """Parse and verify one checkpoint line; ``None`` when the line is
    corrupt (bad JSON, missing checksum, or checksum mismatch)."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    stated = record.pop("checksum", None)
    if stated is None or _checksum(record) != stated:
        return None
    return record


@dataclass(frozen=True)
class CheckpointRecord:
    """One salvaged shard outcome as read back from a checkpoint."""

    index: int
    stream: str
    trials: int
    wins: int
    elapsed_seconds: Optional[float]
    attempt: int


class CheckpointWriter:
    """Streams completed shard outcomes to an append-only JSONL file.

    The first line is a header pinning the checkpoint version and the
    run's root seed; every further line is one shard record sealed
    with its own checksum.  Each ``append`` is written, flushed and
    ``fsync``-ed before returning, so a crash can lose at most the
    record being written -- and a torn final line is detected (and
    skipped) by the per-record checksum on load.  Reopening an
    existing checkpoint validates the header and keeps appending.
    """

    def __init__(self, path: Union[str, Path], root_seed: int):
        self._path = Path(path)
        self._root_seed = int(root_seed)
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            fresh = (
                not self._path.exists()
                or self._path.stat().st_size == 0
            )
            if not fresh:
                _read_header(self._path, self._root_seed)
            self._handle = self._path.open("a")
            if fresh:
                # the common run stamp (run id, UTC time, version,
                # argv) makes the checkpoint joinable with the metrics
                # / trace / event-log artifacts of the same run; the
                # resume path ignores it, so old checkpoints load fine
                self._write_line(
                    {
                        "type": "header",
                        "version": CHECKPOINT_VERSION,
                        "root_seed": self._root_seed,
                        "meta": run_header(),
                    }
                )
                # per-record fsync makes the *contents* durable; the
                # brand-new file's directory entry needs its own sync
                # or the whole checkpoint can vanish on power loss
                fsync_directory(self._path.parent)
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint {self._path}: {exc}"
            ) from exc

    @property
    def path(self) -> Path:
        """Where this writer appends."""
        return self._path

    def _write_line(self, payload: Dict[str, Any]) -> None:
        self._handle.write(_sealed_line(payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(
        self,
        fingerprint: str,
        index: int,
        stream: str,
        trials: int,
        wins: int,
        elapsed_seconds: Optional[float],
        attempt: int,
    ) -> None:
        """Durably record one completed shard."""
        try:
            self._write_line(
                {
                    "type": "shard",
                    "fingerprint": fingerprint,
                    "index": int(index),
                    "stream": stream,
                    "trials": int(trials),
                    "wins": int(wins),
                    "elapsed_seconds": elapsed_seconds,
                    "attempt": int(attempt),
                }
            )
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to checkpoint {self._path}: {exc}"
            ) from exc

    def close(self) -> None:
        """Close the underlying file handle."""
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        """Context-manager entry: the writer itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the file."""
        self.close()


def _read_header(path: Path, root_seed: int) -> None:
    """Validate an existing checkpoint's header against *root_seed*."""
    with path.open() as handle:
        first = handle.readline()
    header = _open_line(first)
    if (
        header is None
        or header.get("type") != "header"
        or header.get("version") != CHECKPOINT_VERSION
    ):
        raise CheckpointError(
            f"{path} is not a version-{CHECKPOINT_VERSION} checkpoint "
            "(header missing or corrupt)"
        )
    if header.get("root_seed") != root_seed:
        raise CheckpointFingerprintError(
            f"checkpoint {path} was written for root seed "
            f"{header.get('root_seed')}, not {root_seed}; refusing to "
            "resume a different run"
        )


@dataclass(frozen=True)
class Checkpoint:
    """Everything salvageable from one checkpoint file."""

    records: Tuple[CheckpointRecord, ...]
    fingerprints: Tuple[str, ...]
    corrupt_lines: int

    def outcomes(self, fingerprint: str) -> Dict[int, CheckpointRecord]:
        """The per-shard records matching *fingerprint*, by index.
        Later records win (a shard re-checkpointed after a resume
        supersedes its older record)."""
        matching: Dict[int, CheckpointRecord] = {}
        for record, fp in zip(self.records, self.fingerprints):
            if fp == fingerprint:
                matching[record.index] = record
        return matching


def load_checkpoint(
    path: Union[str, Path], root_seed: int
) -> Checkpoint:
    """Read a checkpoint, keeping every intact record.

    Corrupt lines -- torn writes, flipped bytes, truncation -- fail
    their checksum and are *skipped* (counted in ``corrupt_lines``),
    never fatal: the executor simply re-runs those shards.  A missing
    file or unreadable header raises :class:`CheckpointError`; a
    header written for a different root seed raises
    :class:`CheckpointFingerprintError`.
    """
    target = Path(path)
    try:
        with target.open() as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {target}: {exc}"
        ) from exc
    if not lines:
        raise CheckpointError(f"checkpoint {target} is empty")
    _read_header(target, root_seed)
    records = []
    fingerprints = []
    corrupt = 0
    for line in lines[1:]:
        if not line.strip():
            continue
        record = _open_line(line)
        if record is None or record.get("type") != "shard":
            corrupt += 1
            continue
        try:
            parsed = CheckpointRecord(
                index=int(record["index"]),
                stream=str(record["stream"]),
                trials=int(record["trials"]),
                wins=int(record["wins"]),
                elapsed_seconds=record.get("elapsed_seconds"),
                attempt=int(record.get("attempt", 0)),
            )
            fingerprint = str(record["fingerprint"])
        except (KeyError, TypeError, ValueError):
            corrupt += 1
            continue
        if not 0 <= parsed.wins <= parsed.trials:
            corrupt += 1
            continue
        records.append(parsed)
        fingerprints.append(fingerprint)
    return Checkpoint(
        records=tuple(records),
        fingerprints=tuple(fingerprints),
        corrupt_lines=corrupt,
    )
