"""Golden-record regression: exact values pinned across the package.

Every entry is an exact rational computed by the library at the time
the reproduction was validated (cross-checked against the paper and
Monte Carlo).  Any code change that shifts one of these is either a
bug or a deliberate semantic change that must update this file.
"""

from fractions import Fraction

import pytest

from repro.core.interval_rules import interval_rule_winning_probability
from repro.core.nonoblivious import (
    symmetric_threshold_winning_probability,
    threshold_winning_probability,
)
from repro.core.oblivious import (
    oblivious_winning_probability,
    optimal_oblivious_winning_probability,
)
from repro.core.phi import phi
from repro.geometry.volume import intersection_volume
from repro.model.algorithms import IntervalRule
from repro.probability.moments import (
    expected_overflow_single_bin,
    irwin_hall_moment,
)
from repro.probability.uniform_sums import (
    irwin_hall_cdf,
    irwin_hall_pdf,
    sum_uniform_cdf,
    sum_uniform_tail_cdf,
)

F = Fraction

IRWIN_HALL_CDF_GOLDEN = [
    # (t, m, value)
    (F(1, 2), 1, F(1, 2)),
    (F(1), 2, F(1, 2)),
    (F(1), 3, F(1, 6)),
    (F(4, 3), 3, F(61, 162)),
    (F(4, 3), 4, F(7, 54)),
    (F(3, 2), 3, F(1, 2)),
    (F(2), 4, F(1, 2)),
    (F(5, 2), 5, F(1, 2)),
    (F(2), 3, F(5, 6)),
    (F(5, 3), 5, F(593, 5832)),
]

WINNING_GOLDEN = [
    # (kind, args, value)
    ("coin", (F(1), (F(1, 2), F(1, 2))), F(3, 4)),
    ("coin", (F(1), (F(1, 2),) * 3), F(5, 12)),
    ("coin", (F(4, 3), (F(1, 2),) * 4), F(559, 1296)),
    ("coin", (F(1), (F(1, 3), F(1, 2), F(2, 3))), F(23, 54)),
    ("coin", (F(1), (F(1), F(0), F(1, 2))), F(1, 2)),
    ("threshold", (F(1), (F(1, 2),) * 3), F(23, 48)),
    ("threshold", (F(1), (F(2, 3),) * 2), F(5, 6)),
    ("threshold", (F(4, 3), (F(2, 3),) * 4), F(104, 243)),
    ("threshold", (F(1), (F(0), F(1), F(1, 2))), F(1, 2)),
]

SYMMETRIC_CURVE_GOLDEN = [
    # (beta, n, delta, value)
    (F(1, 4), 3, F(1), F(1, 6) + F(3, 2) * F(1, 16) - F(1, 2) * F(1, 64)),
    (F(3, 4), 3, F(1), F(-11, 6) + 9 * F(3, 4) - F(21, 2) * F(9, 16)
     + F(7, 2) * F(27, 64)),
    (F(1, 2), 4, F(4, 3), F(1001, 2592)),
]


class TestIrwinHallGolden:
    @pytest.mark.parametrize("t, m, expected", IRWIN_HALL_CDF_GOLDEN)
    def test_cdf(self, t, m, expected):
        assert irwin_hall_cdf(t, m) == expected

    def test_pdf_peak_values(self):
        assert irwin_hall_pdf(1, 2) == 1
        assert irwin_hall_pdf(F(3, 2), 3) == F(3, 4)

    def test_moments(self):
        assert irwin_hall_moment(1, 3) == F(3, 2)
        assert irwin_hall_moment(2, 3) == F(3, 12) + F(9, 4)
        assert irwin_hall_moment(3, 2) == F(3, 2)


class TestWinningGolden:
    @pytest.mark.parametrize("kind, args, expected", WINNING_GOLDEN)
    def test_values(self, kind, args, expected):
        t, params = args
        if kind == "coin":
            assert oblivious_winning_probability(t, list(params)) == expected
        else:
            assert threshold_winning_probability(t, list(params)) == expected

    def test_symmetric_curve_values(self):
        for beta, n, delta, expected in SYMMETRIC_CURVE_GOLDEN:
            if expected is None:
                continue
            assert symmetric_threshold_winning_probability(
                beta, n, delta
            ) == expected

    def test_optimal_oblivious_table(self):
        expected = {
            2: F(3, 4),
            3: F(5, 12),
            4: F(35, 192),
            5: F(21, 320),
        }
        assert optimal_oblivious_winning_probability(1, 2) == expected[2]
        assert optimal_oblivious_winning_probability(1, 3) == expected[3]
        assert optimal_oblivious_winning_probability(1, 4) == expected[4]
        assert optimal_oblivious_winning_probability(1, 5) == expected[5]


class TestPhiGolden:
    def test_n3_t1(self):
        assert [phi(1, k, 3) for k in range(4)] == [
            F(1, 6),
            F(1, 2),
            F(1, 2),
            F(1, 6),
        ]

    def test_n4_t43(self):
        assert phi(F(4, 3), 2, 4) == F(7, 9) * F(7, 9)


class TestGeometryGolden:
    def test_intersection_volumes(self):
        assert intersection_volume([1, 1], [F(3, 4), F(3, 4)]) == F(7, 16)
        assert intersection_volume([F(3, 2)] * 3, [1, 1, 1]) == F(1, 2)
        assert intersection_volume([2, 3], [1, 1]) == 1


class TestSumGolden:
    def test_mixed_interval_cdfs(self):
        assert sum_uniform_cdf(F(1, 2), [1, F(1, 2)]) == F(1, 4)
        assert sum_uniform_cdf(F(5, 4), [1, F(1, 2)]) == F(15, 16)
        assert sum_uniform_tail_cdf(F(3, 2), [F(1, 4), F(1, 2)]) == F(
            2, 3
        )

    def test_expected_overflow(self):
        assert expected_overflow_single_bin(1, [(0, 1), (0, 1)]) == F(1, 6)
        assert expected_overflow_single_bin(
            F(1, 2), [(0, 1)]
        ) == F(1, 8)


class TestIntervalRuleGolden:
    def test_sandwich_rule_value(self):
        rule = IntervalRule([F(1, 2), F(4, 5)], [0, 1, 0])
        value = interval_rule_winning_probability(1, [rule] * 3)
        # pinned at validation time (cross-checked by Monte Carlo)
        assert value == F(443, 1200)


class TestOptimaGolden:
    def test_paper_optima(self):
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        opt3 = optimal_symmetric_threshold(3, 1)
        assert float(opt3.beta) == pytest.approx(
            0.6220355269907727, abs=1e-12
        )
        assert float(opt3.probability) == pytest.approx(
            0.5446311396759346, abs=1e-10
        )
        opt4 = optimal_symmetric_threshold(4, F(4, 3))
        assert float(opt4.beta) == pytest.approx(
            0.6779978415565166, abs=1e-10
        )
        assert float(opt4.probability) == pytest.approx(
            0.4285394209985734, abs=1e-10
        )

    def test_mixture_optimum(self):
        from repro.core.randomized import best_symmetric_mixture_exact
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        beta = optimal_symmetric_threshold(4, F(4, 3)).beta
        p_star, value = best_symmetric_mixture_exact(4, F(4, 3), beta)
        assert float(p_star) == pytest.approx(0.549144, abs=1e-5)
        assert float(value) == pytest.approx(0.431966, abs=1e-5)
