"""E7 -- substrate validation and throughput benchmarks.

Proposition 2.2's volume formula and the Section 2.2 distribution
lemmas against Monte Carlo, plus raw throughput of the exact evaluators
and the simulation engine (the numbers that justify using the exact
path for figures and the vectorised path for validation).
"""

from fractions import Fraction

from conftest import record

from repro.geometry.montecarlo import estimate_simplex_box_volume
from repro.geometry.volume import intersection_volume
from repro.probability.uniform_sums import irwin_hall_cdf, sum_uniform_cdf


def test_bench_proposition_2_2_exact(benchmark):
    """Exact volume in dimension 10 (1024 subsets)."""
    sigma = [Fraction(3, 2)] * 10
    pi = [Fraction(k + 1, k + 2) for k in range(10)]
    volume = benchmark(lambda: intersection_volume(sigma, pi))
    assert 0 < volume < 1
    record("prop2.2 dim=10", volume=f"{float(volume):.8f}")


def test_bench_proposition_2_2_vs_monte_carlo(benchmark):
    sigma = [Fraction(3, 2), 1, 2, Fraction(1, 2)]
    pi = [1, 1, 1, 1]
    exact = float(intersection_volume(sigma, pi))

    def estimate():
        return estimate_simplex_box_volume(
            sigma, pi, samples=200_000, seed=17
        )

    est = benchmark.pedantic(estimate, rounds=1, iterations=1)
    assert est.covers(exact)
    record(
        "prop2.2 vs MC",
        exact=f"{exact:.6f}",
        estimate=f"{est.volume:.6f}",
        half_width=f"{est.half_width:.6f}",
    )


def test_bench_irwin_hall_throughput(benchmark):
    """Corollary 2.6 evaluation cost across m = 1 .. 30."""

    def sweep():
        return [
            irwin_hall_cdf(Fraction(m, 2), m) for m in range(1, 31)
        ]

    values = benchmark(sweep)
    # symmetry: F_m(m/2) = 1/2 exactly, for every m
    assert all(v == Fraction(1, 2) for v in values)


def test_bench_lemma_2_4_subset_enumeration(benchmark):
    """Lemma 2.4 with distinct sides (exponential path), m = 12."""
    uppers = [Fraction(k + 1, 12) for k in range(12)]
    t = sum(uppers) / 2
    value = benchmark(lambda: sum_uniform_cdf(t, uppers))
    # symmetry of the sum distribution about its mean
    assert value == Fraction(1, 2)


def test_bench_simulation_throughput(benchmark):
    """Vectorised Monte Carlo: 10^5 protocol executions."""
    from repro.model.algorithms import SingleThresholdRule
    from repro.model.system import DistributedSystem
    from repro.simulation.engine import MonteCarloEngine

    system = DistributedSystem(
        [SingleThresholdRule(Fraction(62, 100)) for _ in range(3)], 1
    )
    engine = MonteCarloEngine(seed=23)

    def run():
        return engine.estimate_winning_probability(system, trials=100_000)

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.trials == 100_000
    record("engine 1e5 trials", estimate=f"{summary.estimate:.5f}")


def test_bench_exact_theorem_5_1_per_player(benchmark):
    """Theorem 5.1 with distinct thresholds, n = 8 (the 4^n path)."""
    from repro.core.nonoblivious import threshold_winning_probability

    thresholds = [Fraction(k + 1, 10) for k in range(8)]
    value = benchmark(
        lambda: threshold_winning_probability(Fraction(2), thresholds)
    )
    assert 0 < value < 1
    record("thm5.1 n=8 distinct", p=f"{float(value):.6f}")
