"""The run-telemetry event bus: one append-only JSONL stream per run.

PR 2 gave the pipeline point-in-time exports (``--metrics-out``,
``--trace-out``); PR 3 gave shards durable checkpoints.  What was
missing is the *stream*: one schema'd sequence of events unifying
shard progress, retry/fault events, cache and batch counters, and
periodic metrics snapshots -- the substrate the live dashboard renders
from, the run-history store persists, and the regression gate queries.

Design rules, inherited from the rest of the observability layer:

* **Observation only.**  Emitting an event never touches a random
  stream and never changes a result; with no bus attached,
  :meth:`Instrumentation.emit <repro.observability.Instrumentation>`
  is a single ``is None`` branch.
* **Sealed lines.**  Every line carries its own checksum (the
  checkpoint idiom of :mod:`repro.simulation.faulttolerance`), so a
  torn final line -- the expected failure mode of an interrupted run
  -- is detected and *skipped* by the reader, never fatal.
* **Exact reconstruction.**  Metrics snapshots are encoded with the
  registry's native integers (counts and nanosecond totals verbatim,
  bucket tallies as lists); :func:`reconstruct_metrics` returns a
  :class:`~repro.observability.metrics.MetricsSnapshot` equal to the
  one snapshotted at emit time, bit for bit, at any worker count.

Event vocabulary (``schema_version`` 1):

========== ==========================================================
type       payload
========== ==========================================================
run_start  the :func:`~repro.observability.runmeta.run_header` stamp
shard      one completed shard: index/trials/wins/attempt/recovered,
           elapsed_ns, completed/total, the owning stream
fault      one shard failure: kind/index/attempt/stream/message
point      one sweep grid point completed: label, index, total
batch      one batched evaluation: points/certified/fallbacks
worker     a remote worker joined or left: action (``connect`` /
           ``disconnect``), worker id, workers now connected
lease      one shard-lease transition: action (``grant`` / ``expire``
           / ``duplicate``), shard, attempt, worker
metrics    a cumulative snapshot (kind ``periodic`` or ``final``)
run_end    exit_code plus total elapsed_ns
========== ==========================================================

All timestamps are ``t_ns``: integer nanoseconds since the run
context's monotonic origin.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.observability.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    TimingStats,
)
from repro.observability.runmeta import RunContext, current_run, run_header

__all__ = [
    "EVENT_LOG_SCHEMA_VERSION",
    "EventBus",
    "EventLogRead",
    "EventSubscriber",
    "counter_samples_from_events",
    "read_events",
    "reconstruct_metrics",
    "snapshot_from_payload",
    "snapshot_to_payload",
]

EVENT_LOG_SCHEMA_VERSION = 1

#: An event consumer: called synchronously with each emitted event
#: dict.  Subscribers must not mutate the event.
EventSubscriber = Callable[[Dict[str, Any]], None]


def _checksum(payload: Mapping[str, Any]) -> str:
    """First 16 hex chars of the SHA-256 of the canonical JSON form."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _sealed_line(payload: Dict[str, Any]) -> str:
    """One JSONL line: the payload plus its own checksum."""
    return (
        json.dumps(
            {**payload, "checksum": _checksum(payload)},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


def _open_line(text: str) -> Optional[Dict[str, Any]]:
    """Parse and verify one event line; ``None`` when corrupt."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    stated = record.pop("checksum", None)
    if stated is None or _checksum(record) != stated:
        return None
    return record


# ---------------------------------------------------------------------------
# Exact snapshot codec
# ---------------------------------------------------------------------------


def snapshot_to_payload(snapshot: MetricsSnapshot) -> Dict[str, Any]:
    """A snapshot as JSON-ready dicts, losslessly.

    Counters and every timing field are the registry's own integers;
    gauges are floats, which JSON round-trips exactly (shortest-repr
    encoding both ways).
    """
    return {
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "timings": {
            name: {
                "count": stats.count,
                "total_ns": stats.total_ns,
                "min_ns": stats.min_ns,
                "max_ns": stats.max_ns,
                "bucket_bounds_ns": list(stats.bucket_bounds_ns),
                "bucket_counts": list(stats.bucket_counts),
            }
            for name, stats in snapshot.timings.items()
        },
    }


def snapshot_from_payload(payload: Mapping[str, Any]) -> MetricsSnapshot:
    """The inverse of :func:`snapshot_to_payload`, bit-exactly."""
    timings = {}
    for name, fields in payload.get("timings", {}).items():
        timings[name] = TimingStats(
            count=int(fields["count"]),
            total_ns=int(fields["total_ns"]),
            min_ns=(
                None if fields["min_ns"] is None else int(fields["min_ns"])
            ),
            max_ns=(
                None if fields["max_ns"] is None else int(fields["max_ns"])
            ),
            bucket_bounds_ns=tuple(
                int(bound) for bound in fields["bucket_bounds_ns"]
            ),
            bucket_counts=tuple(
                int(count) for count in fields["bucket_counts"]
            ),
        )
    return MetricsSnapshot(
        counters={
            name: int(value)
            for name, value in payload.get("counters", {}).items()
        },
        gauges={
            name: float(value)
            for name, value in payload.get("gauges", {}).items()
        },
        timings=timings,
    )


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------


class EventBus:
    """Collects one run's events; optionally persists them as JSONL.

    *path* (optional) is the append-only event log; without one the bus
    only fans out to subscribers (the dashboard-without-recording
    case).  *metrics* (optional) attaches a registry: after any
    non-metrics event, if *snapshot_interval_seconds* of run time have
    passed since the last snapshot, a cumulative ``metrics`` event is
    emitted automatically -- so long sweeps produce a rate-over-time
    series without any caller pumping explicitly.

    Writes are append + flush per event (an interrupted run loses at
    most its torn final line, which the reader's per-line checksum
    skips); ``close`` fsyncs before releasing the handle.  All emission
    is serialised behind one lock, so shard callbacks from any thread
    interleave safely.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        context: Optional[RunContext] = None,
        subscribers: Sequence[EventSubscriber] = (),
        metrics: Optional[MetricsRegistry] = None,
        snapshot_interval_seconds: float = 1.0,
    ):
        self._context = current_run() if context is None else context
        self._subscribers: List[EventSubscriber] = list(subscribers)
        self._metrics = metrics
        self._snapshot_interval_ns = max(
            0, int(snapshot_interval_seconds * 1e9)
        )
        self._last_snapshot_ns = 0
        self._lock = threading.RLock()
        self._closed = False
        self._events_emitted = 0
        self._path: Optional[Path] = None
        self._handle = None
        if path is not None:
            self._path = Path(path)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self._path.open("a")
        self.emit(
            "run_start",
            schema_version=EVENT_LOG_SCHEMA_VERSION,
            **run_header(self._context),
        )

    @property
    def path(self) -> Optional[Path]:
        """Where this bus appends (``None`` for an in-memory bus)."""
        return self._path

    @property
    def context(self) -> RunContext:
        """The run this bus belongs to."""
        return self._context

    @property
    def events_emitted(self) -> int:
        """How many events this bus has emitted so far."""
        return self._events_emitted

    def subscribe(self, subscriber: EventSubscriber) -> None:
        """Add a consumer; it sees every event emitted from now on."""
        with self._lock:
            self._subscribers.append(subscriber)

    def emit(self, event_type: str, **payload: Any) -> Dict[str, Any]:
        """Record one event; returns the event dict as written.

        The event is stamped with ``t_ns`` (integer nanoseconds since
        the run started), written to the log (if any), then handed to
        every subscriber in subscription order.  Subscriber exceptions
        propagate: a broken dashboard is a bug to surface, not hide.
        """
        with self._lock:
            if self._closed:
                return {}
            event = {
                "type": event_type,
                "t_ns": self._context.elapsed_ns(),
                **payload,
            }
            if self._handle is not None:
                self._handle.write(_sealed_line(event))
                self._handle.flush()
            self._events_emitted += 1
            for subscriber in list(self._subscribers):
                subscriber(event)
            if (
                self._metrics is not None
                and event_type not in ("metrics", "run_end")
                and event["t_ns"] - self._last_snapshot_ns
                >= self._snapshot_interval_ns
            ):
                self._emit_metrics_locked("periodic")
            return event

    def _emit_metrics_locked(self, kind: str) -> None:
        snapshot = self._metrics.snapshot()
        self._last_snapshot_ns = self._context.elapsed_ns()
        event = {
            "type": "metrics",
            "t_ns": self._last_snapshot_ns,
            "kind": kind,
            "snapshot": snapshot_to_payload(snapshot),
        }
        if self._handle is not None:
            self._handle.write(_sealed_line(event))
            self._handle.flush()
        self._events_emitted += 1
        for subscriber in list(self._subscribers):
            subscriber(event)

    def emit_metrics(self, kind: str = "periodic") -> None:
        """Emit a cumulative metrics snapshot now (no-op without an
        attached registry)."""
        with self._lock:
            if self._closed or self._metrics is None:
                return
            self._emit_metrics_locked(kind)

    def close(self, exit_code: Optional[int] = None) -> None:
        """Emit the final snapshot and ``run_end``, then seal the log.

        Idempotent; the final ``metrics`` event (kind ``"final"``) is
        what :func:`reconstruct_metrics` replays.
        """
        with self._lock:
            if self._closed:
                return
            if self._metrics is not None:
                self._emit_metrics_locked("final")
            event = {
                "type": "run_end",
                "t_ns": self._context.elapsed_ns(),
                "exit_code": exit_code,
                "events": self._events_emitted,
            }
            if self._handle is not None:
                self._handle.write(_sealed_line(event))
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
            self._events_emitted += 1
            for subscriber in list(self._subscribers):
                subscriber(event)
            self._closed = True

    def __enter__(self) -> "EventBus":
        """Context-manager entry: the bus itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the log cleanly."""
        self.close()

    def __repr__(self) -> str:
        target = "memory" if self._path is None else str(self._path)
        return (
            f"EventBus({target}, {self._events_emitted} events, "
            f"run {self._context.run_id})"
        )


# ---------------------------------------------------------------------------
# Reading the log back
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EventLogRead:
    """Everything salvageable from one event log."""

    events: Tuple[Dict[str, Any], ...]
    corrupt_lines: int

    @property
    def header(self) -> Optional[Dict[str, Any]]:
        """The ``run_start`` event, when intact."""
        for event in self.events:
            if event.get("type") == "run_start":
                return event
        return None

    def of_type(self, event_type: str) -> List[Dict[str, Any]]:
        """Every event of one type, in emission order."""
        return [e for e in self.events if e.get("type") == event_type]


def read_events(path: Union[str, Path]) -> EventLogRead:
    """Read an event log, keeping every intact line.

    Corrupt lines -- torn writes, flipped bytes, truncation -- fail
    their checksum and are skipped (counted in ``corrupt_lines``),
    never fatal: telemetry must degrade, not block.  A missing file
    raises ``OSError`` like any other read.
    """
    target = Path(path)
    events: List[Dict[str, Any]] = []
    corrupt = 0
    with target.open() as handle:
        for line in handle:
            if not line.strip():
                continue
            event = _open_line(line)
            if event is None or "type" not in event:
                corrupt += 1
                continue
            events.append(event)
    return EventLogRead(events=tuple(events), corrupt_lines=corrupt)


def reconstruct_metrics(
    source: Union[str, Path, EventLogRead],
) -> Optional[MetricsSnapshot]:
    """Replay an event log into its final :class:`MetricsSnapshot`.

    Returns the decoded snapshot of the last ``metrics`` event
    (``kind="final"`` when the run closed cleanly; the last periodic
    one when it did not), exactly equal to the registry snapshot taken
    at emit time -- the reconstruction the test-suite pins down bit
    for bit at every worker count.  ``None`` when the log carries no
    snapshot at all.
    """
    log = (
        source
        if isinstance(source, EventLogRead)
        else read_events(source)
    )
    snapshots = log.of_type("metrics")
    if not snapshots:
        return None
    return snapshot_from_payload(snapshots[-1]["snapshot"])


# ---------------------------------------------------------------------------
# Rate series (for Chrome counter events and sparklines)
# ---------------------------------------------------------------------------


def _counter(snapshot: Mapping[str, Any], *names: str) -> int:
    counters = snapshot.get("counters", {})
    return sum(int(counters.get(name, 0)) for name in names)


def counter_samples_from_events(
    events: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-snapshot rate samples from a run's ``metrics`` events.

    For each snapshot: instantaneous throughput (trials since the
    previous snapshot over the time between them), cumulative cache
    hit-rate (memory + disk tiers), and cumulative batch fallback-rate
    -- the three series :func:`~repro.observability.reporting.
    write_chrome_trace` renders as Chrome counter tracks.  Rates whose
    denominator is zero are reported as ``None`` and skipped by the
    renderers.
    """
    samples: List[Dict[str, Any]] = []
    previous_trials = 0
    previous_t_ns = 0
    for event in events:
        if event.get("type") != "metrics":
            continue
        snapshot = event.get("snapshot", {})
        t_ns = int(event.get("t_ns", 0))
        trials = _counter(snapshot, "shard.trials") or _counter(
            snapshot, "engine.trials"
        )
        delta_ns = t_ns - previous_t_ns
        throughput = (
            (trials - previous_trials) / (delta_ns / 1e9)
            if delta_ns > 0
            else None
        )
        cache_hits = _counter(snapshot, "cache.hits", "cache.disk_hits")
        cache_total = cache_hits + _counter(
            snapshot, "cache.misses", "cache.disk_misses"
        )
        batch_points = _counter(snapshot, "batch.points")
        samples.append(
            {
                "t_us": t_ns / 1e3,
                "trials_per_second": throughput,
                "cache_hit_rate": (
                    cache_hits / cache_total if cache_total else None
                ),
                "batch_fallback_rate": (
                    _counter(snapshot, "batch.fallbacks") / batch_points
                    if batch_points
                    else None
                ),
            }
        )
        previous_trials = trials
        previous_t_ns = t_ns
    return samples
