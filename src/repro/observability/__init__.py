"""Zero-dependency instrumentation for the simulation/optimization pipeline.

The subsystem answers "where does a run spend its time?" without
perturbing the run: metrics, spans and throughput are collected out of
band, never touch any random stream, and default to a shared no-op
instance whose every operation is a single branch -- simulation
results are bit-identical whether instrumentation is on, off, or
absent.

* :mod:`~repro.observability.metrics` -- thread-safe counters, gauges
  and timing histograms with exact (integer) snapshot/merge, so
  per-shard metrics cross the process boundary losslessly;
* :mod:`~repro.observability.tracing` -- hierarchical wall-clock spans
  exportable as JSON or Chrome trace events (Perfetto-loadable);
* :mod:`~repro.observability.progress` -- trials/sec throughput and
  the per-shard progress callback;
* :mod:`~repro.observability.reporting` -- the ``--profile`` text
  report, JSONL metrics export, and the Chrome trace writer.

Usage, scoped (preferred)::

    from repro.observability import use_instrumentation

    with use_instrumentation() as instr:
        engine.estimate_winning_probability(system, trials=10**6, workers=8)
    print(render_report(instr))

or explicit: pass ``instrumentation=`` to :class:`MonteCarloEngine` or
the sharded executor.  Library code resolves the instrument at call
time via :func:`get_instrumentation`, which returns the no-op
:data:`NULL_INSTRUMENTATION` unless a caller activated one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.observability.events import (
    EventBus,
    read_events,
    reconstruct_metrics,
)
from repro.observability.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    TimingStats,
    merge_snapshots,
)
from repro.observability.progress import (
    ProgressCallback,
    ShardProgress,
    ThroughputTracker,
    format_rate,
)
from repro.observability.reporting import (
    render_report,
    render_span_tree,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.observability.runmeta import (
    RunContext,
    current_run,
    new_run_context,
    run_header,
    set_current_run,
)
from repro.observability.tracing import Span, Tracer, traced

__all__ = [
    "EventBus",
    "Instrumentation",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_INSTRUMENTATION",
    "ProgressCallback",
    "RunContext",
    "ShardProgress",
    "Span",
    "ThroughputTracker",
    "TimingStats",
    "Tracer",
    "current_run",
    "format_rate",
    "get_instrumentation",
    "merge_snapshots",
    "new_run_context",
    "read_events",
    "reconstruct_metrics",
    "render_report",
    "render_span_tree",
    "run_header",
    "set_current_run",
    "set_instrumentation",
    "traced",
    "use_instrumentation",
    "write_chrome_trace",
    "write_metrics_jsonl",
]


class Instrumentation:
    """One run's telemetry: a metrics registry, a tracer, a throughput
    tracker, sharing a single enabled flag.

    The disabled instance (:data:`NULL_INSTRUMENTATION`) is what the
    library sees by default; all of its operations are no-ops, so
    instrumented hot paths cost one branch when observability is off.
    """

    __slots__ = ("_enabled", "metrics", "tracer", "throughput", "events")

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self.metrics = MetricsRegistry(enabled=self._enabled)
        self.tracer = Tracer(enabled=self._enabled)
        self.throughput = ThroughputTracker(enabled=self._enabled)
        #: Optional :class:`EventBus`: attach one to stream run events
        #: (shard completions, faults, periodic metrics snapshots) to
        #: the dashboard and/or the run-history store.  ``None`` keeps
        #: every ``emit`` call a single branch.
        self.events: Optional[EventBus] = None

    @property
    def enabled(self) -> bool:
        """Whether any component of this instrument records anything."""
        return self._enabled

    @classmethod
    def disabled(cls) -> "Instrumentation":
        """A fresh all-no-op instrument (rarely needed; prefer
        :data:`NULL_INSTRUMENTATION`)."""
        return cls(enabled=False)

    def span(self, name: str, **meta: Any):
        """Shorthand for ``self.tracer.span(name, **meta)``."""
        return self.tracer.span(name, **meta)

    def increment(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``self.metrics.increment(name, amount)``."""
        self.metrics.increment(name, amount)

    def observe(self, name: str, seconds: float) -> None:
        """Shorthand for ``self.metrics.observe(name, seconds)``."""
        self.metrics.observe(name, seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand for ``self.metrics.set_gauge(name, value)``."""
        self.metrics.set_gauge(name, value)

    def emit(self, event_type: str, **payload: Any) -> None:
        """Emit a run event onto the attached bus (no-op without one).

        This is the hook instrumented call sites use -- one attribute
        load and one ``is None`` branch when no bus is attached, so
        the disabled path stays within the observability overhead
        gate."""
        if self.events is not None:
            self.events.emit(event_type, **payload)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Instrumentation({state})"


#: The shared no-op instrument: what :func:`get_instrumentation`
#: returns while nothing is activated.
NULL_INSTRUMENTATION = Instrumentation(enabled=False)

_active: Instrumentation = NULL_INSTRUMENTATION


def get_instrumentation() -> Instrumentation:
    """The active instrument (the no-op singleton unless one was set).

    Library call sites resolve this lazily at call time, so turning
    instrumentation on never requires re-constructing engines.
    """
    return _active


def set_instrumentation(
    instrumentation: Optional[Instrumentation],
) -> Instrumentation:
    """Install *instrumentation* as the active instrument; returns the
    previous one so callers can restore it.  ``None`` resets to the
    no-op singleton.  Prefer :func:`use_instrumentation` for scoped
    activation."""
    global _active
    previous = _active
    _active = (
        NULL_INSTRUMENTATION if instrumentation is None else instrumentation
    )
    return previous


@contextmanager
def use_instrumentation(
    instrumentation: Optional[Instrumentation] = None,
) -> Iterator[Instrumentation]:
    """Activate an instrument for the duration of a ``with`` block.

    Creates a fresh enabled :class:`Instrumentation` when called with
    no argument; always restores the previously active instrument on
    exit, so nesting and test isolation work."""
    instrument = (
        Instrumentation() if instrumentation is None else instrumentation
    )
    previous = set_instrumentation(instrument)
    try:
        yield instrument
    finally:
        set_instrumentation(previous)
