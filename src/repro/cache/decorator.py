"""The ``@memoized_kernel`` decorator and the process-wide cache state.

A *kernel* here is a pure function of exact rational arguments -- the
closed forms of the paper (Lemmas 2.4-2.7, Proposition 2.2, Theorems
4.1/4.3/5.1) and the optimiser entry points built from them.  Every
figure and table is a sweep over such kernels, and sweeps revisit the
same arguments constantly (shared breakpoints, repeated ``(n, delta)``
pairs, the `repro check` grid), so memoization makes repeated sweeps
scale sub-linearly with grid size.

Policy, in order, per call:

1. caching disabled (globally or via :func:`bypass_cache`): call the
   kernel directly -- the cache must be impossible to distinguish from
   recomputation except by wall clock;
2. arguments that cannot be canonically keyed: call directly, count
   ``cache.uncacheable``;
3. memory tier (always on when caching is on);
4. disk tier (only when a cache directory is configured *and* the
   kernel was declared ``persist=True`` and its result encodes
   losslessly); a disk hit is promoted into memory;
5. compute, then populate both tiers.

The decorator never changes a computed value: hits return the same
immutable objects (``Fraction`` and friends) the kernel produced, and
the key bakes in a source-code fingerprint so a formula edit
invalidates every old entry (see :mod:`repro.cache.keys`).
"""

from __future__ import annotations

import functools
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.cache.codec import UnencodableValueError, encode_value
from repro.cache.disk import DiskCache
from repro.cache.keys import (
    UncacheableArgumentError,
    cache_key,
    kernel_fingerprint,
)
from repro.cache.lru import LRUCache
from repro.observability import get_instrumentation

__all__ = [
    "bypass_cache",
    "cache_enabled",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "memoized_kernel",
    "prune_disk_cache",
    "registered_kernels",
]

#: Default capacity of the in-memory tier; large enough for the
#: paper's densest grids, small enough that worst-case entries
#: (piecewise polynomials) stay a few megabytes.
DEFAULT_MAXSIZE = 4096

_UNSET = object()


class _CacheState:
    """The process-wide cache configuration behind one lock."""

    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_NO_CACHE", "") not in (
            "1",
            "true",
            "yes",
        )
        self.memory = LRUCache(DEFAULT_MAXSIZE)
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        env_max = os.environ.get("REPRO_CACHE_MAX_BYTES")
        self.disk_max_bytes: Optional[int] = (
            int(env_max) if env_max else None
        )
        self.disk: Optional[DiskCache] = (
            DiskCache(env_dir, max_bytes=self.disk_max_bytes)
            if env_dir
            else None
        )


_state = _CacheState()
_state_lock = threading.Lock()
_bypass = threading.local()

#: Labels of every decorated kernel, for stats and the warm command.
_registered: List[str] = []


def registered_kernels() -> List[str]:
    """Labels of all ``@memoized_kernel``-decorated functions."""
    return list(_registered)


def cache_enabled() -> bool:
    """Whether memoization is active for the *current thread*."""
    return _state.enabled and getattr(_bypass, "depth", 0) == 0


def configure_cache(
    enabled: Optional[bool] = None,
    directory: Union[str, Path, None, object] = _UNSET,
    maxsize: Optional[int] = None,
    max_bytes: Union[int, None, object] = _UNSET,
) -> None:
    """Reconfigure the process-wide cache.

    ``enabled=False`` turns every tier off (``repro --no-cache``);
    ``directory=PATH`` attaches the persistent tier
    (``repro --cache-dir``), ``directory=None`` detaches it; *maxsize*
    replaces the memory tier (dropping its entries); *max_bytes* caps
    the persistent tier's on-disk size with oldest-first eviction
    (``None`` lifts the cap; also honours REPRO_CACHE_MAX_BYTES).
    Omitted parameters keep their current setting.
    """
    with _state_lock:
        if enabled is not None:
            _state.enabled = bool(enabled)
        if max_bytes is not _UNSET:
            _state.disk_max_bytes = max_bytes
            if directory is _UNSET and _state.disk is not None:
                # re-cap the already-attached tier in place
                directory = _state.disk.directory
        if directory is not _UNSET:
            _state.disk = (
                None
                if directory is None
                else DiskCache(
                    directory, max_bytes=_state.disk_max_bytes
                )
            )
        if maxsize is not None:
            _state.memory = LRUCache(maxsize)


@contextmanager
def bypass_cache() -> Iterator[None]:
    """Scoped, thread-local bypass: inside the block every memoized
    kernel recomputes from scratch and neither reads nor writes any
    tier.

    This is how ``repro check`` stays an honest oracle: its analytic
    routes are evaluated fresh, so a cached value elsewhere in the
    process is *cross-validated against* a clean recomputation rather
    than compared with itself.
    """
    _bypass.depth = getattr(_bypass, "depth", 0) + 1
    try:
        yield
    finally:
        _bypass.depth -= 1


def clear_cache(include_disk: bool = True) -> Dict[str, int]:
    """Drop memory entries (and disk entries when *include_disk*).

    Returns ``{"memory": n, "disk": m}`` counts of removed entries.
    """
    removed = {"memory": _state.memory.clear(), "disk": 0}
    disk = _state.disk
    if include_disk and disk is not None:
        removed["disk"] = disk.clear()
    return removed


def prune_disk_cache(max_bytes: int) -> int:
    """Evict oldest-first until the persistent tier fits *max_bytes*.

    Returns how many entries were evicted; raises :class:`ValueError`
    when no persistent tier is attached (``repro cache prune`` turns
    that into a usage error).
    """
    disk = _state.disk
    if disk is None:
        raise ValueError("no persistent cache tier is configured")
    return disk.prune(max_bytes)


def cache_stats() -> Dict[str, Any]:
    """Point-in-time statistics of both tiers (for ``repro cache stats``)."""
    disk = _state.disk
    return {
        "enabled": _state.enabled,
        "kernels": len(_registered),
        "memory": _state.memory.stats(),
        "disk": None if disk is None else disk.stats(),
    }


def memoized_kernel(
    fn: Optional[Callable] = None,
    *,
    persist: bool = True,
    name: Optional[str] = None,
) -> Callable:
    """Memoize a pure exact kernel through the tiered cache.

    *persist* opts the kernel out of the disk tier -- used for kernels
    whose results (piecewise polynomials, optimiser records) are
    immutable but have no lossless JSON form; they still enjoy the
    memory tier.  *name* overrides the cache label (default:
    ``module.qualname``).
    """

    def decorate(kernel: Callable) -> Callable:
        label = name or f"{kernel.__module__}.{kernel.__qualname__}"
        fingerprint = kernel_fingerprint(kernel)
        _registered.append(label)

        @functools.wraps(kernel)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            state = _state
            if not state.enabled or getattr(_bypass, "depth", 0) > 0:
                return kernel(*args, **kwargs)
            try:
                key = cache_key(label, fingerprint, args, kwargs)
            except UncacheableArgumentError:
                get_instrumentation().increment("cache.uncacheable")
                return kernel(*args, **kwargs)
            found, value = state.memory.get(key)
            if found:
                return value
            disk = state.disk if persist else None
            if disk is not None:
                found, value = disk.get(key, fingerprint)
                if found:
                    state.memory.put(key, value)
                    return value
            value = kernel(*args, **kwargs)
            state.memory.put(key, value)
            if disk is not None:
                try:
                    payload = encode_value(value)
                except UnencodableValueError:
                    pass
                else:
                    disk.put(key, fingerprint, label, payload)
            return value

        wrapper.uncached = kernel
        wrapper.cache_label = label
        wrapper.cache_fingerprint = fingerprint
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
