"""A live terminal dashboard fed by the run's event bus.

The dashboard is an :class:`~repro.observability.events.EventBus`
subscriber: every telemetry event updates a small mutable
:class:`DashboardState`, and -- on a TTY -- the panel is redrawn in
place with ANSI cursor movement (``ESC [ n F`` to return to the top of
the previous frame, ``ESC [ J`` to clear it).  On anything that is not
a TTY (CI logs, pipes, ``2>file``) the same events degrade to plain,
append-only progress lines, so a captured log stays readable and no
control bytes land in it.

Rendering is a pure function of the state (:func:`render_dashboard`),
so the tests can drive it with synthetic events and assert on the text
without a terminal.  The dashboard never touches the computation: it
observes the same event stream the run log records, and a run with the
dashboard on is bit-identical to one with it off.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, TextIO

from repro.observability.progress import format_rate

__all__ = [
    "Dashboard",
    "DashboardState",
    "render_dashboard",
]


def _rate(numerator: int, denominator: int) -> Optional[float]:
    return numerator / denominator if denominator else None


@dataclass
class _StreamProgress:
    """One sharded estimate (one named seed stream) on the panel."""

    completed: int = 0
    total: int = 0
    trials: int = 0
    wins: int = 0
    attempts: int = 0
    recovered: bool = False

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 0.0


@dataclass
class DashboardState:
    """Everything the panel shows, folded from the event stream."""

    run_id: str = ""
    command: str = ""
    point_label: str = ""
    point_index: Optional[int] = None
    point_total: Optional[int] = None
    streams: Dict[str, _StreamProgress] = field(default_factory=dict)
    faults: int = 0
    last_fault: str = ""
    workers: int = 0
    peak_workers: int = 0
    leases_granted: int = 0
    lease_expiries: int = 0
    duplicate_summaries: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    requests: int = 0
    requests_shed: int = 0
    requests_degraded: int = 0
    serve_listening: str = ""
    serve_ready: bool = False
    serve_draining: bool = False
    last_t_ns: int = 0
    finished: bool = False
    exit_code: Optional[int] = None

    def apply(self, event: Mapping[str, Any]) -> None:
        """Fold one telemetry event into the state."""
        kind = event.get("type")
        self.last_t_ns = max(self.last_t_ns, int(event.get("t_ns", 0)))
        if kind == "run_start":
            self.run_id = str(event.get("run_id", ""))
            self.command = str(event.get("command", ""))
        elif kind == "point":
            self.point_label = str(event.get("label", ""))
            self.point_index = event.get("index")
            self.point_total = event.get("total")
        elif kind == "shard":
            stream = str(event.get("stream", ""))
            progress = self.streams.setdefault(stream, _StreamProgress())
            progress.completed = int(event.get("completed", 0))
            progress.total = int(event.get("total", 0))
            progress.trials = int(event.get("trials", 0))
            progress.wins = int(event.get("wins", 0))
            progress.attempts = max(
                progress.attempts, int(event.get("attempt", 0))
            )
            progress.recovered = progress.recovered or bool(
                event.get("recovered", False)
            )
        elif kind == "fault":
            self.faults += 1
            self.last_fault = (
                f"{event.get('kind', '?')} on shard "
                f"{event.get('index', '?')} "
                f"(attempt {event.get('attempt', '?')})"
            )
        elif kind == "worker":
            self.workers = int(event.get("workers", 0))
            self.peak_workers = max(self.peak_workers, self.workers)
        elif kind == "lease":
            action = event.get("action")
            if action == "grant":
                self.leases_granted += 1
            elif action == "expire":
                self.lease_expiries += 1
            elif action == "duplicate":
                self.duplicate_summaries += 1
        elif kind == "request":
            self.requests += 1
            if event.get("tier") == "shed":
                self.requests_shed += 1
            elif event.get("tier") == "degraded":
                self.requests_degraded += 1
        elif kind == "serve":
            action = event.get("action")
            if action == "listening":
                self.serve_listening = (
                    f"{event.get('host', '')}:{event.get('port', '')}"
                )
            elif action == "ready":
                self.serve_ready = True
            elif action == "draining":
                self.serve_draining = True
            elif action == "stopped":
                self.serve_ready = False
        elif kind == "metrics":
            snapshot = event.get("snapshot", {})
            counters = snapshot.get("counters", {})
            if isinstance(counters, dict):
                self.counters = dict(counters)
        elif kind == "run_end":
            self.finished = True
            self.exit_code = event.get("exit_code")

    # -- derived rates (None when the denominator never fired) --------

    @property
    def elapsed_seconds(self) -> float:
        return self.last_t_ns / 1e9

    @property
    def trials(self) -> int:
        return self.counters.get("shard.trials", 0) or self.counters.get(
            "engine.trials", 0
        )

    @property
    def throughput(self) -> Optional[float]:
        if self.last_t_ns <= 0 or not self.trials:
            return None
        return self.trials / self.elapsed_seconds

    @property
    def cache_hit_rate(self) -> Optional[float]:
        hits = self.counters.get("cache.hits", 0) + self.counters.get(
            "cache.disk_hits", 0
        )
        misses = self.counters.get("cache.misses", 0) + self.counters.get(
            "cache.disk_misses", 0
        )
        return _rate(hits, hits + misses)

    @property
    def batch_fallback_rate(self) -> Optional[float]:
        return _rate(
            self.counters.get("batch.fallbacks", 0),
            self.counters.get("batch.points", 0),
        )

    @property
    def retries(self) -> int:
        return self.counters.get("engine.shard_retries", 0)

    @property
    def salvaged(self) -> int:
        return self.counters.get("engine.shards_salvaged", 0)


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_fraction(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100:5.1f}%"


def render_dashboard(
    state: DashboardState, max_streams: int = 6
) -> List[str]:
    """The panel as a list of lines -- pure, terminal-free.

    The most recently updated *max_streams* streams get progress bars;
    older ones collapse into a single "+N more" line so the frame
    height stays bounded no matter how fine the sweep grid is.
    """
    header = f"repro {state.command or 'run'}"
    if state.run_id:
        header += f"  run {state.run_id}"
    if state.point_total:
        header += (
            f"  point {int(state.point_index or 0) + 1}"
            f"/{state.point_total}"
        )
        if state.point_label:
            header += f" ({state.point_label})"
    lines = [header]

    recent = list(state.streams.items())[-max_streams:]
    name_width = max((len(name) for name, _ in recent), default=0)
    for name, progress in recent:
        flags = ""
        if progress.recovered:
            flags += " R"
        lines.append(
            f"  {name:<{name_width}} {_bar(progress.fraction)} "
            f"{progress.completed:>3}/{progress.total} shards  "
            f"{progress.trials:>12,} trials{flags}"
        )
    hidden = len(state.streams) - len(recent)
    if hidden > 0:
        lines.append(f"  ... +{hidden} earlier stream(s)")

    lines.append(
        f"  throughput {format_rate(state.throughput):>14}   "
        f"trials {state.trials:>14,}   "
        f"elapsed {state.elapsed_seconds:>8.1f}s"
    )
    lines.append(
        f"  cache hit {_fmt_fraction(state.cache_hit_rate)}   "
        f"batch fallback {_fmt_fraction(state.batch_fallback_rate)}   "
        f"retries {state.retries}   salvaged {state.salvaged}"
    )
    if state.peak_workers or state.leases_granted:
        lines.append(
            f"  workers {state.workers} (peak {state.peak_workers})   "
            f"leases {state.leases_granted}   "
            f"expired {state.lease_expiries}   "
            f"dup {state.duplicate_summaries}"
        )
    if state.requests or state.serve_listening:
        status = (
            "draining"
            if state.serve_draining
            else ("ready" if state.serve_ready else "warming")
        )
        lines.append(
            f"  serve {state.serve_listening or '-'} [{status}]   "
            f"requests {state.requests}   "
            f"shed {state.requests_shed}   "
            f"degraded {state.requests_degraded}"
        )
    if state.faults:
        lines.append(
            f"  faults {state.faults}  (last: {state.last_fault})"
        )
    if state.finished:
        lines.append(
            f"  done  exit={state.exit_code}"
        )
    return lines


class Dashboard:
    """An EventBus subscriber that paints the live panel.

    On a TTY, frames overwrite each other in place (``\\x1b[{n}F`` then
    ``\\x1b[J``), throttled to *min_interval* seconds between redraws
    so a hot event stream cannot saturate the terminal; ``run_end``
    always forces a final frame.  On a non-TTY the panel degrades to
    plain one-line progress messages on point boundaries, faults and
    completion -- nothing ANSI, safe for CI logs.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interactive: Optional[bool] = None,
        min_interval: float = 0.2,
    ):
        self._stream = stream if stream is not None else sys.stderr
        if interactive is None:
            isatty = getattr(self._stream, "isatty", None)
            interactive = bool(isatty and isatty())
        self._interactive = interactive
        self._min_interval = min_interval
        self._last_draw = 0.0
        self._frame_height = 0
        self.state = DashboardState()

    @property
    def interactive(self) -> bool:
        """Whether the dashboard paints ANSI frames (vs plain lines)."""
        return self._interactive

    def __call__(self, event: Mapping[str, Any]) -> None:
        """The subscriber entry point: fold the event, maybe repaint."""
        self.state.apply(event)
        if self._interactive:
            now = time.monotonic()
            final = event.get("type") == "run_end"
            if not final and now - self._last_draw < self._min_interval:
                return
            self._last_draw = now
            self._redraw(final=final)
        else:
            line = self._plain_line(event)
            if line is not None:
                self._stream.write(line + "\n")
                self._stream.flush()

    def _redraw(self, final: bool = False) -> None:
        lines = render_dashboard(self.state)
        out = self._stream
        if self._frame_height:
            out.write(f"\x1b[{self._frame_height}F\x1b[J")
        out.write("\n".join(lines) + "\n")
        out.flush()
        self._frame_height = len(lines)
        if final:
            self._frame_height = 0

    def _plain_line(self, event: Mapping[str, Any]) -> Optional[str]:
        kind = event.get("type")
        state = self.state
        if kind == "run_start":
            return (
                f"[dashboard] run {state.run_id} "
                f"({state.command or 'run'}) started"
            )
        if kind == "point":
            total = event.get("total")
            return (
                f"[dashboard] point {int(event.get('index', 0)) + 1}"
                f"/{total} {event.get('label', '')}  "
                f"trials={state.trials:,}  "
                f"throughput={format_rate(state.throughput)}"
            )
        if kind == "worker":
            return (
                f"[dashboard] worker {event.get('worker', '?')} "
                f"{event.get('action', '?')}ed "
                f"({state.workers} connected)"
            )
        if kind == "serve":
            # one line per lifecycle edge; per-request events stay
            # silent so a long-lived server cannot flood a CI log
            action = event.get("action", "?")
            if action == "listening":
                return f"[dashboard] serve listening on {state.serve_listening}"
            if action == "ready":
                return (
                    f"[dashboard] serve ready "
                    f"({event.get('warmed', 0)} kernel(s) warmed)"
                )
            if action == "draining":
                return (
                    f"[dashboard] serve draining "
                    f"({event.get('inflight', 0)} in flight)"
                )
            if action == "stopped":
                return (
                    f"[dashboard] serve stopped  "
                    f"requests={state.requests}  "
                    f"shed={state.requests_shed}  "
                    f"degraded={state.requests_degraded}"
                )
            return None
        if kind == "fault":
            return f"[dashboard] fault: {state.last_fault}"
        if kind == "run_end":
            return (
                f"[dashboard] run {state.run_id} finished  "
                f"exit={state.exit_code}  trials={state.trials:,}  "
                f"elapsed={state.elapsed_seconds:.1f}s  "
                f"retries={state.retries}  "
                f"cache_hit={_fmt_fraction(state.cache_hit_rate)}"
            )
        return None
