"""Theorem 4.1 and Theorem 4.3: oblivious winning probabilities.

An oblivious algorithm is a probability vector ``alpha`` with
``alpha_i = P(y_i = 0)`` -- players never look at their inputs.
Theorem 4.1 expresses the winning probability as

``P_A(t) = sum_{b in {0,1}^n} phi_t(|b|) * prod_i P(y_i = b_i)``

Because ``phi_t`` depends on ``b`` only through ``|b|``, the ``2^n``
sum collapses to an expectation of ``phi_t`` under the
Poisson-binomial distribution of the number of ones -- an ``O(n^2)``
computation.  Both forms are implemented; the test-suite checks they
agree, and the enumerated form is the one that matches the paper's
statement symbol-for-symbol.

Theorem 4.3: the optimum is the uniform fair coin ``alpha_i = 1/2``,
for **every** n and t -- the paper's headline "oblivious algorithms are
uniform" result.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import List, Sequence

from repro.cache import memoized_kernel
from repro.core.phi import phi_table
from repro.errors import ValidationError
from repro.symbolic.rational import RationalLike, as_fraction, binomial
from repro.validation.contracts import (
    check_probability,
    check_symmetry,
    contracts_enabled,
)

__all__ = [
    "number_of_ones_distribution",
    "oblivious_winning_probability",
    "oblivious_winning_probability_enumerated",
    "optimal_oblivious_winning_probability",
    "symmetric_oblivious_winning_probability",
]


def _validated_probabilities(alphas: Sequence[RationalLike]) -> List[Fraction]:
    out = [as_fraction(a) for a in alphas]
    if not out:
        raise ValidationError("need at least one player")
    for i, a in enumerate(out):
        if not 0 <= a <= 1:
            raise ValidationError(
                f"alphas[{i}] must be a probability, got {a}"
            )
    return out


def number_of_ones_distribution(
    alphas: Sequence[RationalLike],
) -> List[Fraction]:
    """Poisson-binomial pmf of ``|b|`` when ``P(b_i = 0) = alphas[i]``.

    Returns ``[P(|b| = 0), ..., P(|b| = n)]`` computed by the standard
    O(n^2) convolution recurrence, exactly.
    """
    alpha = _validated_probabilities(alphas)
    pmf = [Fraction(1)]
    for a in alpha:
        p_one = 1 - a  # player contributes a one with probability 1 - alpha_i
        nxt = [Fraction(0)] * (len(pmf) + 1)
        for k, mass in enumerate(pmf):
            if mass == 0:
                continue
            nxt[k] += mass * a
            nxt[k + 1] += mass * p_one
        pmf = nxt
    return pmf


@memoized_kernel
def oblivious_winning_probability(
    t: RationalLike, alphas: Sequence[RationalLike]
) -> Fraction:
    """Theorem 4.1 via the Poisson-binomial collapse (exact, O(n^2)).

    ``P_A(t) = sum_k phi_t(k) * P(|b| = k)``
    """
    alpha = _validated_probabilities(alphas)
    n = len(alpha)
    phis = phi_table(t, n)
    pmf = number_of_ones_distribution(alpha)
    value = sum((phis[k] * pmf[k] for k in range(n + 1)), Fraction(0))
    if contracts_enabled():
        # Relabelling bins swaps alpha <-> 1 - alpha, which reverses the
        # Poisson-binomial pmf, so the mirrored value is free to compute.
        mirrored = sum(
            (phis[k] * pmf[n - k] for k in range(n + 1)), Fraction(0)
        )
        check_symmetry("oblivious_alpha_symmetry", value, mirrored)
    return check_probability("oblivious_winning_probability", value)


def oblivious_winning_probability_enumerated(
    t: RationalLike, alphas: Sequence[RationalLike]
) -> Fraction:
    """Theorem 4.1 exactly as stated: the full sum over ``{0, 1}^n``.

    Exponential in *n*; retained as the literal transcription of the
    paper for cross-validation of the fast path.
    """
    alpha = _validated_probabilities(alphas)
    n = len(alpha)
    phis = phi_table(t, n)
    total = Fraction(0)
    for bits in product((0, 1), repeat=n):
        weight = Fraction(1)
        for a, b in zip(alpha, bits):
            weight *= (1 - a) if b else a
            if weight == 0:
                break
        if weight == 0:
            continue
        total += phis[sum(bits)] * weight
    return check_probability("oblivious_winning_probability_enumerated", total)


@memoized_kernel
def symmetric_oblivious_winning_probability(
    t: RationalLike, n: int, alpha: RationalLike
) -> Fraction:
    """Winning probability when every player uses the same ``alpha``.

    ``P(t) = sum_k C(n, k) alpha^(n-k) (1-alpha)^k phi_t(k)``
    """
    a = as_fraction(alpha)
    if not 0 <= a <= 1:
        raise ValidationError(f"alpha must be a probability, got {a}")
    phis = phi_table(t, n)
    total = Fraction(0)
    for k in range(n + 1):
        total += binomial(n, k) * a ** (n - k) * (1 - a) ** k * phis[k]
    return check_probability("symmetric_oblivious_winning_probability", total)


@memoized_kernel
def optimal_oblivious_winning_probability(t: RationalLike, n: int) -> Fraction:
    """Theorem 4.3: the optimal oblivious value, at ``alpha = 1/2``.

    ``P*(t) = 2^-n sum_b phi_t(|b|) = 2^-n sum_k C(n, k) phi_t(k)``
    """
    phis = phi_table(t, n)
    total = sum(
        (binomial(n, k) * phis[k] for k in range(n + 1)), Fraction(0)
    )
    return check_probability(
        "optimal_oblivious_winning_probability", total / 2**n
    )
