"""Scalar/batch path-consistency: ``run()`` and ``run_batch()`` must
return identical verdicts, trial for trial.

The Monte Carlo engine's sharding correctness rests on the two
execution paths of :class:`DistributedSystem` being interchangeable.
That is only true if both paths make *bitwise* identical decisions --
including at the measure-zero boundaries (inputs pinned exactly at a
threshold or cut point, loads landing exactly on the capacity) where
an ulp of disagreement flips a verdict.

Regression anchor: ``run_batch`` used to derive the bin-0 load as
``total - load1`` (a float subtraction) while ``run`` summed the bin-0
inputs directly; for inputs like ``[0.1, 0.2, 0.3]`` the two spellings
differ by an ulp and disagreed with the scalar path exactly at
``load0 == capacity``.

Player counts stay in ``2..7`` throughout: numpy switches to pairwise
summation at 8 addends, which is a *different* (and here irrelevant)
source of scalar/batch divergence; the fix under test is about which
inputs are summed, not the association order.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.algorithms import (
    CallableRule,
    IntervalRule,
    ObliviousCoin,
    SingleThresholdRule,
)
from repro.model.system import DistributedSystem

unit_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def scalar_verdicts(
    system: DistributedSystem, inputs: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    return np.array(
        [system.run(row, rng).won for row in inputs], dtype=bool
    )


def assert_paths_agree(system: DistributedSystem, inputs: np.ndarray):
    """Deterministic rules: verdicts must match for any generators."""
    scalar = scalar_verdicts(system, inputs, np.random.default_rng(0))
    batch = system.run_batch(inputs, np.random.default_rng(0))
    assert batch.tolist() == scalar.tolist()


class TestDeterministicFamilies:
    def test_regression_bin0_summed_directly(self):
        """The ulp case: 0.1 + 0.3 == 0.4 exactly, but
        (0.1 + 0.2 + 0.3) - 0.2 == 0.4000000000000001 > capacity."""
        rule = IntervalRule(
            [Fraction(3, 20), Fraction(1, 4)], [0, 1, 0]
        )  # 0.1 -> bin 0, 0.2 -> bin 1, 0.3 -> bin 0
        system = DistributedSystem([rule] * 3, capacity=Fraction(2, 5))
        inputs = np.array([[0.1, 0.2, 0.3]])
        outcome = system.run(inputs[0], np.random.default_rng(0))
        assert outcome.outputs == (0, 1, 0)
        assert outcome.won  # 0.1 + 0.3 == 0.4 <= 0.4
        batch = system.run_batch(inputs, np.random.default_rng(0))
        assert batch.tolist() == [True]

    def test_single_threshold_inputs_pinned_at_threshold(self):
        threshold = Fraction(1, 2)
        system = DistributedSystem(
            [SingleThresholdRule(threshold)] * 2, capacity=1
        )
        # Rows hit the threshold exactly, straddle it by one ulp, and
        # land the bin-0 load exactly on the capacity (0.5 + 0.5 == 1).
        half = float(threshold)
        inputs = np.array(
            [
                [half, half],
                [np.nextafter(half, 0.0), np.nextafter(half, 1.0)],
                [half, np.nextafter(half, 1.0)],
                [0.0, 1.0],
                [1.0, 1.0],
            ]
        )
        assert_paths_agree(system, inputs)

    def test_interval_rule_inputs_pinned_at_cuts(self):
        cuts = [Fraction(1, 4), Fraction(3, 4)]
        rule = IntervalRule(cuts, [0, 1, 0])
        system = DistributedSystem([rule] * 3, capacity=Fraction(3, 2))
        pins = [float(c) for c in cuts]
        rows = [
            [pins[0], pins[1], 0.5],
            [np.nextafter(pins[0], 1.0), pins[1], pins[0]],
            [pins[1], np.nextafter(pins[1], 1.0), 1.0],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
        ]
        assert_paths_agree(system, np.array(rows))

    def test_callable_rule_uses_default_batch_loop(self):
        # CallableRule has no decide_batch override, so this exercises
        # the DecisionAlgorithm default loop against the scalar path.
        rule = CallableRule(lambda x: 1 if x == 0.2 else 0, name="eq")
        system = DistributedSystem([rule] * 3, capacity=Fraction(2, 5))
        inputs = np.array([[0.1, 0.2, 0.3], [0.2, 0.2, 0.2]])
        assert_paths_agree(system, inputs)

    def test_mixed_rule_families_per_player(self):
        system = DistributedSystem(
            [
                SingleThresholdRule(Fraction(1, 3)),
                IntervalRule([Fraction(1, 2)], [1, 0]),
                CallableRule(lambda x: 0 if x < 0.9 else 1, name="hi"),
            ],
            capacity=1,
        )
        rng = np.random.default_rng(7)
        inputs = rng.random((64, 3))
        inputs[0] = [1 / 3, 0.5, 0.9]  # pin every rule's boundary
        assert_paths_agree(system, inputs)


class TestObliviousCoin:
    @pytest.mark.parametrize("alpha", [0, 1])
    def test_degenerate_coins_agree_trial_for_trial(self, alpha):
        # alpha in {0, 1} makes the coin deterministic, so the two
        # paths' different draw orders cannot matter.
        system = DistributedSystem(
            [ObliviousCoin(alpha)] * 4, capacity=Fraction(4, 3)
        )
        inputs = np.random.default_rng(3).random((32, 4))
        assert_paths_agree(system, inputs)

    def test_single_player_seeded_streams_match(self):
        # With one player, run() draws rng.random() once per trial and
        # run_batch() draws rng.random(trials): the same stream in the
        # same order, so even the randomized verdicts must be equal.
        system = DistributedSystem(
            [ObliviousCoin(Fraction(1, 2))], capacity=Fraction(1, 2)
        )
        inputs = np.random.default_rng(5).random((50, 1))
        scalar = scalar_verdicts(system, inputs, np.random.default_rng(11))
        batch = system.run_batch(inputs, np.random.default_rng(11))
        assert batch.tolist() == scalar.tolist()

    def test_coin_mixed_with_thresholds_at_alpha_one(self):
        system = DistributedSystem(
            [
                ObliviousCoin(1),
                SingleThresholdRule(Fraction(1, 2)),
                ObliviousCoin(0),
            ],
            capacity=1,
        )
        inputs = np.random.default_rng(9).random((32, 3))
        inputs[0] = [0.5, 0.5, 0.5]
        assert_paths_agree(system, inputs)


@st.composite
def deterministic_systems(draw):
    """A system of 2..7 players, each with a deterministic local rule."""
    n = draw(st.integers(min_value=2, max_value=7))
    rules = []
    for _ in range(n):
        kind = draw(st.sampled_from(["threshold", "interval", "coin"]))
        if kind == "threshold":
            rules.append(
                SingleThresholdRule(
                    draw(
                        st.fractions(
                            min_value=0, max_value=1, max_denominator=16
                        )
                    )
                )
            )
        elif kind == "interval":
            cuts = sorted(
                draw(
                    st.sets(
                        st.fractions(
                            min_value="1/16",
                            max_value="15/16",
                            max_denominator=16,
                        ),
                        min_size=1,
                        max_size=3,
                    )
                )
            )
            outputs = draw(
                st.lists(
                    st.integers(min_value=0, max_value=1),
                    min_size=len(cuts) + 1,
                    max_size=len(cuts) + 1,
                )
            )
            rules.append(IntervalRule(cuts, outputs))
        else:
            rules.append(ObliviousCoin(draw(st.sampled_from([0, 1]))))
    capacity = draw(
        st.fractions(min_value="1/4", max_value=n, max_denominator=12)
    )
    return DistributedSystem(rules, capacity=capacity)


class TestPropertyAgreement:
    @settings(max_examples=80, deadline=None)
    @given(deterministic_systems(), st.data())
    def test_verdicts_identical_trial_for_trial(self, system, data):
        trials = data.draw(st.integers(min_value=1, max_value=12))
        rows = []
        # Candidate boundary values for this system: every threshold
        # and cut point (exactly representable or not), plus 0 and 1.
        pins = [0.0, 1.0]
        for alg in system.algorithms:
            if isinstance(alg, SingleThresholdRule):
                pins.append(float(alg.threshold))
            elif isinstance(alg, IntervalRule):
                pins.extend(float(c) for c in alg.cuts)
        for _ in range(trials):
            rows.append(
                [
                    data.draw(
                        st.one_of(unit_floats, st.sampled_from(pins))
                    )
                    for _ in range(system.n)
                ]
            )
        assert_paths_agree(system, np.array(rows))

    @settings(max_examples=40, deadline=None)
    @given(deterministic_systems())
    def test_loads_pinned_exactly_at_capacity(self, system):
        # Split the capacity into n dyadic shares so the float sums are
        # exact and the total lands exactly on the capacity boundary.
        n = system.n
        cap = system.capacity
        shares = [cap / 2] + [cap / 2 ** (i + 1) for i in range(1, n - 1)]
        shares.append(cap - sum(shares, Fraction(0)))
        floats = [float(s) for s in shares]
        if any(not 0 <= f <= 1 for f in floats):
            return  # capacity too large to pin inside the unit cube
        if any(Fraction(f) != s for f, s in zip(floats, shares)):
            return  # shares not exactly representable; nothing pinned
        assert_paths_agree(system, np.array([floats]))
