"""Tests for repro.core.randomized (the oblivious/non-oblivious continuum)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.nonoblivious import threshold_winning_probability
from repro.core.oblivious import oblivious_winning_probability
from repro.core.randomized import (
    RandomizedThresholdRule,
    best_symmetric_mixture,
    best_symmetric_mixture_exact,
    randomized_threshold_winning_probability,
    symmetric_mixture_polynomial,
    symmetric_mixture_winning_probability,
)


class TestRandomizedThresholdRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomizedThresholdRule(2, Fraction(1, 2))
        with pytest.raises(ValueError):
            RandomizedThresholdRule(Fraction(1, 2), 2)
        with pytest.raises(ValueError):
            RandomizedThresholdRule(
                Fraction(1, 2), Fraction(1, 2), alpha=-1
            )

    def test_p_one_is_pure_threshold(self, rng):
        rule = RandomizedThresholdRule(1, Fraction(1, 2))
        assert rule.decide(0.4, {}, rng) == 0
        assert rule.decide(0.6, {}, rng) == 1

    def test_p_zero_is_pure_coin(self, rng):
        rule = RandomizedThresholdRule(0, Fraction(1, 2), alpha=1)
        # coin with alpha = 1 always picks bin 0, input irrelevant
        assert rule.decide(0.99, {}, rng) == 0

    def test_probability_of_zero(self):
        rule = RandomizedThresholdRule(
            Fraction(1, 2), Fraction(1, 2), alpha=Fraction(1, 4)
        )
        # below the threshold: 1/2 * 1 + 1/2 * 1/4 = 5/8
        assert rule.probability_of_zero(0.3) == pytest.approx(5 / 8)
        # above: 1/2 * 0 + 1/2 * 1/4 = 1/8
        assert rule.probability_of_zero(0.7) == pytest.approx(1 / 8)

    def test_batch_statistics(self, rng):
        rule = RandomizedThresholdRule(
            Fraction(1, 2), Fraction(1, 2), alpha=Fraction(1, 2)
        )
        xs = np.full(40_000, 0.25)  # below threshold
        outs = rule.decide_batch(xs, rng)
        # P(0) = 1/2 + 1/2 * 1/2 = 3/4
        assert abs(float((outs == 0).mean()) - 0.75) < 3.89 * (
            0.75 * 0.25 / 40_000
        ) ** 0.5


class TestExactFormula:
    def test_p_one_reduces_to_theorem_5_1(self):
        beta = Fraction(3, 5)
        rules = [RandomizedThresholdRule(1, beta) for _ in range(3)]
        assert randomized_threshold_winning_probability(1, rules) == (
            threshold_winning_probability(1, [beta] * 3)
        )

    def test_p_zero_reduces_to_theorem_4_1(self):
        alpha = Fraction(2, 5)
        rules = [
            RandomizedThresholdRule(0, Fraction(1, 2), alpha=alpha)
            for _ in range(3)
        ]
        assert randomized_threshold_winning_probability(1, rules) == (
            oblivious_winning_probability(1, [alpha] * 3)
        )

    def test_symmetric_collapse_matches_general(self):
        p = Fraction(2, 5)
        beta = Fraction(3, 5)
        alpha = Fraction(1, 3)
        rules = [
            RandomizedThresholdRule(p, beta, alpha=alpha) for _ in range(3)
        ]
        assert randomized_threshold_winning_probability(1, rules) == (
            symmetric_mixture_winning_probability(p, beta, 3, 1, alpha)
        )

    def test_against_monte_carlo(self):
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        rules = [
            RandomizedThresholdRule(
                Fraction(1, 2), Fraction(678, 1000)
            )
            for _ in range(4)
        ]
        exact = randomized_threshold_winning_probability(
            Fraction(4, 3), rules
        )
        summary = MonteCarloEngine(seed=88).estimate_winning_probability(
            DistributedSystem(rules, Fraction(4, 3)), trials=150_000
        )
        assert summary.covers(float(exact))

    def test_validation(self):
        with pytest.raises(ValueError):
            randomized_threshold_winning_probability(1, [])
        with pytest.raises(ValueError):
            symmetric_mixture_winning_probability(2, Fraction(1, 2), 3, 1)
        with pytest.raises(ValueError):
            symmetric_mixture_winning_probability(
                Fraction(1, 2), Fraction(1, 2), 0, 1
            )


class TestMixturePolynomial:
    def test_matches_pointwise_evaluation(self):
        beta = Fraction(678, 1000)
        poly = symmetric_mixture_polynomial(beta, 4, Fraction(4, 3))
        for i in range(6):
            p = Fraction(i, 5)
            assert poly(p) == symmetric_mixture_winning_probability(
                p, beta, 4, Fraction(4, 3)
            )

    def test_degree_at_most_n(self):
        poly = symmetric_mixture_polynomial(Fraction(1, 2), 3, 1)
        assert poly.degree <= 3


class TestE8MixtureExperiment:
    """Extension experiment E8: mixing beats both pure families at the
    paper's n = 4, delta = 4/3 point (see EXPERIMENTS.md)."""

    def test_interior_mixture_beats_both_endpoints(self):
        from repro.optimize.threshold_opt import optimal_symmetric_threshold

        delta = Fraction(4, 3)
        beta = optimal_symmetric_threshold(4, delta).beta
        p_star, value = best_symmetric_mixture_exact(4, delta, beta)
        poly = symmetric_mixture_polynomial(beta, 4, delta)
        assert 0 < p_star < 1
        assert value > poly(0)  # beats the fair coin
        assert value > poly(1)  # beats the pure threshold
        assert abs(float(p_star) - 0.5491) < 1e-3

    def test_grid_search_agrees_with_exact(self):
        delta = Fraction(4, 3)
        beta = Fraction(678, 1000)
        p_grid, v_grid = best_symmetric_mixture(
            4, delta, beta, grid_size=21
        )
        p_exact, v_exact = best_symmetric_mixture_exact(4, delta, beta)
        assert v_grid <= v_exact
        assert abs(p_grid - p_exact) < Fraction(1, 10)

    def test_n3_case_prefers_pure_threshold(self):
        # at n = 3, delta = 1 the deterministic threshold is so much
        # better that no mixing helps: p* = 1
        from repro.optimize.threshold_opt import optimal_symmetric_threshold

        beta = optimal_symmetric_threshold(3, 1).beta
        p_star, value = best_symmetric_mixture_exact(3, 1, beta)
        assert p_star == 1

    def test_grid_size_validation(self):
        with pytest.raises(ValueError):
            best_symmetric_mixture(3, 1, Fraction(1, 2), grid_size=1)
