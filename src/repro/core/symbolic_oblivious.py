"""Theorem 4.1 as a symbolic object: the multilinear polynomial in alpha.

The oblivious winning probability is

``P(alpha) = sum_{b in {0,1}^n} phi_t(|b|) prod_i alpha_i^(b_i)``

-- a *multilinear* polynomial in the probability vector.  Building it
symbolically (rather than merely evaluating it) lets the reproduction
check the paper's structural lemmas as polynomial identities:

* **Corollary 4.2**: the optimality system is the vanishing gradient;
  each partial derivative is itself multilinear and is produced here
  exactly.
* **Lemma 4.5's exchange symmetry**: ``P`` is invariant under swapping
  any two variables, hence ``dP/dalpha_j - dP/dalpha_k`` vanishes on
  the diagonal ``alpha_j = alpha_k`` -- verified by exact substitution.
* **Theorem 4.3's stationarity**: the gradient is the zero vector at
  ``alpha = (1/2 .. 1/2)`` as a polynomial evaluation.

The construction is exponential in ``n`` (it enumerates ``{0,1}^n``),
matching the theorem statement; use the collapsed evaluators in
:mod:`repro.core.oblivious` for numbers.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import List

from repro.core.phi import phi_table
from repro.symbolic.multivariate import MultiPoly
from repro.symbolic.rational import RationalLike

__all__ = [
    "oblivious_winning_polynomial",
    "optimality_system",
    "exchange_difference",
]


def oblivious_winning_polynomial(t: RationalLike, n: int) -> MultiPoly:
    """The Theorem 4.1 polynomial ``P(alpha_1 .. alpha_n)``.

    The convention matches :mod:`repro.core.oblivious`:
    ``alpha_i = P(y_i = 0)``, so bit ``b_i = 1`` contributes the factor
    ``(1 - alpha_i)`` and bit 0 the factor ``alpha_i``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    phis = phi_table(t, n)
    total = MultiPoly.zero(n)
    for bits in product((0, 1), repeat=n):
        weight = MultiPoly.constant(n, phis[sum(bits)])
        for i, b in enumerate(bits):
            var = MultiPoly.variable(n, i)
            factor = (1 - var) if b else var
            weight = weight * factor
        total = total + weight
    return total


def optimality_system(t: RationalLike, n: int) -> List[MultiPoly]:
    """Corollary 4.2: the gradient polynomials, one per player.

    An optimal interior algorithm zeroes every entry simultaneously.
    """
    poly = oblivious_winning_polynomial(t, n)
    return [poly.partial(k) for k in range(n)]


def exchange_difference(t: RationalLike, n: int, j: int, k: int) -> MultiPoly:
    """``dP/dalpha_j - dP/dalpha_k`` -- the Lemma 4.5 object.

    The lemma's argument is that this difference vanishes whenever
    ``alpha_j = alpha_k`` (so stationary points can be taken
    symmetric).  The test-suite verifies the vanishing by exact
    substitution of a fresh variable for both coordinates.
    """
    if j == k:
        raise ValueError("need two distinct players")
    poly = oblivious_winning_polynomial(t, n)
    return poly.partial(j) - poly.partial(k)
