"""Batch-vs-exact agreement: the integrity check for the batch layer.

For a grid of ``(n, delta)`` cases this runner compiles the Theorem
5.1 threshold curve, evaluates a beta grid **that deliberately
includes every float breakpoint and its immediate float neighbours**
(the points where dispatch bugs live), and checks three properties per
point:

1. **scalar/batch bit-identity** -- the vectorised value equals the
   scalar :meth:`PiecewisePolynomial.evaluate_float` value bit-for-bit
   (same dispatch, same Horner);
2. **certified bound honesty** -- a certified value differs from the
   exact ``Fraction`` kernel at ``Fraction(x)`` by at most its
   reported error bound (plus one final rounding);
3. **fallback exactness** -- an uncertified point's recorded exact
   fallback equals an independent exact kernel evaluation.

``repro check --batch-grid N`` runs this and maps disagreement to the
integrity exit code (6), the same code the cross-validation oracle
uses; CI runs it on every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Sequence

import numpy as np

from repro.batch.tables import compiled_threshold_curve
from repro.observability import get_instrumentation
from repro.symbolic.rational import RationalLike, as_fraction
from repro.validation.fastpath import EPS

__all__ = ["AgreementReport", "agreement_grid", "run_batch_agreement"]


@dataclass
class AgreementReport:
    """Outcome of one batch-vs-exact agreement run."""

    cases: int = 0
    points: int = 0
    certified: int = 0
    fallbacks: int = 0
    max_certified_error: float = 0.0
    disagreements: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.cases > 0 and not self.disagreements

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.points if self.points else 0.0

    def render(self) -> str:
        lines = [
            "batch agreement: "
            f"{self.cases} cases, {self.points} points, "
            f"{self.certified} certified, {self.fallbacks} fallbacks "
            f"(rate {self.fallback_rate:.2%}), "
            f"max certified error {self.max_certified_error:.3e}",
        ]
        for text in self.disagreements[:20]:
            lines.append(f"  DISAGREEMENT: {text}")
        if len(self.disagreements) > 20:
            lines.append(
                f"  ... and {len(self.disagreements) - 20} more"
            )
        lines.append(
            "batch agreement PASSED"
            if self.passed
            else "batch agreement FAILED"
        )
        return "\n".join(lines)


def agreement_grid(
    compiled, grid_size: int
) -> np.ndarray:
    """A beta grid stressing dispatch: uniform points over the domain
    plus every float breakpoint and its adjacent float64 values."""
    lo = compiled.edges[0]
    hi = compiled.edges[-1]
    points = list(np.linspace(lo, hi, max(grid_size, 2)))
    for edge in compiled.edges:
        points.append(edge)
        before = np.nextafter(edge, -np.inf)
        after = np.nextafter(edge, np.inf)
        if before >= lo:
            points.append(before)
        if after <= hi:
            points.append(after)
    return np.unique(np.array(points, dtype=np.float64))


def run_batch_agreement(
    ns: Sequence[int],
    deltas: Sequence[RationalLike],
    grid_size: int = 256,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
) -> AgreementReport:
    """Check batch results against the scalar exact kernel everywhere
    (breakpoints included) for every ``(n, delta)`` case."""
    report = AgreementReport()
    instr = get_instrumentation()
    for n in ns:
        for delta in deltas:
            d = as_fraction(delta)
            with instr.span(
                "batch.agreement", n=n, delta=str(d)
            ):
                compiled = compiled_threshold_curve(n, d)
                curve = compiled.exact
                xs = agreement_grid(compiled, grid_size)
                result = compiled.evaluate_certified(
                    xs, rel_tol=rel_tol, abs_tol=abs_tol
                )
                raw = compiled.evaluate(xs)
                report.cases += 1
                report.points += result.points
                report.fallbacks += result.fallback_count
                report.certified += result.points - result.fallback_count
                for i, x in enumerate(xs):
                    scalar = curve.evaluate_float(float(x))
                    if scalar != raw[i]:
                        report.disagreements.append(
                            f"n={n} delta={d} beta={x!r}: scalar float "
                            f"{scalar!r} != batch {raw[i]!r}"
                        )
                        continue
                    exact = curve(Fraction(float(x)))
                    if result.certified[i]:
                        error = abs(result.values[i] - float(exact))
                        report.max_certified_error = max(
                            report.max_certified_error, error
                        )
                        allowance = result.error_bounds[i] + 4.0 * EPS * max(
                            1.0, abs(float(exact))
                        )
                        if error > allowance:
                            report.disagreements.append(
                                f"n={n} delta={d} beta={x!r}: certified "
                                f"value {result.values[i]!r} off exact "
                                f"{float(exact)!r} by {error:.3e} "
                                f"> bound {allowance:.3e}"
                            )
                    else:
                        recorded = result.exact_fallbacks.get(i)
                        if recorded != exact:
                            report.disagreements.append(
                                f"n={n} delta={d} beta={x!r}: fallback "
                                f"{recorded} != exact {exact}"
                            )
    return report
