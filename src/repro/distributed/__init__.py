"""Multi-node distributed execution of the sharded Monte Carlo engine.

The coordinator hands out **shard leases** -- (shard index, named seed
stream, trial count, lease deadline) -- from the same worker-count-
invariant shard plan the in-process executor uses; workers execute
shards with the identical worker entry point and stream sealed shard
summaries (plus exact :class:`MetricsSnapshot` deltas) back over a
length-prefixed, checksummed JSON frame protocol.  Because a shard's
result is a pure function of ``(root seed, stream name)``, every
recovery the protocol performs -- lease expiry and reassignment,
worker crashes, reconnects after partitions, duplicate or late
summaries, full degradation to local execution -- yields summaries
bit-identical to the serial engine.

Layout:

* :mod:`repro.distributed.protocol` -- the frame codec, message
  vocabulary and typed transport errors;
* :mod:`repro.distributed.coordinator` -- the lease-granting asyncio
  server and the synchronous
  :func:`~repro.distributed.coordinator.estimate_winning_probability_distributed`
  facade;
* :mod:`repro.distributed.worker` -- the connect/lease/execute/report
  loop (in-process task or ``repro work`` subprocess);
* :mod:`repro.distributed.chaos` -- deterministic network-fault
  injection at the frame layer, driven by the same
  :class:`~repro.simulation.faulttolerance.FaultPlan` the compute
  layer uses.
"""

from repro.distributed.coordinator import (
    DistributedConfig,
    estimate_winning_probability_distributed,
)
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosedError,
    CoordinatorUnreachableError,
    FrameError,
    HandshakeError,
    PayloadDigestError,
    ProtocolError,
)
from repro.distributed.worker import WorkerConfig, WorkerReport, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "ConnectionClosedError",
    "CoordinatorUnreachableError",
    "DistributedConfig",
    "FrameError",
    "HandshakeError",
    "PayloadDigestError",
    "ProtocolError",
    "WorkerConfig",
    "WorkerReport",
    "estimate_winning_probability_distributed",
    "run_worker",
]
