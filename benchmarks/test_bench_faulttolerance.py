"""Overhead and recovery cost of the fault-tolerant executor.

Two questions, answered with record lines:

1. What does the fault-tolerance machinery cost when nothing fails?
   The submit/wait loop with retry bookkeeping replaced a bare
   ``pool.map``; a clean run should pay (almost) nothing for the
   insurance.  Asserted: the default-config sharded run stays within
   ``OVERHEAD_FACTOR`` of itself with an explicit no-retry config --
   i.e. the config plumbing is free -- and checkpointing a clean run
   costs bounded extra wall-clock.
2. What does a recovery cost?  A run that survives one injected crash
   pays roughly one extra shard execution plus the backoff, never a
   from-scratch rerun.  Asserted: the chaotic run stays bit-identical
   and under ``RECOVERY_FACTOR`` times the clean wall-clock.

Both assertions are deliberately loose (CI machines are noisy); the
interesting numbers are in the record lines.
"""

from __future__ import annotations

import time
from fractions import Fraction

from conftest import record

from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.simulation.faulttolerance import (
    FaultPlan,
    FaultToleranceConfig,
    RetryPolicy,
)
from repro.simulation.parallel import estimate_winning_probability_sharded
from repro.simulation.rng import SeedSequenceFactory

TRIALS = 1_000_000
SHARDS = 8
OVERHEAD_FACTOR = 1.5
RECOVERY_FACTOR = 3.0


def vector_system(n: int = 3) -> DistributedSystem:
    return DistributedSystem(
        [SingleThresholdRule(Fraction(3, 5))] * n, 1
    )


def _timed(fault_tolerance=None, workers=2):
    start = time.perf_counter()
    estimate = estimate_winning_probability_sharded(
        vector_system(),
        TRIALS,
        SeedSequenceFactory(2024),
        shards=SHARDS,
        workers=workers,
        fault_tolerance=fault_tolerance,
    )
    return estimate, time.perf_counter() - start


def test_bench_clean_run_overhead(tmp_path):
    """Fault-tolerance plumbing on a failure-free run."""
    baseline, t_baseline = _timed()
    explicit, t_explicit = _timed(FaultToleranceConfig())
    checkpointed, t_checkpointed = _timed(
        FaultToleranceConfig(checkpoint_path=tmp_path / "ckpt.jsonl")
    )

    assert explicit.summary == baseline.summary
    assert checkpointed.summary == baseline.summary

    record(
        "faulttolerance clean-run overhead",
        baseline_s=f"{t_baseline:.3f}",
        explicit_config_s=f"{t_explicit:.3f}",
        checkpointed_s=f"{t_checkpointed:.3f}",
    )
    # the config object itself must cost nothing measurable
    assert t_explicit <= OVERHEAD_FACTOR * t_baseline + 0.5


def test_bench_crash_recovery_cost():
    """One injected crash + retry vs the clean run."""
    clean, t_clean = _timed()
    chaotic, t_chaotic = _timed(
        FaultToleranceConfig(
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
            fault_plan=FaultPlan.single("crash", shard=3),
        )
    )

    assert chaotic.summary == clean.summary
    assert chaotic.salvaged_shards == SHARDS - 1

    record(
        "faulttolerance crash recovery",
        clean_s=f"{t_clean:.3f}",
        with_crash_s=f"{t_chaotic:.3f}",
        retried_shards=chaotic.retried_shards,
        salvaged_shards=chaotic.salvaged_shards,
    )
    assert t_chaotic <= RECOVERY_FACTOR * t_clean + 1.0
