"""Tests for the generalised exact dispatch (all four families mixed)."""

from fractions import Fraction

import pytest

from repro.core.interval_rules import interval_rule_winning_probability
from repro.core.randomized import (
    RandomizedThresholdRule,
    randomized_threshold_winning_probability,
)
from repro.core.winning import exact_winning_probability
from repro.model.algorithms import (
    CallableRule,
    IntervalRule,
    ObliviousCoin,
    SingleThresholdRule,
)


class TestGeneralDispatch:
    def test_pure_interval_rules(self):
        rules = [IntervalRule([Fraction(1, 2), Fraction(4, 5)], [0, 1, 0])] * 3
        assert exact_winning_probability(rules, 1) == (
            interval_rule_winning_probability(1, rules)
        )

    def test_pure_randomized_thresholds(self):
        rules = [
            RandomizedThresholdRule(Fraction(1, 2), Fraction(3, 5))
            for _ in range(3)
        ]
        assert exact_winning_probability(rules, 1) == (
            randomized_threshold_winning_probability(1, rules)
        )

    def test_all_four_families_together_against_monte_carlo(self):
        from repro.model.system import DistributedSystem
        from repro.simulation.engine import MonteCarloEngine

        algs = [
            ObliviousCoin(Fraction(1, 3)),
            SingleThresholdRule(Fraction(3, 5)),
            IntervalRule([Fraction(1, 4), Fraction(3, 4)], [0, 1, 0]),
            RandomizedThresholdRule(
                Fraction(2, 3), Fraction(1, 2), alpha=Fraction(1, 4)
            ),
        ]
        exact = exact_winning_probability(algs, Fraction(4, 3))
        summary = MonteCarloEngine(seed=123).estimate_winning_probability(
            DistributedSystem(algs, Fraction(4, 3)), trials=200_000
        )
        assert summary.covers(float(exact))

    def test_reduces_to_specialised_paths(self):
        # interval + threshold mix must agree with converting the
        # threshold to an interval rule by hand
        from repro.core.interval_rules import (
            single_threshold_as_interval_rule,
        )

        mixed = [
            SingleThresholdRule(Fraction(2, 5)),
            IntervalRule([Fraction(1, 2)], [1, 0]),
        ]
        as_intervals = [
            single_threshold_as_interval_rule(Fraction(2, 5)),
            IntervalRule([Fraction(1, 2)], [1, 0]),
        ]
        assert exact_winning_probability(mixed, 1) == (
            interval_rule_winning_probability(1, as_intervals)
        )

    def test_degenerate_coin_branches_pruned(self):
        # alpha = 1 coin: a single branch; must equal the forced value
        algs = [
            ObliviousCoin(1),
            IntervalRule([Fraction(1, 2)], [0, 1]),
        ]
        value = exact_winning_probability(algs, 1)
        forced = [
            IntervalRule([], [0]),
            IntervalRule([Fraction(1, 2)], [0, 1]),
        ]
        assert value == interval_rule_winning_probability(1, forced)

    def test_callable_still_rejected(self):
        algs = [
            IntervalRule([Fraction(1, 2)], [0, 1]),
            CallableRule(lambda x: 0),
        ]
        with pytest.raises(NotImplementedError, match="CallableRule"):
            exact_winning_probability(algs, 1)

    def test_randomized_p1_equals_threshold(self):
        mixed = [
            RandomizedThresholdRule(1, Fraction(3, 5)),
            SingleThresholdRule(Fraction(3, 5)),
        ]
        pure = [SingleThresholdRule(Fraction(3, 5))] * 2
        assert exact_winning_probability(
            mixed, 1
        ) == exact_winning_probability(pure, 1)
