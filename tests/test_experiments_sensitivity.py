"""Tests for repro.experiments.sensitivity (capacity landscape)."""

from fractions import Fraction

import pytest

from repro.experiments.sensitivity import (
    find_improvement_crossover,
    improvement,
    sensitivity_curve,
)


class TestImprovement:
    def test_positive_at_paper_first_case(self):
        assert improvement(3, 1) > 0

    def test_negative_at_paper_second_case(self):
        assert improvement(4, Fraction(4, 3)) < 0

    def test_matches_components(self):
        from repro.core.oblivious import (
            optimal_oblivious_winning_probability,
        )
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        d = Fraction(3, 4)
        assert improvement(3, d) == (
            optimal_symmetric_threshold(3, d).probability
            - optimal_oblivious_winning_probability(d, 3)
        )


class TestSensitivityCurve:
    def test_structure(self):
        deltas = [Fraction(1, 2), 1, Fraction(3, 2)]
        points = sensitivity_curve(3, deltas)
        assert [p.delta for p in points] == [
            Fraction(1, 2),
            Fraction(1),
            Fraction(3, 2),
        ]
        for p in points:
            assert 0 <= p.threshold_value <= 1
            assert 0 <= p.coin_value <= 1
            assert p.improvement == p.threshold_value - p.coin_value

    def test_beta_star_moves_with_delta(self):
        points = sensitivity_curve(3, [Fraction(1, 2), 1, Fraction(3, 2)])
        betas = {p.beta_star for p in points}
        assert len(betas) == 3

    def test_both_values_increase_with_capacity(self):
        points = sensitivity_curve(
            4, [Fraction(1, 2), 1, Fraction(3, 2), 2]
        )
        thresholds = [p.threshold_value for p in points]
        coins = [p.coin_value for p in points]
        assert thresholds == sorted(thresholds)
        assert coins == sorted(coins)


class TestCrossover:
    def test_n4_crossover_location(self):
        """The D2 reversal begins just below delta = 4/3: the exact
        crossover for n = 4 sits at delta ~ 1.3231."""
        x = find_improvement_crossover(
            4, 1, Fraction(4, 3), Fraction(1, 10**4)
        )
        assert x is not None
        assert abs(float(x) - 1.3231) < 1e-3
        # sign pattern around it
        assert improvement(4, x - Fraction(1, 100)) > 0
        assert improvement(4, x + Fraction(1, 100)) < 0

    def test_n3_has_negative_window_near_3_2(self):
        """Even n = 3 has a capacity window where the coin wins."""
        assert improvement(3, Fraction(4, 3)) > 0
        assert improvement(3, Fraction(3, 2)) < 0
        assert improvement(3, Fraction(7, 4)) > 0
        enter = find_improvement_crossover(
            3, Fraction(4, 3), Fraction(3, 2), Fraction(1, 10**3)
        )
        leave = find_improvement_crossover(
            3, Fraction(3, 2), Fraction(7, 4), Fraction(1, 10**3)
        )
        assert enter is not None and leave is not None
        assert enter < Fraction(3, 2) < leave

    def test_no_crossing_returns_none(self):
        assert find_improvement_crossover(
            3, Fraction(1, 2), 1, Fraction(1, 10**2)
        ) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            find_improvement_crossover(3, 1, 1)
        with pytest.raises(ValueError):
            find_improvement_crossover(3, 1, 2, 0)
