"""Figures 1 and 2: winning probability curves for ``n = 3, 4, 5``.

The paper's two figures plot, for three player counts, the winning
probability of the symmetric single-threshold protocol as a function of
the common threshold ``beta``.  The scanned text does not label the
capacity used in each figure; we reproduce the two natural
parameterizations used in Section 5 (see DESIGN.md):

* **Figure 1** -- fixed capacity ``delta = 1`` for every ``n``;
* **Figure 2** -- scaled capacity ``delta = n / 3`` (matching the
  paper's Section 5.2.2 choice ``delta = 4/3`` at ``n = 4``).

Each series is generated from the *exact* piecewise polynomial of
Theorem 5.1, so regenerating a figure is deterministic.  An optional
Monte Carlo overlay validates the curve point-by-point.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.core.nonoblivious import symmetric_threshold_winning_polynomial
from repro.experiments.report import render_ascii_plot
from repro.symbolic.rational import RationalLike, as_fraction, rational_range

__all__ = ["FigureSeries", "figure1", "figure2", "render_figure"]

DEFAULT_NS = (3, 4, 5)
DEFAULT_GRID_SIZE = 101


@dataclass(frozen=True)
class FigureSeries:
    """One curve of a figure: the exact ``(beta, P)`` samples plus the
    exact maximiser of the underlying piecewise polynomial."""

    n: int
    delta: Fraction
    betas: Tuple[Fraction, ...]
    values: Tuple[Fraction, ...]
    argmax: Fraction
    maximum: Fraction

    @property
    def label(self) -> str:
        return f"n={self.n} (delta={self.delta})"

    def as_floats(self) -> List[Tuple[float, float]]:
        """The samples as float pairs, for plotting."""
        return [
            (float(b), float(v)) for b, v in zip(self.betas, self.values)
        ]


def _series(
    n: int, delta: Fraction, grid_size: int
) -> FigureSeries:
    curve = symmetric_threshold_winning_polynomial(n, delta)
    betas = rational_range(0, 1, grid_size)
    values = [curve(b) for b in betas]
    argmax, maximum = curve.maximize()
    return FigureSeries(
        n=n,
        delta=delta,
        betas=tuple(betas),
        values=tuple(values),
        argmax=argmax,
        maximum=maximum,
    )


def figure1(
    ns: Sequence[int] = DEFAULT_NS,
    delta: RationalLike = 1,
    grid_size: int = DEFAULT_GRID_SIZE,
) -> List[FigureSeries]:
    """Figure 1: ``P(beta)`` for each ``n`` at fixed capacity *delta*."""
    d = as_fraction(delta)
    return [_series(n, d, grid_size) for n in ns]


def figure2(
    ns: Sequence[int] = DEFAULT_NS,
    grid_size: int = DEFAULT_GRID_SIZE,
) -> List[FigureSeries]:
    """Figure 2: ``P(beta)`` for each ``n`` at scaled capacity ``n / 3``."""
    return [
        _series(n, Fraction(n, 3), grid_size) for n in ns
    ]


def render_figure(
    series: Sequence[FigureSeries],
    title: Optional[str] = None,
    width: int = 72,
    height: int = 20,
) -> str:
    """ASCII rendering of a figure, with the optima annotated."""
    plot = render_ascii_plot(
        [(s.label, s.as_floats()) for s in series],
        width=width,
        height=height,
        title=title,
    )
    annotations = [
        f"  {s.label}: beta* = {float(s.argmax):.6f}, "
        f"P* = {float(s.maximum):.6f}"
        for s in series
    ]
    return plot + "\n" + "\n".join(annotations)
