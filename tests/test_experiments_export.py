"""Tests for repro.experiments.export and the `repro export` command."""

import csv
import json
from fractions import Fraction
from pathlib import Path

from repro.experiments.export import (
    export_all,
    write_figure_csv,
    write_uniformity_csv,
)
from repro.experiments.figures import figure1
from repro.experiments.tables import uniformity_table


class TestFigureCsv:
    def test_rows_and_headers(self, tmp_path):
        path = tmp_path / "fig.csv"
        write_figure_csv(path, figure1(ns=[3], grid_size=5))
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["n", "delta", "beta", "winning_probability"]
        assert len(rows) == 6  # header + 5 samples
        assert rows[1][:3] == ["3", "1.0", "0.0"]
        assert float(rows[1][3]) == float(Fraction(1, 6))


class TestUniformityCsv:
    def test_rows(self, tmp_path):
        path = tmp_path / "uni.csv"
        write_uniformity_csv(
            path, uniformity_table(ns=(2, 3), delta_of_n=lambda n: 1)
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3
        n3 = rows[2]
        assert n3[0] == "3"
        assert float(n3[3]) == float(Fraction(5, 12))
        assert abs(float(n3[4]) - 0.62204) < 1e-4

    def test_alpha_star_is_derived_not_hardcoded(self, tmp_path):
        """The alpha_star column carries the *solved* oblivious
        optimiser from each case study (an earlier revision wrote a
        literal 0.5 regardless of the study's contents)."""
        from repro.experiments.tables import case_study

        studies = [case_study(3, 1), case_study(4, Fraction(4, 3))]
        path = tmp_path / "uni.csv"
        write_uniformity_csv(path, studies)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][2] == "alpha_star"
        for row, study in zip(rows[1:], studies):
            assert float(row[2]) == float(study.oblivious_alpha)
        # Theorem 4.3: the solved optimiser is the fair coin.
        assert all(float(r[2]) == 0.5 for r in rows[1:])


class TestExportAll:
    def test_writes_everything(self, tmp_path):
        manifest = export_all(
            tmp_path / "out",
            ns=(3,),
            grid_size=5,
            uniformity_ns=(2, 3),
        )
        out = Path(tmp_path / "out")
        for name in ("figure1.csv", "figure2.csv", "uniformity.csv",
                     "manifest.json"):
            assert (out / name).exists()
        with (out / "manifest.json").open() as handle:
            loaded = json.load(handle)
        assert loaded == manifest
        anchors = loaded["anchors"]
        assert abs(anchors["n3_delta1"]["beta_star"] - 0.62204) < 1e-4
        assert anchors["n4_delta_4_3"][
            "discrepancy_D2_oblivious_beats_threshold"
        ] is True

    def test_cli_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results"
        assert main(
            ["export", "--out", str(out), "--grid-size", "5"]
        ) == 0
        assert (out / "manifest.json").exists()
        assert "manifest.json" in capsys.readouterr().out
