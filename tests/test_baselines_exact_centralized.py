"""Tests for repro.baselines.exact_centralized."""

from fractions import Fraction

import numpy as np
import pytest

from repro.baselines.centralized import (
    best_possible_win,
    centralized_winning_probability,
)
from repro.baselines.exact_centralized import centralized_feasibility_exact


class TestSmallCases:
    def test_n1(self):
        assert centralized_feasibility_exact(1, Fraction(1, 2)) == (
            Fraction(1, 2)
        )
        assert centralized_feasibility_exact(1, 2) == 1

    def test_n2(self):
        assert centralized_feasibility_exact(2, Fraction(1, 2)) == (
            Fraction(1, 4)
        )
        assert centralized_feasibility_exact(2, 1) == 1
        assert centralized_feasibility_exact(2, 3) == 1

    def test_n3_delta1_closed_form(self):
        # hand integral: P = 3/4 exactly
        assert centralized_feasibility_exact(3, 1) == Fraction(3, 4)

    def test_degenerate_capacity(self):
        assert centralized_feasibility_exact(3, 0) == 0
        assert centralized_feasibility_exact(3, -1) == 0

    def test_saturation(self):
        # capacity 3 fits everything in one bin
        assert centralized_feasibility_exact(3, 3) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            centralized_feasibility_exact(0, 1)
        with pytest.raises(NotImplementedError):
            centralized_feasibility_exact(4, 1)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "delta", [Fraction(1, 2), Fraction(3, 4), 1, Fraction(4, 3), Fraction(3, 2)]
    )
    def test_n3_covered_by_sampling(self, delta):
        exact = float(centralized_feasibility_exact(3, delta))
        summary = centralized_winning_probability(
            3, delta, trials=60_000, seed=int(delta * 100)
        )
        assert summary.covers(exact)

    def test_n3_against_direct_enumeration(self, rng):
        delta = 1.0
        trials = 30_000
        wins = sum(
            best_possible_win(rng.random(3), delta) for _ in range(trials)
        )
        exact = float(centralized_feasibility_exact(3, 1))
        z_half_width = 3.89 * (0.25 / trials) ** 0.5
        assert abs(wins / trials - exact) < z_half_width + 1e-9


class TestDominanceOverProtocols:
    def test_bounds_every_exact_protocol_value(self):
        """The feasibility probability dominates the no-communication
        optima at every tested capacity -- the exact version of the
        information ordering."""
        from repro.core.oblivious import (
            optimal_oblivious_winning_probability,
        )
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        for delta in (Fraction(1, 2), 1, Fraction(4, 3), 2):
            bound = centralized_feasibility_exact(3, delta)
            assert bound >= optimal_symmetric_threshold(3, delta).probability
            assert bound >= optimal_oblivious_winning_probability(delta, 3)

    def test_monotone_in_capacity(self):
        values = [
            centralized_feasibility_exact(3, Fraction(i, 8))
            for i in range(1, 25)
        ]
        assert values == sorted(values)
