"""Thread-safe metrics: counters, gauges, and timing histograms.

The registry is the accumulation point for run telemetry.  Three
requirements shape it:

* **Exact aggregation.**  Per-shard metrics are collected inside worker
  processes, pickled back as :class:`MetricsSnapshot` objects, and
  merged into the parent registry.  Every merged quantity is an
  integer (counts, bucket tallies, and durations stored as whole
  nanoseconds), so merging is associative and bit-exact -- no
  float-summation-order effects, which the test-suite pins down by
  asserting ``merge(merge(a, b), c) == merge(a, merge(b, c))``.
* **Near-zero overhead when disabled.**  Every mutator starts with a
  single ``enabled`` check and returns immediately; a disabled
  registry never takes its lock or allocates.
* **Thread safety.**  All mutation and snapshotting happens under one
  lock, so the vectorised engine, progress callbacks, and any future
  threaded executor can share a registry.

Nothing here imports numpy or any other part of the package: the
observability layer sits below everything, like ``repro.symbolic``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKET_BOUNDS_NS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TimingStats",
    "merge_snapshots",
]

#: Histogram bucket upper bounds, in integer nanoseconds: decades from
#: 1 microsecond to 100 seconds (plus an implicit overflow bucket).
#: Integer bounds keep every merge exact.
DEFAULT_BUCKET_BOUNDS_NS: Tuple[int, ...] = tuple(
    10**exponent for exponent in range(3, 12)
)


@dataclass(frozen=True)
class TimingStats:
    """Aggregated timings of one named operation, in integer nanoseconds.

    ``bucket_counts`` has one entry per bound in ``bucket_bounds_ns``
    plus a final overflow bucket.  All fields are integers, so two
    stats merge exactly (sums for counts and totals, min/max for the
    extremes).
    """

    count: int = 0
    total_ns: int = 0
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None
    bucket_bounds_ns: Tuple[int, ...] = DEFAULT_BUCKET_BOUNDS_NS
    bucket_counts: Tuple[int, ...] = field(
        default_factory=lambda: (0,) * (len(DEFAULT_BUCKET_BOUNDS_NS) + 1)
    )

    @property
    def total_seconds(self) -> float:
        """Total observed duration in seconds."""
        return self.total_ns / 1e9

    @property
    def mean_seconds(self) -> float:
        """Mean observed duration in seconds (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total_ns / self.count / 1e9

    @property
    def min_seconds(self) -> float:
        """Smallest observed duration in seconds (0.0 when empty)."""
        return 0.0 if self.min_ns is None else self.min_ns / 1e9

    @property
    def max_seconds(self) -> float:
        """Largest observed duration in seconds (0.0 when empty)."""
        return 0.0 if self.max_ns is None else self.max_ns / 1e9

    def observe_ns(self, duration_ns: int) -> "TimingStats":
        """A new stats object with one more observation folded in."""
        if duration_ns < 0:
            raise ValueError(
                f"duration must be >= 0 ns, got {duration_ns}"
            )
        index = len(self.bucket_bounds_ns)
        for i, bound in enumerate(self.bucket_bounds_ns):
            if duration_ns <= bound:
                index = i
                break
        counts = list(self.bucket_counts)
        counts[index] += 1
        return TimingStats(
            count=self.count + 1,
            total_ns=self.total_ns + duration_ns,
            min_ns=(
                duration_ns
                if self.min_ns is None
                else min(self.min_ns, duration_ns)
            ),
            max_ns=(
                duration_ns
                if self.max_ns is None
                else max(self.max_ns, duration_ns)
            ),
            bucket_bounds_ns=self.bucket_bounds_ns,
            bucket_counts=tuple(counts),
        )

    def merge(self, other: "TimingStats") -> "TimingStats":
        """Exact, associative combination of two stats objects."""
        if self.bucket_bounds_ns != other.bucket_bounds_ns:
            raise ValueError(
                "cannot merge timing stats with different bucket bounds"
            )
        mins = [m for m in (self.min_ns, other.min_ns) if m is not None]
        maxs = [m for m in (self.max_ns, other.max_ns) if m is not None]
        return TimingStats(
            count=self.count + other.count,
            total_ns=self.total_ns + other.total_ns,
            min_ns=min(mins) if mins else None,
            max_ns=max(maxs) if maxs else None,
            bucket_bounds_ns=self.bucket_bounds_ns,
            bucket_counts=tuple(
                a + b
                for a, b in zip(self.bucket_counts, other.bucket_counts)
            ),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable, immutable copy of a registry's state.

    This is the unit that crosses the process boundary: a worker
    snapshots its local registry, the parent merges the snapshot into
    its own.  Because every payload is integral (gauges excepted --
    they are last-write-wins, not sums), merging snapshots in any
    grouping yields the same result.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    timings: Mapping[str, TimingStats] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters and timings add exactly,
        gauges take *other*'s value where both set one."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        timings = dict(self.timings)
        for name, stats in other.timings.items():
            existing = timings.get(name)
            timings[name] = (
                stats if existing is None else existing.merge(stats)
            )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, timings=timings
        )


def merge_snapshots(*snapshots: MetricsSnapshot) -> MetricsSnapshot:
    """Fold any number of snapshots into one (exact and associative)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


class MetricsRegistry:
    """Named counters, gauges and timing histograms behind one lock.

    A disabled registry (``enabled=False``) is a no-op: every mutator
    returns before touching the lock, so instrumented call sites cost
    one attribute load and one branch when observability is off.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timings: Dict[str, TimingStats] = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything at all."""
        return self._enabled

    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (created at zero on first use)."""
        if not self._enabled:
            return
        amount = int(amount)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration (in seconds) into histogram *name*."""
        if not self._enabled:
            return
        duration_ns = max(0, int(round(seconds * 1e9)))
        with self._lock:
            stats = self._timings.get(name, TimingStats())
            self._timings[name] = stats.observe_ns(duration_ns)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into histogram *name*."""
        if not self._enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def counter_value(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable, picklable copy of the current state."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                timings=dict(self._timings),
            )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot (e.g. from a worker process) into this
        registry, exactly."""
        if not self._enabled:
            return
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.gauges)
            for name, stats in snapshot.timings.items():
                existing = self._timings.get(name)
                self._timings[name] = (
                    stats if existing is None else existing.merge(stats)
                )

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        with self._lock:
            return (
                f"MetricsRegistry({state}, {len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._timings)} timings)"
            )
