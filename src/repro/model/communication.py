"""Communication patterns (Section 3.1 model, Section 6 outlook).

The paper's general model lets a player's algorithm depend on the
inputs of other players that are "known" to it; which inputs are known
is determined by a *communication pattern*.  The paper then settles the
pattern with **no** communication.  This module provides the pattern
abstraction so the framework matches the general model:

* :class:`NoCommunication` -- the paper's case: nobody sees anything.
* :class:`FullInformation` -- everybody sees everybody (the centralized
  baseline lives here: with full information the players can jointly
  implement optimal packing).
* :class:`GraphPattern` -- visibility along the edges of an arbitrary
  directed graph (a :mod:`networkx` ``DiGraph`` or an edge list), which
  covers the one-way/two-way three-player patterns of Papadimitriou and
  Yannakakis [11].

Patterns are static: who-sees-whom does not depend on the inputs.  That
matches the model in the paper, where the communication pattern is part
of the problem statement, not of the algorithm.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Tuple

import networkx as nx

__all__ = [
    "CommunicationPattern",
    "FullInformation",
    "GraphPattern",
    "NoCommunication",
]


class CommunicationPattern(ABC):
    """Determines, for each player, which other players' inputs it sees."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one player, got n={n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @abstractmethod
    def observed_by(self, player: int) -> FrozenSet[int]:
        """Indices of the players whose inputs *player* sees (excluding
        itself)."""

    def _check_player(self, player: int) -> None:
        if not 0 <= player < self._n:
            raise ValueError(
                f"player index {player} out of range for n={self._n}"
            )

    def is_silent(self) -> bool:
        """Whether no player observes anything (the paper's case)."""
        return all(not self.observed_by(i) for i in range(self._n))

    def total_messages(self) -> int:
        """Number of (sender, receiver) pairs -- the communication cost
        measure of [11]."""
        return sum(len(self.observed_by(i)) for i in range(self._n))

    def visibility_table(self) -> Dict[int, FrozenSet[int]]:
        """The full who-sees-whom map."""
        return {i: self.observed_by(i) for i in range(self._n)}


class NoCommunication(CommunicationPattern):
    """The paper's pattern: every player decides from its own input only."""

    def observed_by(self, player: int) -> FrozenSet[int]:
        self._check_player(player)
        return frozenset()

    def __repr__(self) -> str:
        return f"NoCommunication(n={self._n})"


class FullInformation(CommunicationPattern):
    """Every player sees every other player's input."""

    def observed_by(self, player: int) -> FrozenSet[int]:
        self._check_player(player)
        return frozenset(i for i in range(self._n) if i != player)

    def __repr__(self) -> str:
        return f"FullInformation(n={self._n})"


class GraphPattern(CommunicationPattern):
    """Visibility along a directed graph: edge ``u -> v`` means *v* sees
    ``x_u``.

    Accepts a :class:`networkx.DiGraph` whose nodes are the player
    indices ``0 .. n-1``, or any iterable of ``(sender, receiver)``
    pairs.  Self-loops are rejected (a player always sees its own input;
    encoding that as an edge would double-count).
    """

    def __init__(self, n: int, edges) -> None:
        super().__init__(n)
        if isinstance(edges, nx.DiGraph):
            edge_list: Iterable[Tuple[int, int]] = edges.edges()
        else:
            edge_list = edges
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for sender, receiver in edge_list:
            if not (0 <= sender < n and 0 <= receiver < n):
                raise ValueError(
                    f"edge ({sender}, {receiver}) out of range for n={n}"
                )
            if sender == receiver:
                raise ValueError(
                    f"self-loop ({sender}, {sender}) is not a message"
                )
            graph.add_edge(sender, receiver)
        self._graph = graph

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph.copy()

    def observed_by(self, player: int) -> FrozenSet[int]:
        self._check_player(player)
        return frozenset(self._graph.predecessors(player))

    @classmethod
    def chain(cls, n: int) -> "GraphPattern":
        """The one-way chain ``P1 -> P2 -> ... -> Pn`` of [11]."""
        return cls(n, [(i, i + 1) for i in range(n - 1)])

    @classmethod
    def star(cls, n: int, center: int = 0) -> "GraphPattern":
        """Everyone reports to *center* (who alone has full information)."""
        return cls(
            n, [(i, center) for i in range(n) if i != center]
        )

    def __repr__(self) -> str:
        return (
            f"GraphPattern(n={self._n}, "
            f"edges={sorted(self._graph.edges())})"
        )
