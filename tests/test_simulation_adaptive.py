"""Tests for repro.simulation.adaptive."""

from fractions import Fraction

import pytest

from repro.core.nonoblivious import threshold_winning_probability
from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.simulation.adaptive import estimate_until_precise
from repro.simulation.engine import MonteCarloEngine


def system():
    return DistributedSystem(
        [SingleThresholdRule(Fraction(62, 100))] * 3, 1
    )


class TestEstimateUntilPrecise:
    def test_reaches_target(self):
        result = estimate_until_precise(
            system(),
            half_width=0.01,
            engine=MonteCarloEngine(seed=10),
        )
        assert result.achieved
        assert result.summary.half_width <= 0.01

    def test_covers_exact_value(self):
        result = estimate_until_precise(
            system(),
            half_width=0.01,
            engine=MonteCarloEngine(seed=11),
        )
        exact = float(
            threshold_winning_probability(1, [Fraction(62, 100)] * 3)
        )
        assert result.summary.covers(exact)

    def test_tighter_target_needs_more_trials(self):
        loose = estimate_until_precise(
            system(), half_width=0.05, engine=MonteCarloEngine(seed=12)
        )
        tight = estimate_until_precise(
            system(), half_width=0.01, engine=MonteCarloEngine(seed=12)
        )
        assert tight.total_trials > loose.total_trials

    def test_budget_exhaustion(self):
        result = estimate_until_precise(
            system(),
            half_width=0.001,
            engine=MonteCarloEngine(seed=13),
            initial_trials=256,
            max_trials=2_000,
        )
        assert not result.achieved
        assert result.total_trials <= 2_000

    def test_stage_accounting(self):
        result = estimate_until_precise(
            system(),
            half_width=0.02,
            engine=MonteCarloEngine(seed=14),
            initial_trials=1_000,
        )
        assert sum(result.stages) == result.total_trials
        assert len(result.stages) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_until_precise(system(), half_width=0.0)
        with pytest.raises(ValueError):
            estimate_until_precise(system(), half_width=0.6)
        with pytest.raises(ValueError):
            estimate_until_precise(
                system(), half_width=0.01, growth=1.0
            )
        with pytest.raises(ValueError):
            estimate_until_precise(
                system(), half_width=0.01, initial_trials=0
            )

    def test_str(self):
        result = estimate_until_precise(
            system(), half_width=0.05, engine=MonteCarloEngine(seed=15)
        )
        assert "stages" in str(result)


class TestHalfWidthTrajectory:
    def test_one_half_width_per_stage(self):
        result = estimate_until_precise(
            system(),
            half_width=0.02,
            engine=MonteCarloEngine(seed=16),
            initial_trials=1_000,
        )
        assert len(result.half_widths) == len(result.stages)

    def test_final_half_width_matches_summary(self):
        result = estimate_until_precise(
            system(), half_width=0.02, engine=MonteCarloEngine(seed=17)
        )
        assert result.half_widths[-1] == pytest.approx(
            result.summary.half_width
        )

    def test_trajectory_shrinks(self):
        """Cumulative Wilson half-widths shrink as trials accumulate
        (strictly monotone: each stage adds trials to the pool)."""
        result = estimate_until_precise(
            system(),
            half_width=0.005,
            engine=MonteCarloEngine(seed=18),
            initial_trials=512,
        )
        assert len(result.half_widths) >= 2
        for earlier, later in zip(
            result.half_widths, result.half_widths[1:]
        ):
            assert later < earlier

    def test_trajectory_rendered_in_str(self):
        result = estimate_until_precise(
            system(),
            half_width=0.01,
            engine=MonteCarloEngine(seed=19),
            initial_trials=512,
        )
        text = str(result)
        assert "half-widths" in text
        assert "±" in text
