"""E4 -- Section 5.2.2: the worked case n = 4, delta = 4/3.

Regenerates the piecewise quartics, the cubic optimality condition
-(26/3) b^3 + (98/3) b^2 - (368/9) b + 416/27 (the paper's scanned
constant term carries a sign typo; see EXPERIMENTS.md), and the optimal
threshold ~ 0.678.  Also records the documented discrepancy D2: the
oblivious fair coin beats the best common threshold at this parameter
point.
"""

from fractions import Fraction

from conftest import record

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.symbolic.polynomial import Polynomial

DELTA = Fraction(4, 3)


def test_bench_case_n4_delta43(benchmark):
    opt = benchmark(
        lambda: optimal_symmetric_threshold(4, DELTA, Fraction(1, 10**15))
    )

    # the paper's reported optimum
    assert round(float(opt.beta), 3) == 0.678

    # the cubic optimality condition on the optimal piece
    assert opt.stationarity_polynomial == Polynomial(
        [
            Fraction(416, 27),
            Fraction(-368, 9),
            Fraction(98, 3),
            Fraction(-26, 3),
        ]
    )
    assert abs(opt.stationarity_polynomial(opt.beta)) < Fraction(1, 10**9)

    # every piece is a quartic over the breakpoint partition
    assert all(p.polynomial.degree <= 4 for p in opt.curve.pieces)
    assert opt.curve.lower == 0 and opt.curve.upper == 1

    oblivious = optimal_oblivious_winning_probability(DELTA, 4)
    assert oblivious == Fraction(559, 1296)

    record(
        "case n=4 delta=4/3",
        beta_star=f"{float(opt.beta):.7f} (paper: ~0.678)",
        p_star=f"{float(opt.probability):.7f}",
        oblivious=f"{float(oblivious):.7f} (= 559/1296)",
        discrepancy_D2=f"oblivious - threshold = "
        f"{float(oblivious - opt.probability):+.7f} (> 0)",
    )
    # discrepancy D2: the fair coin wins at this parameter point
    assert oblivious > opt.probability


def test_bench_case_n4_piece_count(benchmark):
    """Benchmark just the exact piecewise construction (the expensive
    symbolic step) and pin the breakpoint structure."""
    from repro.core.nonoblivious import (
        symmetric_threshold_breakpoints,
        symmetric_threshold_winning_polynomial,
    )

    curve = benchmark(
        lambda: symmetric_threshold_winning_polynomial(4, DELTA)
    )
    breakpoints = symmetric_threshold_breakpoints(4, DELTA)
    assert curve.breakpoints == breakpoints
    # delta/i for i = 2, 3, 4 -> 2/3, 4/9, 1/3; 1 - (k - delta)/i adds
    # 1/9, 1/6, 2/3, ... : at least these must be present
    for expected in (
        Fraction(1, 3),
        Fraction(4, 9),
        Fraction(2, 3),
        Fraction(1, 9),
        Fraction(1, 6),
    ):
        assert expected in breakpoints
