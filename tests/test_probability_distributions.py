"""Tests for repro.probability.distributions."""

from fractions import Fraction

import pytest

from repro.probability.distributions import SumOfUniforms, Uniform
from repro.probability.uniform_sums import irwin_hall_cdf, irwin_hall_pdf


class TestUniform:
    def test_validation(self):
        with pytest.raises(ValueError):
            Uniform(1, 1)
        with pytest.raises(ValueError):
            Uniform(2, 1)

    def test_cdf(self):
        u = Uniform(Fraction(1, 4), Fraction(3, 4))
        assert u.cdf(0) == 0
        assert u.cdf(Fraction(1, 4)) == 0
        assert u.cdf(Fraction(1, 2)) == Fraction(1, 2)
        assert u.cdf(1) == 1

    def test_pdf(self):
        u = Uniform(0, Fraction(1, 2))
        assert u.pdf(Fraction(1, 4)) == 2
        assert u.pdf(Fraction(3, 4)) == 0

    def test_moments(self):
        u = Uniform(0, 1)
        assert u.mean == Fraction(1, 2)
        assert u.variance == Fraction(1, 12)

    def test_conditioning(self):
        u = Uniform(0, 1)
        below = u.conditioned_below(Fraction(1, 3))
        assert (below.lower, below.upper) == (0, Fraction(1, 3))
        above = u.conditioned_above(Fraction(1, 3))
        assert (above.lower, above.upper) == (Fraction(1, 3), 1)

    def test_conditioning_validation(self):
        u = Uniform(0, 1)
        with pytest.raises(ValueError):
            u.conditioned_below(0)
        with pytest.raises(ValueError):
            u.conditioned_above(1)

    def test_sampling_within_support(self, rng):
        u = Uniform(Fraction(1, 4), Fraction(1, 2))
        draws = u.sample(rng, 1000)
        assert (draws >= 0.25).all() and (draws <= 0.5).all()


class TestSumOfUniforms:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SumOfUniforms([])

    def test_iid_unit_matches_irwin_hall(self):
        s = SumOfUniforms.iid_unit(3)
        for t in (Fraction(1, 2), 1, Fraction(3, 2), Fraction(5, 2)):
            assert s.cdf(t) == irwin_hall_cdf(t, 3)
            assert s.pdf(t) == irwin_hall_pdf(t, 3)

    def test_shift_reduction(self):
        # U[1/4, 3/4] + U[1/2, 1] == 3/4 + (U[0,1/2] + U[0,1/2])
        s = SumOfUniforms(
            [Uniform(Fraction(1, 4), Fraction(3, 4)), Uniform(Fraction(1, 2), 1)]
        )
        base = SumOfUniforms(
            [Uniform(0, Fraction(1, 2)), Uniform(0, Fraction(1, 2))]
        )
        t = Fraction(5, 4)
        assert s.cdf(t) == base.cdf(t - Fraction(3, 4))

    def test_support(self):
        s = SumOfUniforms(
            [Uniform(Fraction(1, 4), 1), Uniform(Fraction(1, 2), 1)]
        )
        assert s.support == (Fraction(3, 4), Fraction(2))
        assert s.cdf(Fraction(3, 4)) == 0
        assert s.cdf(2) == 1

    def test_pdf_outside_support(self):
        s = SumOfUniforms.iid_unit(2)
        assert s.pdf(0) == 0
        assert s.pdf(2) == 0

    def test_moments_add(self):
        s = SumOfUniforms([Uniform(0, 1), Uniform(0, Fraction(1, 2))])
        assert s.mean == Fraction(1, 2) + Fraction(1, 4)
        assert s.variance == Fraction(1, 12) + Fraction(1, 48)

    def test_count(self):
        assert SumOfUniforms.iid_unit(4).count == 4

    def test_sampling_matches_cdf(self, rng):
        s = SumOfUniforms(
            [Uniform(0, 1), Uniform(Fraction(1, 4), Fraction(1, 2))]
        )
        t = 0.9
        empirical = s.empirical_cdf(t, samples=50_000, seed=3)
        exact = float(s.cdf(Fraction(9, 10)))
        # z=3.89 normal interval on 50k samples
        assert abs(empirical - exact) < 3.89 * (0.25 / 50_000) ** 0.5 + 1e-9

    def test_lemma_2_7_agreement(self):
        # SumOfUniforms on [pi_i, 1] must agree with the direct
        # Lemma 2.7 implementation
        from repro.probability.uniform_sums import sum_uniform_tail_cdf

        lowers = [Fraction(1, 5), Fraction(2, 5)]
        s = SumOfUniforms([Uniform(v, 1) for v in lowers])
        for t in (Fraction(4, 5), Fraction(5, 4), Fraction(8, 5)):
            assert s.cdf(t) == sum_uniform_tail_cdf(t, lowers)
