"""Tests for the asymptotic tier and the regime dispatch layer.

Covers repro.probability.asymptotics (Berry-Esseen / Edgeworth CDF
approximations and quantile brackets), repro.probability.regimes (the
per-query dispatcher), repro.core.asymptotic (binomial-mixture winning
probabilities at large n) and repro.optimize.asymptotic_opt (the
near-optimal threshold search).
"""

import math
from fractions import Fraction

import pytest

from repro.core.asymptotic import (
    binomial_window,
    symmetric_oblivious_winning_regime,
    symmetric_threshold_winning_regime,
)
from repro.core.nonoblivious import symmetric_threshold_winning_probability
from repro.core.oblivious import symmetric_oblivious_winning_probability
from repro.core.winning import winning_probability
from repro.errors import ValidationError
from repro.model.algorithms import ObliviousCoin, SingleThresholdRule
from repro.observability import use_instrumentation
from repro.optimize.asymptotic_opt import near_optimal_symmetric_threshold
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.probability.asymptotics import (
    AsymptoticCDF,
    irwin_hall_asymptotic_value_bound,
    irwin_hall_cdf_asymptotic,
    irwin_hall_quantile_asymptotic,
    normal_cdf,
    sum_uniform_cdf_asymptotic,
)
from repro.probability.regimes import (
    DEFAULT_POLICY,
    REGIME_ASYMPTOTIC,
    REGIME_CERTIFIED,
    REGIME_EXACT,
    RegimePolicy,
    irwin_hall_cdf_regime,
)
from repro.probability.uniform_sums import irwin_hall_cdf, sum_uniform_cdf

FORCE_ASYMPTOTIC = RegimePolicy(
    exact_max_n=0, exact_max_m=0, certified_max_m=0
)


# ---------------------------------------------------------------------------
# Berry-Esseen / Edgeworth CDF estimates
# ---------------------------------------------------------------------------


class TestIrwinHallAsymptotic:
    @pytest.mark.parametrize("method", ["normal", "edgeworth"])
    @pytest.mark.parametrize("m", [5, 10, 20, 30])
    def test_bound_is_sound_against_exact(self, method, m):
        for num in range(1, 8):
            t = Fraction(num * m, 8)
            exact = float(irwin_hall_cdf(t, m))
            approx = irwin_hall_cdf_asymptotic(float(t), m, method=method)
            assert abs(exact - approx.value) <= approx.error_bound
            lo, hi = approx.bracket()
            assert lo <= exact <= hi

    def test_edgeworth_estimate_beats_normal(self):
        # At a non-central point the kurtosis correction matters; the
        # Edgeworth estimate should be strictly closer to truth.
        m = 12
        t = Fraction(m, 4)
        exact = float(irwin_hall_cdf(t, m))
        normal = irwin_hall_cdf_asymptotic(float(t), m, method="normal")
        edge = irwin_hall_cdf_asymptotic(float(t), m, method="edgeworth")
        assert abs(edge.value - exact) < abs(normal.value - exact)

    def test_support_short_circuits_are_exact(self):
        assert irwin_hall_cdf_asymptotic(-1.0, 50).value == 0.0
        assert irwin_hall_cdf_asymptotic(-1.0, 50).error_bound == 0.0
        assert irwin_hall_cdf_asymptotic(0.0, 50).value == 0.0
        assert irwin_hall_cdf_asymptotic(50.0, 50).value == 1.0
        assert irwin_hall_cdf_asymptotic(99.0, 50).error_bound == 0.0

    def test_tail_sharpening_beats_berry_esseen(self):
        # Far in the left tail the Hoeffding pin is exponentially
        # smaller than the O(1/sqrt(m)) Berry-Esseen term.
        m = 400
        approx = irwin_hall_cdf_asymptotic(m / 4.0, m)
        assert approx.value < 1e-6
        assert approx.error_bound < 1e-6
        be_scale = 0.73 / math.sqrt(m)
        assert approx.error_bound < be_scale / 100.0

    def test_bound_shrinks_with_m(self):
        bounds = [
            irwin_hall_cdf_asymptotic(m / 2.0, m, method="normal").error_bound
            for m in (10, 100, 1000, 10000)
        ]
        assert bounds == sorted(bounds, reverse=True)

    def test_symmetry_at_center(self):
        approx = irwin_hall_cdf_asymptotic(8.0, 16)
        assert approx.value == pytest.approx(0.5, abs=1e-12)

    def test_value_bound_variant_matches_dataclass(self):
        for m in (30, 500, 10**6):
            for frac in (0.25, 0.5, 0.75):
                t = frac * m
                full = irwin_hall_cdf_asymptotic(t, m)
                value, bound = irwin_hall_asymptotic_value_bound(t, m)
                assert value == full.value
                assert bound == full.error_bound

    def test_validation(self):
        with pytest.raises(ValidationError):
            irwin_hall_cdf_asymptotic(1.0, 0)
        with pytest.raises(ValidationError):
            irwin_hall_cdf_asymptotic(1.0, 10, method="bogus")

    def test_huge_m_is_finite_and_fast(self):
        approx = irwin_hall_cdf_asymptotic(500_000.0, 10**6)
        assert approx.value == pytest.approx(0.5, abs=1e-9)
        assert 0.0 < approx.error_bound < 1e-3


class TestSumUniformAsymptotic:
    def test_bound_sound_for_mixed_widths(self):
        uppers = [Fraction(1, 2), 1, Fraction(3, 2), 2, 1, Fraction(3, 4)]
        span = sum(uppers)
        for num in range(1, 8):
            t = Fraction(num) * span / 8
            exact = float(sum_uniform_cdf(t, uppers))
            approx = sum_uniform_cdf_asymptotic(
                float(t), [float(u) for u in uppers]
            )
            assert abs(exact - approx.value) <= approx.error_bound

    def test_iid_case_matches_irwin_hall_variant(self):
        m = 40
        t = 17.0
        iid = irwin_hall_cdf_asymptotic(t, m)
        general = sum_uniform_cdf_asymptotic(t, [1.0] * m)
        assert general.value == pytest.approx(iid.value, rel=1e-12)
        assert general.error_bound == pytest.approx(
            iid.error_bound, rel=1e-9
        )

    def test_zero_widths_dropped(self):
        with_zeros = sum_uniform_cdf_asymptotic(3.0, [1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0])
        without = sum_uniform_cdf_asymptotic(3.0, [1.0] * 6)
        assert with_zeros.value == without.value
        assert with_zeros.m == 6

    def test_all_zero_widths_is_constant(self):
        assert sum_uniform_cdf_asymptotic(0.5, [0.0, 0.0]).value == 1.0
        assert sum_uniform_cdf_asymptotic(-0.5, [0.0, 0.0]).value == 0.0

    def test_negative_width_rejected(self):
        with pytest.raises(ValidationError):
            sum_uniform_cdf_asymptotic(1.0, [1.0, -1.0])


class TestAsymptoticQuantile:
    @pytest.mark.parametrize("p", [0.1, 0.25, 0.5, 0.75, 0.9])
    def test_bracket_contains_true_quantile(self, p):
        # Verify via the exact CDF: F(lower) <= p <= F(upper) pins the
        # true quantile inside [lower, upper] by monotonicity.
        m = 16
        q = irwin_hall_quantile_asymptotic(p, m)
        assert q.lower <= q.value <= q.upper
        lower_cdf = float(irwin_hall_cdf(Fraction(q.lower).limit_denominator(10**12), m))
        upper_cdf = float(irwin_hall_cdf(Fraction(q.upper).limit_denominator(10**12), m))
        assert lower_cdf <= p + 1e-12
        assert upper_cdf >= p - 1e-12

    def test_median_is_center(self):
        q = irwin_hall_quantile_asymptotic(0.5, 10**6)
        assert q.value == pytest.approx(500_000.0, abs=1e-6)
        # bracket half-width ~ sigma * InvPhi(1/2 + 0.73/sqrt(m))
        assert q.upper - q.lower < 2.0

    def test_extreme_p_degrades_to_support(self):
        # p +- eps escapes (0, 1) for small m: the bracket endpoint
        # degrades to the support edge, still a valid enclosure.
        q = irwin_hall_quantile_asymptotic(0.01, 4)
        assert q.lower == 0.0
        assert 0.0 <= q.value <= 4.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            irwin_hall_quantile_asymptotic(0.0, 10)
        with pytest.raises(ValidationError):
            irwin_hall_quantile_asymptotic(1.0, 10)
        with pytest.raises(ValidationError):
            irwin_hall_quantile_asymptotic(0.5, 0)

    def test_normal_cdf_tails(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(-40.0) >= 0.0
        assert normal_cdf(40.0) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# regime dispatch
# ---------------------------------------------------------------------------


class TestRegimeDispatch:
    def test_small_m_is_exact_with_fraction(self):
        result = irwin_hall_cdf_regime(Fraction(3, 2), 3)
        assert result.regime == REGIME_EXACT
        assert result.exact == irwin_hall_cdf(Fraction(3, 2), 3)
        assert result.value == float(result.exact)
        assert result.error_bound <= 1e-15

    def test_medium_m_is_certified(self):
        # A non-central t: central points at this m lose too many
        # digits to cancellation to certify and degrade to exact.
        m = DEFAULT_POLICY.exact_max_m + 10
        result = irwin_hall_cdf_regime(Fraction(m, 4), m)
        assert result.regime == REGIME_CERTIFIED
        exact = float(irwin_hall_cdf(Fraction(m, 4), m))
        assert abs(result.value - exact) <= result.error_bound

    def test_medium_m_uncertifiable_degrades_to_exact(self):
        # Central t at m ~ 34: the float certificate fails, and the
        # dispatcher transparently answers from the exact tier.
        m = DEFAULT_POLICY.exact_max_m + 10
        result = irwin_hall_cdf_regime(Fraction(m, 2), m)
        assert result.regime == REGIME_EXACT
        assert result.exact == irwin_hall_cdf(Fraction(m, 2), m)

    def test_large_m_is_asymptotic(self):
        m = DEFAULT_POLICY.certified_max_m + 1
        result = irwin_hall_cdf_regime(Fraction(m, 2), m)
        assert result.regime == REGIME_ASYMPTOTIC
        assert result.method == DEFAULT_POLICY.method
        assert result.exact is None

    def test_m_zero_empty_sum(self):
        assert irwin_hall_cdf_regime(Fraction(1), 0).value == 1.0
        assert irwin_hall_cdf_regime(Fraction(-1), 0).value == 0.0

    def test_dispatch_counters(self):
        with use_instrumentation() as instr:
            irwin_hall_cdf_regime(Fraction(1, 2), 2)
            irwin_hall_cdf_regime(Fraction(15), 60)
            irwin_hall_cdf_regime(Fraction(500), 1000)
            counters = instr.metrics.snapshot().counters
        assert counters["asymptotics.dispatch.calls"] == 3
        assert counters["asymptotics.dispatch.exact"] == 1
        assert counters["asymptotics.dispatch.certified"] == 1
        assert counters["asymptotics.dispatch.asymptotic"] == 1

    def test_forced_asymptotic_stays_within_bound(self):
        for m in (4, 8, 16):
            t = Fraction(m, 3)
            exact = float(irwin_hall_cdf(t, m))
            result = irwin_hall_cdf_regime(t, m, FORCE_ASYMPTOTIC)
            assert result.regime == REGIME_ASYMPTOTIC
            assert abs(result.value - exact) <= result.error_bound

    def test_bracket_clipped_to_unit_interval(self):
        result = irwin_hall_cdf_regime(Fraction(100), 1000, FORCE_ASYMPTOTIC)
        lo, hi = result.bracket
        assert 0.0 <= lo <= hi <= 1.0

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            RegimePolicy(method="bogus")
        with pytest.raises(ValidationError):
            RegimePolicy(tail_tol=0.0)
        with pytest.raises(ValidationError):
            RegimePolicy(exact_max_m=-1)


# ---------------------------------------------------------------------------
# binomial window
# ---------------------------------------------------------------------------


class TestBinomialWindow:
    def test_degenerate_p_collapses(self):
        assert binomial_window(100, 0.0, 1e-9) == (0, 0)
        assert binomial_window(100, 1.0, 1e-9) == (100, 100)
        assert binomial_window(100, -0.5, 1e-9) == (0, 0)

    def test_tail_mass_below_tolerance(self):
        # Exact check for small n: the binomial mass outside [lo, hi]
        # must be below the requested tail tolerance.
        n, p, tol = 60, 0.4, 1e-6
        lo, hi = binomial_window(n, p, tol)
        outside = sum(
            float(
                Fraction(math.comb(n, k))
                * Fraction(2, 5) ** k
                * Fraction(3, 5) ** (n - k)
            )
            for k in range(n + 1)
            if not lo <= k <= hi
        )
        assert outside < tol

    def test_window_is_sublinear(self):
        lo, hi = binomial_window(10**6, 0.5, 1e-12)
        assert hi - lo < 20_000  # O(sqrt(n log(1/tol))), not O(n)
        assert 0 <= lo <= 500_000 <= hi <= 10**6

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            binomial_window(-1, 0.5, 1e-9)


# ---------------------------------------------------------------------------
# winning probabilities at large n
# ---------------------------------------------------------------------------


class TestMixtureAgainstExact:
    @pytest.mark.parametrize("n", [12, 15, 18])
    def test_threshold_forced_asymptotic_within_bound(self, n):
        delta = Fraction(3 * n, 8)
        beta = Fraction(1, 2)
        exact = float(
            symmetric_threshold_winning_probability(beta, n, delta)
        )
        result = symmetric_threshold_winning_regime(
            beta, n, delta, FORCE_ASYMPTOTIC
        )
        assert result.regime == REGIME_ASYMPTOTIC
        assert abs(result.value - exact) <= result.error_bound

    @pytest.mark.parametrize("n", [12, 15, 18])
    def test_oblivious_forced_asymptotic_within_bound(self, n):
        delta = Fraction(3 * n, 8)
        alpha = Fraction(1, 2)
        exact = float(
            symmetric_oblivious_winning_probability(delta, n, alpha)
        )
        result = symmetric_oblivious_winning_regime(
            alpha, n, delta, FORCE_ASYMPTOTIC
        )
        assert result.regime == REGIME_ASYMPTOTIC
        assert abs(result.value - exact) <= result.error_bound

    def test_small_n_delegates_to_exact(self):
        result = symmetric_threshold_winning_regime(
            Fraction(1, 2), 5, Fraction(3, 2)
        )
        assert result.regime == REGIME_EXACT
        assert result.exact == symmetric_threshold_winning_probability(
            Fraction(1, 2), 5, Fraction(3, 2)
        )

    def test_degenerate_delta_is_zero(self):
        result = symmetric_threshold_winning_regime(Fraction(1, 2), 100, 0)
        assert result.value == 0.0
        assert result.error_bound == 0.0

    def test_degenerate_beta_single_bin(self):
        # beta = 1: every input lands in bin 0 with load IH(n).
        n, delta = 100, Fraction(55)
        result = symmetric_threshold_winning_regime(1, n, delta)
        direct = irwin_hall_cdf_regime(delta, n)
        assert result.value == pytest.approx(direct.value, abs=1e-9)

    def test_large_n_is_tight_and_counts_metrics(self):
        with use_instrumentation() as instr:
            result = symmetric_oblivious_winning_regime(
                Fraction(1, 2), 10**5, Fraction(10**5 * 3, 8)
            )
            counters = instr.metrics.snapshot().counters
        assert result.regime == REGIME_ASYMPTOTIC
        assert 0.0 <= result.value <= 1.0
        assert result.error_bound < 1e-6
        assert counters["asymptotics.calls"] == 1
        assert counters["asymptotics.terms"] > 100

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            symmetric_threshold_winning_regime(Fraction(3, 2), 100, 1)
        with pytest.raises(ValidationError):
            symmetric_oblivious_winning_regime(-1, 100, 1)
        with pytest.raises(ValidationError):
            symmetric_threshold_winning_regime(Fraction(1, 2), 0, 1)


class TestWinningProbabilityEntryPoint:
    def test_small_system_exact(self):
        algorithms = [SingleThresholdRule(Fraction(1, 2))] * 4
        result = winning_probability(algorithms, Fraction(3, 2))
        assert result.regime == REGIME_EXACT
        assert result.exact == symmetric_threshold_winning_probability(
            Fraction(1, 2), 4, Fraction(3, 2)
        )

    def test_large_threshold_system(self):
        algorithms = [SingleThresholdRule(Fraction(1, 2))] * 500
        result = winning_probability(algorithms, Fraction(200))
        assert result.regime == REGIME_ASYMPTOTIC
        assert 0.0 <= result.value <= 1.0

    def test_large_oblivious_system(self):
        algorithms = [ObliviousCoin(Fraction(1, 2))] * 500
        result = winning_probability(algorithms, Fraction(200))
        assert result.regime == REGIME_ASYMPTOTIC

    def test_heterogeneous_large_system_rejected(self):
        algorithms = [SingleThresholdRule(Fraction(1, 2))] * 499 + [
            SingleThresholdRule(Fraction(1, 3))
        ]
        with pytest.raises(NotImplementedError):
            winning_probability(algorithms, Fraction(200))


# ---------------------------------------------------------------------------
# near-optimal threshold search
# ---------------------------------------------------------------------------


class TestNearOptimalThreshold:
    def test_small_n_delegates_to_exact_optimizer(self):
        result = near_optimal_symmetric_threshold(6, Fraction(2))
        exact = optimal_symmetric_threshold(6, Fraction(2))
        assert result.gap_bound == 0.0
        assert result.beta == float(exact.beta)
        assert result.value == float(exact.probability)
        assert result.exact is not None

    def test_crossover_n_tracks_exact_optimum(self):
        # Force the asymptotic search at an n the exact optimizer can
        # still handle, and compare.
        n, delta = 14, Fraction(21, 4)
        exact = optimal_symmetric_threshold(n, delta)
        policy = RegimePolicy(exact_max_n=0)
        result = near_optimal_symmetric_threshold(n, delta, policy)
        assert result.probability.regime == REGIME_ASYMPTOTIC
        # The certified enclosure around P(beta_hat) must contain the
        # true value of the curve at beta_hat...
        true_at_hat = float(
            symmetric_threshold_winning_probability(
                Fraction(result.beta).limit_denominator(10**12), n, delta
            )
        )
        lo, hi = result.bracket
        assert lo - 1e-12 <= true_at_hat <= hi + 1e-12
        # ...and beta_hat must be near-optimal: the true optimum value
        # cannot exceed the achieved value by more than bound + gap.
        shortfall = float(exact.probability) - true_at_hat
        assert shortfall <= result.gap_bound + 2 * result.error_bound + 1e-9

    def test_large_n_runs_fast_with_small_gap(self):
        result = near_optimal_symmetric_threshold(10**4, Fraction(4000))
        assert result.probability.regime == REGIME_ASYMPTOTIC
        assert 0.0 < result.beta < 1.0
        assert result.gap_bound < 0.01
        assert result.evaluations > 10

    def test_optimizer_counters(self):
        with use_instrumentation() as instr:
            near_optimal_symmetric_threshold(1000, Fraction(400))
            counters = instr.metrics.snapshot().counters
        assert counters["asymptotics.optimizer_searches"] == 1
        assert counters["asymptotics.optimizer_evals"] > 10

    def test_validation(self):
        with pytest.raises(ValidationError):
            near_optimal_symmetric_threshold(0, Fraction(1))
        with pytest.raises(ValidationError):
            near_optimal_symmetric_threshold(100, Fraction(-1))
        with pytest.raises(ValidationError):
            near_optimal_symmetric_threshold(100, Fraction(1), grid_points=0)
