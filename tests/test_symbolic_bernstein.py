"""Tests for repro.symbolic.bernstein (certified polynomial bounds)."""

from fractions import Fraction

import pytest

from repro.symbolic.bernstein import (
    bernstein_coefficients,
    bernstein_range_bound,
    certify_nonnegative,
)
from repro.symbolic.polynomial import Polynomial


class TestBernsteinCoefficients:
    def test_constant(self):
        assert bernstein_coefficients(Polynomial([5])) == [5]

    def test_linear_on_unit_interval(self):
        # x has Bernstein coefficients (0, 1)
        assert bernstein_coefficients(Polynomial.x()) == [0, 1]

    def test_endpoint_property(self):
        p = Polynomial([1, -3, Fraction(5, 2), 7])
        coeffs = bernstein_coefficients(p, Fraction(1, 4), Fraction(3, 4))
        assert coeffs[0] == p(Fraction(1, 4))
        assert coeffs[-1] == p(Fraction(3, 4))

    def test_reconstruction(self):
        # sum b_k C(d,k) u^k (1-u)^(d-k) must reproduce the polynomial
        from repro.symbolic.rational import binomial

        p = Polynomial([Fraction(1, 6), 0, Fraction(3, 2), Fraction(-1, 2)])
        lo, hi = Fraction(0), Fraction(1, 2)
        coeffs = bernstein_coefficients(p, lo, hi)
        d = len(coeffs) - 1
        for i in range(6):
            x = lo + (hi - lo) * Fraction(i, 5)
            u = (x - lo) / (hi - lo)
            value = sum(
                coeffs[k] * binomial(d, k) * u**k * (1 - u) ** (d - k)
                for k in range(d + 1)
            )
            assert value == p(x)

    def test_zero_polynomial(self):
        assert bernstein_coefficients(Polynomial.zero()) == [0]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            bernstein_coefficients(Polynomial.x(), 1, 0)


class TestRangeBound:
    def test_encloses_true_range(self):
        p = Polynomial([0, 0, 1])  # x^2 on [0, 1]: range [0, 1]
        lo, hi = bernstein_range_bound(p)
        assert lo <= 0 and hi >= 1

    def test_exact_at_endpoints(self):
        p = Polynomial([2, -1])  # 2 - x on [0, 1]: range [1, 2]
        lo, hi = bernstein_range_bound(p)
        assert lo == 1 and hi == 2

    def test_samples_inside_bound(self):
        p = Polynomial([Fraction(-11, 6), 9, Fraction(-21, 2), Fraction(7, 2)])
        lo, hi = bernstein_range_bound(p, Fraction(1, 2), 1)
        for i in range(11):
            x = Fraction(1, 2) + Fraction(i, 20)
            assert lo <= p(x) <= hi


class TestCertifyNonnegative:
    def test_obviously_nonnegative(self):
        assert certify_nonnegative(Polynomial([1, 0, 1]))  # 1 + x^2

    def test_obviously_negative(self):
        assert not certify_nonnegative(Polynomial([-1]))

    def test_needs_subdivision(self):
        # (x - 1/2)^2 is >= 0 but its raw Bernstein coefficients on
        # [0,1] include a negative middle entry
        p = Polynomial([Fraction(1, 4), -1, 1])
        raw = bernstein_coefficients(p)
        assert any(c < 0 for c in raw)
        assert certify_nonnegative(p, max_depth=40)

    def test_negative_dip_detected(self):
        # (x - 1/2)^2 - 1/100 dips below zero near 1/2
        p = Polynomial([Fraction(1, 4) - Fraction(1, 100), -1, 1])
        assert not certify_nonnegative(p)

    def test_certifies_paper_optimality_gap(self):
        """Certified proof that no beta in [1/2, 1] beats the n=3
        optimum's piece value plus epsilon: P*(cubic) - cubic(beta) >= 0
        is NOT certifiable (it touches zero at beta*), but
        P* + 1e-9 - cubic(beta) >= 0 is."""
        from repro.optimize.threshold_opt import optimal_symmetric_threshold

        opt = optimal_symmetric_threshold(3, 1)
        cubic = opt.piece.polynomial
        margin = opt.probability + Fraction(1, 10**9)
        gap = Polynomial.constant(margin) - cubic
        assert certify_nonnegative(
            gap, Fraction(1, 2), 1, max_depth=40
        )

    def test_depth_exhaustion_raises(self):
        # a tangential zero at an irrational point with depth 0 cannot
        # be decided
        p = Polynomial([2, 0, -4, 0, 2])  # 2 (x^2 - 1)^2
        with pytest.raises(RuntimeError):
            certify_nonnegative(
                Polynomial([Fraction(1, 4), -1, 1]), max_depth=0
            )
        # sanity: generous depth succeeds on the same input
        assert certify_nonnegative(p, -2, 2, max_depth=40)
