"""Canonical cache keys for exact kernels.

A memoized kernel's key must satisfy two properties:

* **Canonical.**  Two calls that are mathematically the same request
  must map to the same key, however the caller spelled the arguments:
  ``sum_uniform_cdf(0.5, [1, 1])`` and
  ``sum_uniform_cdf(Fraction(1, 2), (Fraction(1), "1"))`` both
  canonicalise through :func:`~repro.symbolic.rational.as_fraction`
  to the token ``(1/2,(1/1,1/1))``.  Floats convert to their *exact*
  binary rational (the package-wide convention), so canonicalisation
  never rounds.
* **Version-pinned.**  The key hashes a *code fingerprint* of the
  kernel's own source alongside the arguments.  Editing a formula
  changes the fingerprint, which changes every key the kernel can
  produce -- a persisted cache written by an older build can therefore
  never serve a stale value; its entries simply stop being addressable
  (and ``repro cache clear`` reclaims the space).

Only values that canonicalise losslessly are keyable: rationals
(``int``/``Fraction``/``str``/``float``), booleans, ``None``, and
(nested) sequences of those.  Anything else raises
:class:`UncacheableArgumentError`, which the decorator treats as
"call through uncached", never as a hard failure.
"""

from __future__ import annotations

import hashlib
import inspect
from fractions import Fraction
from typing import Any, Callable

from repro.symbolic.rational import as_fraction

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "UncacheableArgumentError",
    "canonical_token",
    "cache_key",
    "kernel_fingerprint",
]

#: Version of the on-disk entry format; folded into every fingerprint
#: so a format change invalidates old persisted entries wholesale.
CACHE_SCHEMA_VERSION = 1


class UncacheableArgumentError(TypeError):
    """An argument cannot be canonically serialised for keying.

    Internal signal between :func:`canonical_token` and the decorator:
    the call is executed uncached and counted, never failed.
    """


def canonical_token(value: Any) -> str:
    """The canonical string form of one argument.

    Rationals render as ``p/q`` in lowest terms (``as_fraction`` is the
    single source of truth for what counts as a rational); sequences
    render as ``(tok,tok,...)``; pairs nest.  Booleans and ``None`` get
    distinct tags so ``True``/``1`` and ``None``/``0`` cannot collide.
    """
    if value is None:
        return "N"
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, (int, Fraction, float, str)):
        try:
            f = as_fraction(value)
        except (ValueError, ZeroDivisionError, OverflowError) as exc:
            raise UncacheableArgumentError(
                f"cannot canonicalise {value!r} as a rational"
            ) from exc
        return f"{f.numerator}/{f.denominator}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_token(v) for v in value) + ")"
    raise UncacheableArgumentError(
        f"{type(value).__name__} arguments are not cacheable"
    )


def kernel_fingerprint(fn: Callable) -> str:
    """SHA-256 fingerprint of the kernel's source code (and schema).

    The fingerprint is computed once at decoration time.  When the
    source is unavailable (REPL, exotic loaders) the compiled bytecode
    stands in -- still change-detecting, just less human-auditable.
    """
    try:
        payload = inspect.getsource(fn)
    except (OSError, TypeError):
        payload = fn.__code__.co_code.hex()
    digest = hashlib.sha256()
    digest.update(f"schema={CACHE_SCHEMA_VERSION}|".encode())
    digest.update(f"{fn.__module__}.{fn.__qualname__}|".encode())
    digest.update(payload.encode())
    return digest.hexdigest()


def cache_key(
    kernel: str, fingerprint: str, args: tuple, kwargs: dict
) -> str:
    """SHA-256 key of one call: kernel name, fingerprint, canonical args.

    Keyword arguments are folded in sorted by name, so ``f(t=1)`` and
    ``f(1)`` are *distinct* keys -- deliberately: positional/keyword
    equivalence would require signature binding on every call, and the
    kernels are called positionally on their hot paths anyway.
    """
    digest = hashlib.sha256()
    digest.update(kernel.encode())
    digest.update(b"|")
    digest.update(fingerprint.encode())
    digest.update(b"|")
    digest.update(canonical_token(tuple(args)).encode())
    for name in sorted(kwargs):
        digest.update(f"|{name}=".encode())
        digest.update(canonical_token(kwargs[name]).encode())
    return digest.hexdigest()
