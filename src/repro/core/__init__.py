"""Core analytics: the paper's main results.

* :mod:`repro.core.phi` -- the kernel ``phi_t(k)`` weighting output
  vectors by their number of ones (Theorem 4.1 / Lemma 4.4).
* :mod:`repro.core.oblivious` -- Theorem 4.1: the winning probability of
  any oblivious algorithm, both the literal ``2^n`` enumeration and the
  Poisson-binomial collapse, and the optimal value of Theorem 4.3.
* :mod:`repro.core.nonoblivious` -- Theorem 5.1: the winning probability
  of single-threshold algorithms, including the exact piecewise
  polynomial in the common threshold ``beta`` used in Section 5.2.
* :mod:`repro.core.optimality` -- the optimality conditions of
  Corollary 4.2 and Theorem 5.2 (gradients, stationarity polynomials).
* :mod:`repro.core.winning` -- a uniform front-end that dispatches any
  supported algorithm object to its exact formula, with Monte Carlo as
  the universal fallback.
* :mod:`repro.core.asymptotic` -- the large-``n`` tier: certified
  binomial-mixture evaluation of the two symmetric families, scaling
  Theorems 4.1 / 5.1 to millions of players with rigorous error bounds.
"""

from repro.core.asymptotic import (
    binomial_window,
    symmetric_oblivious_winning_regime,
    symmetric_threshold_winning_regime,
)

from repro.core.nonoblivious import (
    symmetric_threshold_breakpoints,
    symmetric_threshold_winning_polynomial,
    symmetric_threshold_winning_probability,
    threshold_winning_probability,
)
from repro.core.oblivious import (
    oblivious_winning_probability,
    oblivious_winning_probability_enumerated,
    optimal_oblivious_winning_probability,
    symmetric_oblivious_winning_probability,
)
from repro.core.interval_rules import (
    interval_rule_winning_probability,
    single_threshold_as_interval_rule,
)
from repro.core.optimality import (
    oblivious_gradient,
    symmetric_threshold_stationarity,
    threshold_gradient,
)
from repro.core.phi import phi, phi_table
from repro.core.randomized import (
    RandomizedThresholdRule,
    best_symmetric_mixture,
    best_symmetric_mixture_exact,
    randomized_threshold_winning_probability,
    symmetric_mixture_polynomial,
    symmetric_mixture_winning_probability,
)
from repro.core.winning import exact_winning_probability, winning_probability

__all__ = [
    "RandomizedThresholdRule",
    "best_symmetric_mixture",
    "best_symmetric_mixture_exact",
    "binomial_window",
    "exact_winning_probability",
    "symmetric_oblivious_winning_regime",
    "symmetric_threshold_winning_regime",
    "winning_probability",
    "interval_rule_winning_probability",
    "oblivious_gradient",
    "randomized_threshold_winning_probability",
    "single_threshold_as_interval_rule",
    "symmetric_mixture_polynomial",
    "symmetric_mixture_winning_probability",
    "oblivious_winning_probability",
    "oblivious_winning_probability_enumerated",
    "optimal_oblivious_winning_probability",
    "phi",
    "phi_table",
    "symmetric_oblivious_winning_probability",
    "symmetric_threshold_breakpoints",
    "symmetric_threshold_stationarity",
    "symmetric_threshold_winning_polynomial",
    "symmetric_threshold_winning_probability",
    "threshold_winning_probability",
]
