"""The coordinator/worker wire protocol: sealed JSON frames over TCP.

One frame is a 4-byte big-endian length prefix followed by a UTF-8
JSON object carrying its own checksum -- the same seal (first 16 hex
chars of the SHA-256 of the canonical payload) the checkpoint and
event-log tiers use, so a flipped bit anywhere in a frame body is
detected before the payload is trusted.  JSON keeps every frame
inspectable with ``nc`` and a pair of eyes; the length prefix makes
framing unambiguous without in-band delimiters.

Message vocabulary (the ``type`` field):

==================  =========================================================
``hello``           worker -> coordinator: protocol version, worker id
``welcome``         coordinator -> worker: run identity (fingerprint, root
                    seed, base stream, batch size), the pickled system
                    payload (digest-verified), the fault plan
``reject``          coordinator -> worker: the hello was unacceptable
``lease_request``   worker -> coordinator: ready for a shard
``lease``           coordinator -> worker: shard index, stream name, trial
                    count, attempt, lease duration
``idle``            coordinator -> worker: nothing grantable right now,
                    ask again after ``retry_after`` seconds
``drain``           coordinator -> worker: no work will ever be granted
                    again; disconnect
``summary``         worker -> coordinator: shard index, attempt, win count,
                    elapsed seconds, run fingerprint, optional metrics
                    snapshot payload
``goodbye``         worker -> coordinator: clean disconnect
==================  =========================================================

The **system payload** (system, input distribution, fault plan) crosses
the wire as a base64 pickle guarded by a SHA-256 digest computed over
the pickle bytes; :func:`decode_blob` refuses a payload whose digest
does not match.  Pickle is the same representation the process-pool
path already requires of these objects, and the deployment model is a
user's own machines running the same repro version -- not an open
service -- so the digest guards against corruption, not adversaries.

Nothing in this module touches a random stream: frames carry results
and scheduling, never randomness.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import pickle
from typing import Any, Dict, Optional

from repro.errors import DistributedError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ConnectionClosedError",
    "CoordinatorUnreachableError",
    "FrameError",
    "FrameTimeoutError",
    "HandshakeError",
    "PayloadDigestError",
    "ProtocolError",
    "decode_blob",
    "encode_blob",
    "encode_frame",
    "open_payload",
    "read_frame",
    "seal_payload",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame body.  Generous (a summary with a metrics
#: snapshot is a few KiB; the system payload tops out well under a
#: MiB) while still rejecting a garbage length prefix before it turns
#: into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH_BYTES = 4


class ProtocolError(DistributedError):
    """A frame violated the wire protocol (framing, checksum, size)."""


class FrameError(ProtocolError):
    """A frame body failed to parse or failed its checksum."""


class FrameTimeoutError(ProtocolError):
    """The peer did not produce a complete frame within the timeout."""


class ConnectionClosedError(DistributedError):
    """The peer went away mid-conversation (EOF or reset)."""


class HandshakeError(DistributedError):
    """The hello/welcome exchange failed (version mismatch, reject)."""


class CoordinatorUnreachableError(DistributedError):
    """No connection could be established within the retry budget."""


class PayloadDigestError(DistributedError):
    """The pickled system payload's digest did not verify."""


def _checksum(payload: Dict[str, Any]) -> str:
    """First 16 hex chars of the SHA-256 of the canonical JSON form
    (the seal shared with the checkpoint and event-log formats)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def seal_payload(payload: Dict[str, Any]) -> bytes:
    """Serialise *payload* with its own checksum embedded."""
    sealed = {**payload, "checksum": _checksum(payload)}
    return json.dumps(
        sealed, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def open_payload(body: bytes) -> Dict[str, Any]:
    """Parse and verify one sealed frame body.

    Raises :class:`FrameError` on bad JSON, a non-object payload, a
    missing checksum, or a checksum mismatch -- a corrupt frame is
    never partially trusted.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    stated = payload.pop("checksum", None)
    if stated is None:
        raise FrameError("frame body carries no checksum")
    if _checksum(payload) != stated:
        raise FrameError(
            f"frame checksum mismatch (stated {stated!r})"
        )
    return payload


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One complete wire frame: length prefix plus sealed body."""
    body = seal_payload(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


async def _read_exactly(
    reader: asyncio.StreamReader, count: int, timeout: Optional[float]
) -> bytes:
    try:
        if timeout is None:
            return await reader.readexactly(count)
        return await asyncio.wait_for(
            reader.readexactly(count), timeout=timeout
        )
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosedError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{count} bytes)"
        ) from exc
    except asyncio.TimeoutError as exc:
        raise FrameTimeoutError(
            f"no complete frame within {timeout}s"
        ) from exc
    except (ConnectionError, OSError) as exc:
        raise ConnectionClosedError(str(exc)) from exc


async def read_frame(
    reader: asyncio.StreamReader, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Read one sealed frame; *timeout* bounds the whole read.

    Raises :class:`ConnectionClosedError` on EOF/reset,
    :class:`FrameTimeoutError` on timeout, :class:`ProtocolError` on
    an oversized length prefix, :class:`FrameError` on a corrupt body.
    """
    header = await _read_exactly(reader, _LENGTH_BYTES, timeout)
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME_BYTES}]"
        )
    body = await _read_exactly(reader, length, timeout)
    return open_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: Dict[str, Any],
    timeout: Optional[float] = None,
) -> None:
    """Write one sealed frame and drain the transport."""
    writer.write(encode_frame(payload))
    try:
        if timeout is None:
            await writer.drain()
        else:
            await asyncio.wait_for(writer.drain(), timeout=timeout)
    except asyncio.TimeoutError as exc:
        raise FrameTimeoutError(
            f"transport refused the frame for {timeout}s"
        ) from exc
    except (ConnectionError, OSError) as exc:
        raise ConnectionClosedError(str(exc)) from exc


def encode_blob(obj: Any) -> Dict[str, str]:
    """The wire form of an arbitrary picklable object: base64 pickle
    bytes plus their SHA-256 digest."""
    raw = pickle.dumps(obj, protocol=2)
    return {
        "data": base64.b64encode(raw).decode("ascii"),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def decode_blob(blob: Dict[str, Any]) -> Any:
    """Decode :func:`encode_blob` output, verifying the digest first.

    Raises :class:`PayloadDigestError` when the digest does not match
    (corruption in transit) and :class:`FrameError` when the blob is
    structurally malformed.
    """
    try:
        raw = base64.b64decode(blob["data"], validate=True)
        stated = str(blob["sha256"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"malformed payload blob: {exc}") from exc
    actual = hashlib.sha256(raw).hexdigest()
    if actual != stated:
        raise PayloadDigestError(
            f"payload digest mismatch: stated {stated[:16]}..., "
            f"got {actual[:16]}..."
        )
    return pickle.loads(raw)
