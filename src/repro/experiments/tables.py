"""The paper's tables: worked cases, uniformity, and the trade-off.

Three experiment families:

* :func:`case_study` -- Section 5.2's worked optimisations for any
  ``(n, delta)``: the exact piecewise polynomial, the optimal
  threshold and probability, the stationarity polynomial on the
  optimal piece, and the oblivious comparison.  The two instances the
  paper works out are ``case_study(3, 1)`` and ``case_study(4, "4/3")``.
* :func:`uniformity_table` -- Theorem 4.3 across player counts: the
  optimal oblivious algorithm stays ``alpha = 1/2`` (uniform) while
  the optimal threshold moves with ``n`` (non-uniform).
* :func:`tradeoff_table` -- the knowledge-versus-uniformity headline:
  winning probabilities of the fair coin, the optimal threshold, and
  the centralized upper bound, side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from repro.baselines.centralized import centralized_winning_probability
from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.experiments.report import format_table
from repro.optimize.oblivious_opt import solve_oblivious_optimum
from repro.optimize.threshold_opt import ThresholdOptimum, optimal_symmetric_threshold
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = [
    "CaseStudy",
    "TradeoffRow",
    "case_study",
    "render_case_study",
    "render_tradeoff_table",
    "render_uniformity_table",
    "tradeoff_table",
    "uniformity_table",
]


@dataclass(frozen=True)
class CaseStudy:
    """A fully worked Section 5.2-style optimisation for one ``(n, delta)``.

    ``oblivious_alpha`` is the *solved* symmetric oblivious optimiser,
    not an assumed ``1/2``: Theorem 4.3 says it equals ``1/2`` for
    every ``(n, delta)``, and deriving it keeps downstream artifacts
    (the uniformity table and CSV) honest if an asymmetric optimum
    ever lands."""

    optimum: ThresholdOptimum
    oblivious_value: Fraction
    oblivious_alpha: Fraction

    @property
    def n(self) -> int:
        return self.optimum.n

    @property
    def delta(self) -> Fraction:
        return self.optimum.delta

    @property
    def improvement(self) -> Fraction:
        """How much looking at the input buys over the fair coin."""
        return self.optimum.probability - self.oblivious_value

    @property
    def stationarity_polynomial(self) -> Polynomial:
        return self.optimum.stationarity_polynomial


def case_study(n: int, delta: RationalLike) -> CaseStudy:
    """Run the full Section 5.2 pipeline for ``(n, delta)``.

    The oblivious side is solved (stationary points isolated exactly),
    not assumed: ``oblivious_alpha`` comes out of
    :func:`repro.optimize.oblivious_opt.solve_oblivious_optimum`, and
    its value cross-checks Theorem 4.3's closed form internally."""
    d = as_fraction(delta)
    optimum = optimal_symmetric_threshold(n, d)
    oblivious = solve_oblivious_optimum(d, n)
    return CaseStudy(
        optimum=optimum,
        oblivious_value=oblivious.probability,
        oblivious_alpha=oblivious.alpha,
    )


def render_case_study(study: CaseStudy) -> str:
    """Multi-line report matching the quantities Section 5.2 derives."""
    opt = study.optimum
    lines = [
        f"Case n={study.n}, delta={study.delta}",
        "",
        "Winning probability P(beta), exact piecewise polynomial:",
        opt.curve.pretty("beta"),
        "",
        f"Optimal piece: [{opt.piece.lower}, {opt.piece.upper}]",
        f"Stationarity polynomial (dP/dbeta on that piece): "
        f"{study.stationarity_polynomial.pretty('beta')}",
        f"beta* = {float(opt.beta):.9f}",
        f"P*(non-oblivious) = {float(opt.probability):.9f}",
        f"P*(oblivious, alpha=1/2) = {float(study.oblivious_value):.9f}",
        f"improvement = {float(study.improvement):.9f}",
    ]
    return "\n".join(lines)


def uniformity_table(
    ns: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    delta_of_n: Callable[[int], RationalLike] = lambda n: 1,
) -> List[CaseStudy]:
    """Theorem 4.3 vs Section 5.2 across player counts.

    For each ``n`` the oblivious optimum is at ``alpha = 1/2`` (uniform)
    while ``beta*`` drifts with ``n`` -- the paper's trade-off between
    knowledge and uniformity, in one table.
    """
    return [case_study(n, delta_of_n(n)) for n in ns]


def render_uniformity_table(studies: Sequence[CaseStudy]) -> str:
    """Text table of oblivious vs threshold optima across player counts."""
    rows = []
    for s in studies:
        rows.append(
            [
                s.n,
                s.delta,
                str(s.oblivious_alpha),
                f"{float(s.oblivious_value):.6f}",
                f"{float(s.optimum.beta):.6f}",
                f"{float(s.optimum.probability):.6f}",
                f"{float(s.improvement):+.6f}",
            ]
        )
    return format_table(
        [
            "n",
            "delta",
            "alpha* (oblivious)",
            "P* oblivious",
            "beta* (threshold)",
            "P* threshold",
            "improvement",
        ],
        rows,
        title="Uniform oblivious optimum vs non-uniform threshold optimum",
    )


@dataclass(frozen=True)
class TradeoffRow:
    """One row of the trade-off table."""

    n: int
    delta: Fraction
    oblivious: Fraction
    threshold: Fraction
    centralized_estimate: float
    centralized_interval: tuple

    @property
    def ordered(self) -> bool:
        """The sanity ordering: oblivious <= threshold <= centralized
        (centralized compared against its interval's upper edge)."""
        return (
            self.oblivious <= self.threshold
            and float(self.threshold) <= self.centralized_interval[1]
        )


def tradeoff_table(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    delta_of_n: Callable[[int], RationalLike] = lambda n: 1,
    trials: int = 100_000,
    seed: Optional[int] = 0,
) -> List[TradeoffRow]:
    """Fair coin vs optimal threshold vs centralized upper bound."""
    rows = []
    for n in ns:
        d = as_fraction(delta_of_n(n))
        oblivious = optimal_oblivious_winning_probability(d, n)
        threshold = optimal_symmetric_threshold(n, d).probability
        central = centralized_winning_probability(
            n, d, trials=trials, seed=seed
        )
        rows.append(
            TradeoffRow(
                n=n,
                delta=d,
                oblivious=oblivious,
                threshold=threshold,
                centralized_estimate=central.estimate,
                centralized_interval=central.interval,
            )
        )
    return rows


def render_tradeoff_table(rows: Sequence[TradeoffRow]) -> str:
    """Text table of the value-of-information comparison."""
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.n,
                r.delta,
                f"{float(r.oblivious):.6f}",
                f"{float(r.threshold):.6f}",
                f"{r.centralized_estimate:.6f}",
                "yes" if r.ordered else "NO",
            ]
        )
    return format_table(
        [
            "n",
            "delta",
            "P* oblivious",
            "P* threshold",
            "P centralized (MC)",
            "ordered",
        ],
        table_rows,
        title="Value of information: no knowledge vs own input vs full information",
    )
