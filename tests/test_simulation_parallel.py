"""Tests for the sharded parallel Monte Carlo executor.

The contract under test: a fixed root seed yields **bit-identical**
results for every worker count, on both execution paths (vectorised
no-communication systems and scalar communicating systems), because
the shard plan and the per-shard seed streams depend only on
``(trials, shards, stream, root seed)`` -- never on scheduling.
"""

from fractions import Fraction

import pytest

from repro.baselines.centralized import OmniscientPacker
from repro.model.algorithms import ObliviousCoin, SingleThresholdRule
from repro.model.communication import FullInformation
from repro.model.inputs import BetaInputs
from repro.model.system import DistributedSystem
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.parallel import (
    DEFAULT_SHARDS,
    count_wins,
    estimate_winning_probability_sharded,
    plan_shards,
    resolve_shard_count,
    shard_stream_name,
)
from repro.simulation.rng import SeedSequenceFactory


def vector_system(n=3):
    return DistributedSystem([SingleThresholdRule(Fraction(3, 5))] * n, 1)


def scalar_system(n=3):
    """A communicating system (full information) forcing the scalar path."""
    return DistributedSystem(
        [OmniscientPacker(i, n) for i in range(n)],
        Fraction(3, 2),
        pattern=FullInformation(n),
    )


class TestPlanShards:
    def test_sums_to_trials(self):
        assert sum(plan_shards(1_000_003, 16)) == 1_000_003

    def test_even_split(self):
        assert plan_shards(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_over_leading_shards(self):
        assert plan_shards(10, 4) == [3, 3, 2, 2]

    def test_trials_less_than_shards(self):
        # one trial per shard, surplus shards dropped
        assert plan_shards(3, 8) == [1, 1, 1]

    def test_single_trial(self):
        assert plan_shards(1, 8) == [1]

    def test_default_shard_count(self):
        assert len(plan_shards(10**6)) == DEFAULT_SHARDS

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 4)
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        assert resolve_shard_count(5, None) == 5

    def test_plan_is_worker_independent_by_construction(self):
        # the plan has no workers argument at all; pin the derived
        # stream names so the on-disk seed scheme cannot drift silently
        assert shard_stream_name("winning-probability", 3) == (
            "winning-probability/shard-3"
        )


class TestBitIdenticalAcrossWorkerCounts:
    @pytest.mark.parametrize("make_system", [vector_system, scalar_system])
    def test_workers_1_2_4_identical(self, make_system):
        trials = 3_000 if make_system is scalar_system else 50_000
        summaries = []
        for workers in (1, 2, 4):
            engine = MonteCarloEngine(seed=123)
            summaries.append(
                engine.estimate_winning_probability(
                    make_system(), trials=trials, workers=workers
                )
            )
        assert summaries[0] == summaries[1] == summaries[2]

    def test_shards_identical_across_workers_with_inputs(self):
        results = []
        for workers in (1, 3):
            est = estimate_winning_probability_sharded(
                vector_system(),
                20_000,
                SeedSequenceFactory(7),
                shards=8,
                workers=workers,
                inputs=BetaInputs(2, 5),
            )
            results.append(est)
        assert results[0].summary == results[1].summary
        assert results[0].shard_outcomes == results[1].shard_outcomes

    def test_explicit_shards_respected(self):
        est = estimate_winning_probability_sharded(
            vector_system(), 10_000, SeedSequenceFactory(1), shards=5
        )
        assert est.shards == 5
        assert sum(o.trials for o in est.shard_outcomes) == 10_000
        assert est.summary.trials == 10_000

    def test_serial_fallback_matches_pool(self):
        # workers=1 takes the in-process path; workers=2 the pool path.
        # Identical summaries prove the fallback is not a different
        # estimator, just a different scheduler.
        a = estimate_winning_probability_sharded(
            scalar_system(2), 500, SeedSequenceFactory(42), shards=4, workers=1
        )
        b = estimate_winning_probability_sharded(
            scalar_system(2), 500, SeedSequenceFactory(42), shards=4, workers=2
        )
        assert a.summary == b.summary


class TestShardEdgeCases:
    def test_trials_fewer_than_shards(self):
        est = estimate_winning_probability_sharded(
            vector_system(), 3, SeedSequenceFactory(9), shards=8, workers=4
        )
        assert est.shards == 3
        assert est.summary.trials == 3

    def test_single_trial(self):
        est = estimate_winning_probability_sharded(
            vector_system(), 1, SeedSequenceFactory(9), shards=8, workers=4
        )
        assert est.shards == 1
        assert est.summary.trials == 1

    def test_trials_not_divisible_by_shards(self):
        est = estimate_winning_probability_sharded(
            vector_system(), 10_001, SeedSequenceFactory(9), shards=4
        )
        assert [o.trials for o in est.shard_outcomes] == [
            2501, 2500, 2500, 2500,
        ]
        assert est.summary.trials == 10_001

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            estimate_winning_probability_sharded(
                vector_system(), 100, SeedSequenceFactory(1), workers=0
            )

    def test_unseeded_factory_still_runs(self):
        est = estimate_winning_probability_sharded(
            vector_system(), 1_000, SeedSequenceFactory(None), shards=4
        )
        assert est.summary.trials == 1_000

    def test_audit_records_shard_streams(self):
        factory = SeedSequenceFactory(3)
        estimate_winning_probability_sharded(
            vector_system(), 100, factory, stream="s", shards=2
        )
        issued = factory.issued_streams()
        assert issued == {"s/shard-0": 1, "s/shard-1": 1}


class TestEngineIntegration:
    def test_default_path_unchanged_by_new_knobs(self):
        # workers=None, shards=None keeps the historical single-stream
        # serial loop: same result as before this feature existed.
        system = vector_system()
        a = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=10_000
        )
        b = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=10_000
        )
        assert a == b

    def test_shards_without_workers_uses_sharded_path(self):
        system = vector_system()
        sharded = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=10_000, shards=8
        )
        parallel = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=10_000, shards=8, workers=2
        )
        assert sharded == parallel

    def test_sharded_estimate_statistically_sound(self):
        from repro.core.nonoblivious import (
            symmetric_threshold_winning_probability,
        )

        beta = Fraction(3, 5)
        system = DistributedSystem([SingleThresholdRule(beta)] * 4, Fraction(4, 3))
        exact = symmetric_threshold_winning_probability(beta, 4, Fraction(4, 3))
        summary = MonteCarloEngine(seed=11).estimate_winning_probability(
            system, trials=120_000, workers=2
        )
        assert summary.covers(float(exact))

    def test_count_wins_matches_engine_serial_loop(self):
        system = vector_system()
        rng = SeedSequenceFactory(5).generator("winning-probability")
        wins = count_wins(system, 10_000, rng)
        summary = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=10_000
        )
        assert wins == summary.successes

    def test_sweep_forwards_workers(self):
        from repro.simulation.runner import sweep_thresholds

        a = sweep_thresholds(
            3, 1, grid_size=3, simulate=True, trials=8_000, seed=2,
            workers=1,
        )
        b = sweep_thresholds(
            3, 1, grid_size=3, simulate=True, trials=8_000, seed=2,
            workers=2,
        )
        assert [p.simulated for p in a.points] == [
            p.simulated for p in b.points
        ]

    def test_adaptive_forwards_workers(self):
        from repro.simulation.adaptive import estimate_until_precise

        results = [
            estimate_until_precise(
                vector_system(),
                half_width=0.02,
                engine=MonteCarloEngine(seed=10),
                workers=workers,
            )
            for workers in (1, 2)
        ]
        assert results[0].summary == results[1].summary
        assert results[0].stages == results[1].stages


class TestPickleFallbackDiagnostics:
    """The serial fallback for unpicklable work must be *visible*: a
    counter plus the exception class that caused it, never a silent
    degradation (and never a blanket ``except Exception``)."""

    def test_unpicklable_system_falls_back_and_counts(self):
        from repro.observability import use_instrumentation

        system = scalar_system(2)
        # full-information patterns carry per-instance closures that
        # pickle refuses; verify the premise before relying on it
        import pickle

        with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
            pickle.dumps(system.algorithms[0].share)

        class Unpicklable(DistributedSystem):
            """A system whose pickling always fails."""

            def __reduce__(self):
                raise pickle.PicklingError("not today")

        bad = Unpicklable([SingleThresholdRule(Fraction(3, 5))] * 2, 1)
        with use_instrumentation() as instr:
            est = estimate_winning_probability_sharded(
                bad, 2_000, SeedSequenceFactory(4), shards=4, workers=2
            )
        counters = instr.metrics.snapshot().counters
        assert est.workers_used == 1
        assert counters["engine.pickle_fallback"] == 1
        assert counters["engine.pickle_fallback.PicklingError"] == 1

    def test_picklable_pool_run_records_no_fallback(self):
        from repro.observability import use_instrumentation

        with use_instrumentation() as instr:
            estimate_winning_probability_sharded(
                vector_system(), 2_000, SeedSequenceFactory(4),
                shards=4, workers=2,
            )
        counters = instr.metrics.snapshot().counters
        assert "engine.pickle_fallback" not in counters

    def test_non_serialisation_errors_are_not_swallowed(self):
        import pickle as pickle_module

        from repro.simulation.parallel import _pickle_failure

        class ExplodesOnPickle:
            def __reduce__(self):
                raise KeyboardInterrupt  # not a serialisation failure

        assert _pickle_failure(object()) is None
        with pytest.raises(KeyboardInterrupt):
            _pickle_failure(ExplodesOnPickle())

        class MerelyUnpicklable:
            def __reduce__(self):
                raise pickle_module.PicklingError("no")

        assert _pickle_failure(MerelyUnpicklable()) == "PicklingError"


class TestFaultToleranceForwarding:
    """workers/shards gained a sibling knob: fault_tolerance must flow
    through sweeps and the adaptive estimator without changing any
    number (chaos faults included)."""

    def test_sweep_forwards_fault_tolerance(self):
        from repro.simulation.faulttolerance import (
            FaultPlan,
            FaultToleranceConfig,
            RetryPolicy,
        )
        from repro.simulation.runner import sweep_thresholds

        clean = sweep_thresholds(
            3, 1, grid_size=3, simulate=True, trials=8_000, seed=2,
            workers=2,
        )
        chaotic = sweep_thresholds(
            3, 1, grid_size=3, simulate=True, trials=8_000, seed=2,
            workers=2,
            fault_tolerance=FaultToleranceConfig(
                retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                fault_plan=FaultPlan.single("crash", shard=2),
            ),
        )
        assert [p.simulated for p in clean.points] == [
            p.simulated for p in chaotic.points
        ]

    def test_adaptive_forwards_fault_tolerance(self):
        from repro.simulation.adaptive import estimate_until_precise
        from repro.simulation.faulttolerance import (
            FaultPlan,
            FaultToleranceConfig,
            RetryPolicy,
        )

        clean = estimate_until_precise(
            vector_system(),
            half_width=0.02,
            engine=MonteCarloEngine(seed=10),
            workers=2,
        )
        chaotic = estimate_until_precise(
            vector_system(),
            half_width=0.02,
            engine=MonteCarloEngine(seed=10),
            workers=2,
            fault_tolerance=FaultToleranceConfig(
                retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                fault_plan=FaultPlan.single("crash", shard=0),
            ),
        )
        assert clean.summary == chaotic.summary
        assert clean.stages == chaotic.stages
