"""Property-based tests for the probability substrate.

Distribution-function axioms (monotone, 0 at the floor, 1 at the
ceiling) plus the structural identities connecting the lemmas.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability.uniform_sums import (
    irwin_hall_cdf,
    joint_sum_below_and_inside_high,
    joint_sum_below_and_inside_low,
    sum_uniform_cdf,
    sum_uniform_tail_cdf,
)

uppers_lists = st.lists(
    st.fractions(min_value="1/4", max_value=2, max_denominator=8),
    min_size=1,
    max_size=4,
)
unit_lists = st.lists(
    st.fractions(min_value="1/8", max_value="7/8", max_denominator=8),
    min_size=1,
    max_size=4,
)
t_values = st.fractions(min_value=0, max_value=5, max_denominator=16)


class TestCdfAxioms:
    @settings(max_examples=60, deadline=None)
    @given(uppers_lists, t_values, t_values)
    def test_monotone(self, uppers, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        assert sum_uniform_cdf(lo, uppers) <= sum_uniform_cdf(hi, uppers)

    @settings(max_examples=60, deadline=None)
    @given(uppers_lists, t_values)
    def test_range(self, uppers, t):
        v = sum_uniform_cdf(t, uppers)
        assert 0 <= v <= 1

    @settings(max_examples=60, deadline=None)
    @given(uppers_lists)
    def test_boundary_values(self, uppers):
        assert sum_uniform_cdf(0, uppers) == 0
        assert sum_uniform_cdf(sum(uppers), uppers) == 1

    @settings(max_examples=60, deadline=None)
    @given(unit_lists, t_values)
    def test_tail_cdf_range_and_floor(self, lowers, t):
        v = sum_uniform_tail_cdf(t, lowers)
        assert 0 <= v <= 1
        assert sum_uniform_tail_cdf(sum(lowers), lowers) == 0
        assert sum_uniform_tail_cdf(len(lowers), lowers) == 1


class TestStructuralIdentities:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=8), t_values)
    def test_irwin_hall_is_special_case(self, m, t):
        assert irwin_hall_cdf(t, m) == sum_uniform_cdf(t, [1] * m)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=6), t_values)
    def test_irwin_hall_reflection(self, m, t):
        if 0 <= t <= m:
            assert irwin_hall_cdf(t, m) == 1 - irwin_hall_cdf(
                Fraction(m) - t, m
            )

    @settings(max_examples=60, deadline=None)
    @given(unit_lists, t_values)
    def test_joints_bounded_by_box_volumes(self, alphas, t):
        low = joint_sum_below_and_inside_low(t, alphas)
        high = joint_sum_below_and_inside_high(t, alphas)
        box_low = Fraction(1)
        box_high = Fraction(1)
        for a in alphas:
            box_low *= a
            box_high *= 1 - a
        assert 0 <= low <= box_low
        assert 0 <= high <= box_high

    @settings(max_examples=60, deadline=None)
    @given(unit_lists, t_values)
    def test_joint_low_is_scaled_cdf(self, alphas, t):
        product = Fraction(1)
        for a in alphas:
            product *= a
        assert joint_sum_below_and_inside_low(t, alphas) == (
            sum_uniform_cdf(t, alphas) * product
        )

    @settings(max_examples=60, deadline=None)
    @given(unit_lists, t_values)
    def test_joint_high_is_scaled_tail_cdf(self, alphas, t):
        product = Fraction(1)
        for a in alphas:
            product *= 1 - a
        assert joint_sum_below_and_inside_high(t, alphas) == (
            sum_uniform_tail_cdf(t, alphas) * product
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.fractions(min_value="1/8", max_value="7/8", max_denominator=8),
        t_values,
    )
    def test_single_variable_partition(self, a, t):
        lhs = irwin_hall_cdf(t, 1)
        rhs = joint_sum_below_and_inside_low(
            t, [a]
        ) + joint_sum_below_and_inside_high(t, [a])
        assert lhs == rhs
