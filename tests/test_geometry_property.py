"""Property-based tests for the geometry substrate.

The key properties of Proposition 2.2's volume:

* agreement with the independent recursive-integration witness on
  random instances;
* monotonicity in the box sides and in the simplex sides;
* the two boundary regimes (box inside simplex / simplex inside box).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.simplex import OrthogonalSimplex
from repro.geometry.volume import (
    intersection_volume,
    intersection_volume_by_integration,
)

sides = st.fractions(min_value="1/4", max_value=3, max_denominator=8)


@st.composite
def sigma_pi_pairs(draw, max_dim=3):
    m = draw(st.integers(min_value=1, max_value=max_dim))
    sigma = [draw(sides) for _ in range(m)]
    pi = [draw(sides) for _ in range(m)]
    return sigma, pi


class TestVolumeProperties:
    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs())
    def test_matches_integration_witness(self, pair):
        sigma, pi = pair
        assert intersection_volume(sigma, pi) == (
            intersection_volume_by_integration(sigma, pi)
        )

    @settings(max_examples=50, deadline=None)
    @given(sigma_pi_pairs())
    def test_bounded_by_both_shapes(self, pair):
        sigma, pi = pair
        v = intersection_volume(sigma, pi)
        assert 0 <= v
        assert v <= OrthogonalSimplex(sigma).volume()
        assert v <= Box.from_sides(pi).volume()

    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs())
    def test_monotone_in_box(self, pair):
        sigma, pi = pair
        bigger = [p * 2 for p in pi]
        assert intersection_volume(sigma, pi) <= intersection_volume(
            sigma, bigger
        )

    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs())
    def test_monotone_in_simplex(self, pair):
        sigma, pi = pair
        bigger = [s * 2 for s in sigma]
        assert intersection_volume(sigma, pi) <= intersection_volume(
            bigger, pi
        )

    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs())
    def test_huge_simplex_gives_box_volume(self, pair):
        sigma, pi = pair
        m = len(sigma)
        huge = [sum(pi) + 1] * m
        assert intersection_volume(huge, pi) == Box.from_sides(pi).volume()

    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs())
    def test_huge_box_gives_simplex_volume(self, pair):
        sigma, pi = pair
        m = len(sigma)
        huge = [max(sigma) + 1] * m
        assert intersection_volume(sigma, huge) == (
            OrthogonalSimplex(sigma).volume()
        )

    @settings(max_examples=40, deadline=None)
    @given(sigma_pi_pairs(), st.permutations(range(3)))
    def test_permutation_invariance(self, pair, perm):
        sigma, pi = pair
        m = len(sigma)
        order = [p for p in perm if p < m]
        # complete the permutation over the actual dimension
        order += [i for i in range(m) if i not in order]
        permuted_sigma = [sigma[i] for i in order]
        permuted_pi = [pi[i] for i in order]
        assert intersection_volume(sigma, pi) == intersection_volume(
            permuted_sigma, permuted_pi
        )


class TestMembershipConsistency:
    @settings(max_examples=40, deadline=None)
    @given(
        sigma_pi_pairs(),
        st.lists(
            st.fractions(min_value=0, max_value=2, max_denominator=16),
            min_size=3,
            max_size=3,
        ),
    )
    def test_intersection_membership_is_conjunction(self, pair, raw_point):
        from repro.geometry.volume import SimplexBoxIntersection

        sigma, pi = pair
        m = len(sigma)
        point = raw_point[:m]
        inter = SimplexBoxIntersection(sigma, pi)
        expected = OrthogonalSimplex(sigma).contains(point) and (
            Box.from_sides(pi).contains(point)
        )
        assert inter.contains(point) == expected
        assert inter.as_polytope().contains(point) == expected
