"""Tests replaying Lemma 4.6 computationally (repro.core.lemma46)."""

from fractions import Fraction

import pytest

from repro.core.lemma46 import (
    antisymmetry_defect,
    lemma46_polynomial,
    rho_of_alpha,
    stationarity_in_alpha,
)
from repro.symbolic.roots import count_real_roots

SWEEP = [
    (n, t)
    for n in (2, 3, 4, 5, 6, 7)
    for t in (Fraction(1, 2), Fraction(1), Fraction(4, 3), Fraction(2))
    if t < n
]


class TestRhoChangeOfVariable:
    def test_half_maps_to_minus_one(self):
        assert rho_of_alpha(Fraction(1, 2)) == -1

    def test_monotone_decreasing_on_unit_interval(self):
        # rho = alpha / (alpha - 1) falls from 0 toward -infinity
        values = [rho_of_alpha(Fraction(i, 10)) for i in range(10)]
        assert values == sorted(values, reverse=True)
        assert all(v <= 0 for v in values)

    def test_undefined_at_one(self):
        with pytest.raises(ZeroDivisionError):
            rho_of_alpha(1)


class TestCoefficientAntisymmetry:
    @pytest.mark.parametrize("n, t", SWEEP)
    def test_lemma_4_4_in_coefficient_form(self, n, t):
        assert all(d == 0 for d in antisymmetry_defect(t, n))

    @pytest.mark.parametrize("n, t", SWEEP)
    def test_middle_coefficient_vanishes_for_odd_n(self, n, t):
        if n % 2 == 1:
            q = lemma46_polynomial(t, n)
            assert q.coefficient((n - 1) // 2) == 0


class TestStationarityPolynomial:
    @pytest.mark.parametrize("n, t", SWEEP)
    def test_half_is_stationary(self, n, t):
        assert stationarity_in_alpha(t, n)(Fraction(1, 2)) == 0

    @pytest.mark.parametrize("n, t", SWEEP)
    def test_half_is_the_only_interior_root(self, n, t):
        """The uniqueness claim of Lemma 4.6, verified by exact Sturm
        root counting on (0, 1) (shrunk slightly to avoid the boundary
        roots that exist when phi degenerates)."""
        s = stationarity_in_alpha(t, n)
        assert not s.is_zero()
        assert count_real_roots(
            s, Fraction(1, 1000), Fraction(999, 1000)
        ) == 1

    @pytest.mark.parametrize("n, t", SWEEP)
    def test_matches_gradient_evaluator(self, n, t):
        from repro.core.optimality import oblivious_partial

        s = stationarity_in_alpha(t, n)
        for i in (1, 3, 7):
            alpha = Fraction(i, 10)
            assert s(alpha) == oblivious_partial(t, [alpha] * n, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            stationarity_in_alpha(1, 1)
        with pytest.raises(ValueError):
            lemma46_polynomial(1, 1)


class TestQPolynomial:
    def test_degree(self):
        assert lemma46_polynomial(1, 4).degree <= 3

    def test_relation_to_stationarity(self):
        """S(alpha) = (1-alpha)^(n-1) * Q'(alpha) where Q' substitutes
        rho -> alpha/(alpha-1) up to sign conventions; verify the
        concrete relation pointwise:
        S(alpha) = sum_r c_r alpha^(n-1-r) (1-alpha)^r with
        c_r = -q_r (the stationarity uses phi(r) - phi(r+1))."""
        n, t = 5, Fraction(3, 2)
        q = lemma46_polynomial(t, n)
        s = stationarity_in_alpha(t, n)
        for i in range(1, 10):
            alpha = Fraction(i, 10)
            direct = sum(
                (
                    -q.coefficient(r)
                    * alpha ** (n - 1 - r)
                    * (1 - alpha) ** r
                    for r in range(n)
                ),
                Fraction(0),
            )
            assert direct == s(alpha)
