"""Edge-path coverage: branches the mainline tests do not reach.

Grouped by module; each class targets specific rarely-hit behaviour
(scalar Monte Carlo path with custom input distributions, renderer
degenerate geometries, sweep metadata, polynomial printing corners,
protocol engine limits).
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.experiments.report import format_table, render_ascii_plot
from repro.model.algorithms import SingleThresholdRule
from repro.model.inputs import BetaInputs, UniformInputs
from repro.model.system import DistributedSystem
from repro.simulation.engine import MonteCarloEngine
from repro.symbolic.polynomial import Polynomial


class TestEngineScalarPathWithInputs:
    def test_nonlocal_system_with_custom_inputs(self):
        """The scalar (per-trial) path must honour custom input
        distributions too."""
        from repro.baselines.centralized import OmniscientPacker
        from repro.model.communication import FullInformation

        system = DistributedSystem(
            [OmniscientPacker(i, 2) for i in range(2)],
            Fraction(1, 2),
            pattern=FullInformation(2),
        )
        engine = MonteCarloEngine(seed=4)
        light = engine.estimate_winning_probability(
            system, trials=2_000, stream="l", inputs=BetaInputs(1, 5)
        )
        heavy = engine.estimate_winning_probability(
            system, trials=2_000, stream="h", inputs=BetaInputs(5, 1)
        )
        # small inputs pack easily; large ones overflow capacity 1/2
        assert light.estimate > heavy.estimate

    def test_uniform_inputs_object_on_scalar_path(self):
        from repro.baselines.centralized import OmniscientPacker
        from repro.model.communication import FullInformation

        system = DistributedSystem(
            [OmniscientPacker(i, 2) for i in range(2)],
            1,
            pattern=FullInformation(2),
        )
        summary = MonteCarloEngine(seed=5).estimate_winning_probability(
            system, trials=500, inputs=UniformInputs()
        )
        assert summary.estimate == 1.0  # n=2, capacity 1: always packable


class TestRendererEdges:
    def test_single_point_plot(self):
        text = render_ascii_plot(
            [("dot", [(0.5, 0.5)])], width=10, height=4
        )
        assert "dot" in text  # degenerate spans handled (no div by 0)

    def test_constant_series(self):
        text = render_ascii_plot(
            [("flat", [(0.0, 1.0), (1.0, 1.0)])], width=10, height=4
        )
        assert "y in [1.0000, 1.0000]" in text

    def test_marker_cycling_beyond_eight_series(self):
        series = [
            (f"s{i}", [(float(i), float(i))]) for i in range(10)
        ]
        text = render_ascii_plot(series, width=20, height=5)
        for i in range(10):
            assert f"s{i}" in text

    def test_empty_table(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestPolynomialPrinting:
    def test_negative_leading_term(self):
        assert Polynomial([0, 0, -2]).pretty() == "-2*x^2"

    def test_unit_negative_coefficient(self):
        assert Polynomial([0, -1]).pretty() == "-x"

    def test_interleaved_signs(self):
        p = Polynomial([Fraction(1, 2), -1, 0, 2])
        text = p.pretty()
        assert text == "2*x^3 - x + 1/2"


class TestSweepMetadata:
    def test_label_contains_parameters(self):
        from repro.simulation.runner import sweep_thresholds

        result = sweep_thresholds(4, Fraction(4, 3), grid_size=3)
        assert "n=4" in result.label
        assert "4/3" in result.label

    def test_consistency_is_none_without_simulation(self):
        from repro.simulation.runner import sweep_thresholds

        result = sweep_thresholds(3, 1, grid_size=3)
        assert all(p.consistent is None for p in result.points)


class TestProtocolEngineLimits:
    def test_zero_round_protocol_has_empty_transcript(self, rng):
        from repro.model.communication import NoCommunication
        from repro.model.messaging import (
            AnnouncementProtocol,
            ProtocolEngine,
        )

        protocol = AnnouncementProtocol(
            NoCommunication(2), [SingleThresholdRule(Fraction(1, 2))] * 2
        )
        outcome = ProtocolEngine(1).execute(protocol, [0.3, 0.7], rng)
        assert outcome.transcript.total_messages == 0
        assert outcome.transcript.outputs == (0, 1)

    def test_estimate_trials_validation(self):
        from repro.model.messaging import (
            PartialSumChainProtocol,
            ProtocolEngine,
        )

        with pytest.raises(ValueError):
            ProtocolEngine(1).estimate_winning_probability(
                PartialSumChainProtocol(2, 1),
                trials=0,
                rng=np.random.default_rng(0),
            )


class TestMomentsEdges:
    def test_lagrange_interpolation_exactness(self):
        from repro.probability.moments import _lagrange

        xs = [Fraction(0), Fraction(1), Fraction(2), Fraction(3)]
        target = Polynomial([1, -2, 0, Fraction(1, 3)])
        poly = _lagrange(xs, [target(x) for x in xs])
        assert poly == target

    def test_overflow_with_shifted_intervals(self):
        from repro.probability.moments import (
            expected_overflow_single_bin,
        )

        # X ~ U[1/2, 1]: E[(X - 3/4)^+] = integral_{3/4}^1 (x - 3/4) * 2 dx
        # = 2 * (1/4)^2 / 2 = 1/16
        value = expected_overflow_single_bin(
            Fraction(3, 4), [(Fraction(1, 2), 1)]
        )
        assert value == Fraction(1, 16)


class TestCertifyExport:
    def test_available_from_package(self):
        from repro.optimize import certify_threshold_optimum

        cert = certify_threshold_optimum(2, 1)
        assert cert.upper_bound > Fraction(5, 6)
