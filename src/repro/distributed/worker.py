"""The worker side of the lease protocol: connect, lease, execute,
report, repeat.

A worker is stateless between leases by design.  Everything a shard
execution needs arrives in the ``welcome`` frame (the digest-verified
system payload, root seed, base stream, batch size) and the ``lease``
frame (shard index, stream name, trial count, attempt); the shard then
runs through the **same worker entry point** as the in-process
executor (:func:`repro.simulation.parallel._run_shard`), rebuilding
its generator from ``(root seed, stream name)``.  That sharing is the
bit-identity argument in one line: a remote shard cannot differ from a
local one because they are the same function on the same inputs.

Failure behaviour:

* **Connection refused / lost** -- bounded retries with the
  fault-tolerance layer's jittered exponential backoff (keyed by
  worker id and attempt, so a fleet of workers started together does
  not stampede the coordinator).  A worker that already completed at
  least one shard treats a failed *re*-connect as "the coordinator
  finished and went away" and exits cleanly.
* **Injected compute faults** -- ``crash`` propagates out of the
  session (a subprocess dies with it; the in-process harness swallows
  it), after aborting the transport so the coordinator sees the
  disconnect promptly.  ``hang``/``slow``/``corrupt`` happen inside
  the shard entry point exactly as on the local paths.
* **Injected network faults** -- applied to the summary delivery by
  :func:`repro.distributed.chaos.deliver_with_chaos`; a ``partition``
  severs the transport, and the session reconnects and carries on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.distributed import chaos
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosedError,
    CoordinatorUnreachableError,
    DistributedError,
    FrameError,
    FrameTimeoutError,
    HandshakeError,
    ProtocolError,
    decode_blob,
    read_frame,
    write_frame,
)
from repro.observability.events import snapshot_to_payload
from repro.simulation.faulttolerance import (
    FaultPlan,
    InjectedCrashError,
    RetryPolicy,
)

__all__ = ["WorkerConfig", "WorkerReport", "run_worker", "worker_session"]


def _default_connect_policy() -> RetryPolicy:
    """Connect retries: patient (the coordinator may start second) but
    jittered so simultaneously-started workers spread their attempts."""
    return RetryPolicy(
        max_retries=40,
        backoff_base=0.05,
        backoff_factor=1.5,
        backoff_max=1.0,
        backoff_jitter=0.5,
    )


@dataclass(frozen=True)
class WorkerConfig:
    """How one worker reaches and speaks to its coordinator."""

    host: str = "127.0.0.1"
    port: int = 0
    worker_id: str = ""
    connect_policy: RetryPolicy = field(
        default_factory=_default_connect_policy
    )
    frame_timeout_seconds: float = 60.0

    def __post_init__(self):
        if not 0 < self.port < 65536:
            raise ValueError(f"port must be in (0, 65536), got {self.port}")
        if self.frame_timeout_seconds <= 0:
            raise ValueError(
                f"frame_timeout_seconds must be positive, got "
                f"{self.frame_timeout_seconds}"
            )


@dataclass
class WorkerReport:
    """What one worker session did, for logs and tests."""

    worker_id: str = ""
    shards_completed: int = 0
    summaries_sent: int = 0
    summaries_dropped: int = 0
    partitions: int = 0
    reconnects: int = 0
    drained: bool = False
    #: signal number that ended the session early (SIGTERM/SIGINT),
    #: or ``None`` for a normal coordinator-driven drain.  Set only
    #: when signal handling is enabled (``repro work``); the CLI exits
    #: ``128 + interrupted_signal``.
    interrupted_signal: Optional[int] = None


@dataclass
class _Session:
    """Everything learned from one welcome frame."""

    system: Any
    inputs: Any
    fault_plan: Optional[FaultPlan]
    fingerprint: str
    root_seed: int
    base_stream: str
    batch_size: int
    collect: bool


#: Reconnect attempts once a session has already completed work.  The
#: patient schedule in :func:`_default_connect_policy` exists for
#: start-up ordering (the coordinator may bind second); after work has
#: flowed, an unreachable coordinator almost always means the run
#: finished and the server went away, so give up fast and exit clean.
_RECONNECT_ATTEMPTS = 5


async def _connect(
    config: WorkerConfig,
    worker_id: str,
    max_attempts: Optional[int] = None,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a connection with bounded, jittered retries."""
    policy = config.connect_policy
    attempts = (
        policy.max_attempts
        if max_attempts is None
        else min(max_attempts, policy.max_attempts)
    )
    last_error = "no attempt made"
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(config.host, config.port)
        except OSError as exc:
            last_error = str(exc)
        if attempt + 1 < attempts:
            await asyncio.sleep(
                policy.backoff_seconds(
                    attempt, jitter_key=(worker_id, attempt)
                )
            )
    raise CoordinatorUnreachableError(
        f"cannot reach coordinator at {config.host}:{config.port} after "
        f"{attempts} attempt(s): {last_error}"
    )


async def _handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    config: WorkerConfig,
    worker_id: str,
) -> _Session:
    """hello -> welcome; decode and digest-verify the system payload."""
    await write_frame(
        writer,
        {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "worker_id": worker_id,
        },
        timeout=config.frame_timeout_seconds,
    )
    welcome = await read_frame(
        reader, timeout=config.frame_timeout_seconds
    )
    if welcome.get("type") == "reject":
        raise HandshakeError(
            f"coordinator rejected worker: {welcome.get('reason')}"
        )
    if welcome.get("type") != "welcome":
        raise HandshakeError(
            f"expected welcome, got {welcome.get('type')!r}"
        )
    if welcome.get("protocol") != PROTOCOL_VERSION:
        raise HandshakeError(
            f"protocol mismatch: coordinator speaks "
            f"{welcome.get('protocol')}, worker speaks {PROTOCOL_VERSION}"
        )
    system, inputs, fault_plan = decode_blob(welcome["payload"])
    return _Session(
        system=system,
        inputs=inputs,
        fault_plan=fault_plan,
        fingerprint=str(welcome["fingerprint"]),
        root_seed=int(welcome["root_seed"]),
        base_stream=str(welcome["base_stream"]),
        batch_size=int(welcome["batch_size"]),
        collect=bool(welcome.get("collect", False)),
    )


async def _execute_lease(
    session: _Session, lease: Dict[str, Any]
) -> Dict[str, Any]:
    """Run one leased shard off-loop and build its summary payload.

    The shard executes in the default executor so the event loop keeps
    answering the transport (a slow shard must not starve keepalives
    or delay a concurrent in-process worker).
    """
    # deferred import: the worker module must stay importable even
    # where numpy-heavy simulation extras are being stubbed out
    from repro.simulation.parallel import _ShardTask, _run_shard

    index = int(lease["shard"])
    attempt = int(lease["attempt"])
    task = _ShardTask(
        system=session.system,
        trials=int(lease["trials"]),
        base_stream=session.base_stream,
        index=index,
        stream=str(lease["stream"]),
        root_seed=session.root_seed,
        inputs=session.inputs,
        batch_size=session.batch_size,
        collect=session.collect,
        fault_plan=session.fault_plan,
    )
    loop = asyncio.get_running_loop()
    wins, elapsed, snapshot = await loop.run_in_executor(
        None, _run_shard, task, attempt
    )
    return {
        "type": "summary",
        "shard": index,
        "attempt": attempt,
        "stream": task.stream,
        "trials": task.trials,
        "wins": wins,
        "elapsed_seconds": elapsed,
        "fingerprint": session.fingerprint,
        "metrics": (
            None if snapshot is None else snapshot_to_payload(snapshot)
        ),
    }


async def worker_session(
    config: WorkerConfig, log=None, stop: Optional[asyncio.Event] = None
) -> WorkerReport:
    """Serve one coordinator until it drains (or disappears for good).

    Returns the session's :class:`WorkerReport`.  Raises
    :class:`CoordinatorUnreachableError` if the *first* connection
    cannot be made, and :class:`InjectedCrashError` when a chaos plan
    kills this worker (callers decide whether that ends a process or
    just a task).

    *stop* (an :class:`asyncio.Event`, used by ``repro work``'s signal
    handlers) requests a graceful exit: the worker **finishes the
    lease it is executing and delivers its summary** -- never dying
    mid-lease, so the coordinator does not have to wait out a lease
    expiry -- then sends ``goodbye`` and returns instead of
    requesting more work.
    """
    worker_id = config.worker_id or f"worker-{id(config) & 0xFFFF:04x}"
    report = WorkerReport(worker_id=worker_id)

    def say(message: str) -> None:
        if log is not None:
            log(f"[{worker_id}] {message}")

    def stopping() -> bool:
        return stop is not None and stop.is_set()

    while True:
        if stopping():
            report.drained = True
            say("stop requested while disconnected; exiting")
            return report
        try:
            reader, writer = await _connect(
                config,
                worker_id,
                max_attempts=(
                    _RECONNECT_ATTEMPTS
                    if (report.summaries_sent or report.shards_completed)
                    else None
                ),
            )
        except CoordinatorUnreachableError:
            if report.summaries_sent or report.shards_completed:
                # the coordinator completed and went away; this is the
                # normal end of a session that outlived the run
                report.drained = True
                return report
            raise
        try:
            session = await _handshake(reader, writer, config, worker_id)
            say(f"connected to {config.host}:{config.port}")
            while True:
                if stopping():
                    # the graceful-signal contract: the lease that was
                    # running when the signal arrived has already been
                    # executed and its summary delivered above; tell
                    # the coordinator we are leaving instead of
                    # vanishing and exit clean.
                    report.drained = True
                    try:
                        await write_frame(writer, {"type": "goodbye"})
                    except DistributedError:
                        pass
                    say("stop requested; sent final frame")
                    return report
                await write_frame(
                    writer,
                    {"type": "lease_request", "worker_id": worker_id},
                    timeout=config.frame_timeout_seconds,
                )
                frame = await read_frame(
                    reader, timeout=config.frame_timeout_seconds
                )
                kind = frame.get("type")
                if kind == "idle":
                    await asyncio.sleep(
                        float(frame.get("retry_after", 0.05))
                    )
                    continue
                if kind in ("drain", "shutdown"):
                    report.drained = True
                    try:
                        await write_frame(writer, {"type": "goodbye"})
                    except DistributedError:
                        pass
                    say("drained")
                    return report
                if kind != "lease":
                    continue  # unknown frame: forward compatibility
                try:
                    summary = await _execute_lease(session, frame)
                except InjectedCrashError:
                    # simulate sudden worker death: sever the transport
                    # so the coordinator notices immediately
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    say("crashed (injected)")
                    raise
                report.shards_completed += 1
                spec = None
                if session.fault_plan is not None:
                    spec = session.fault_plan.network_fault(
                        session.base_stream,
                        int(frame["shard"]),
                        int(frame["attempt"]),
                    )
                outcome = await chaos.deliver_with_chaos(
                    writer,
                    summary,
                    spec,
                    timeout=config.frame_timeout_seconds,
                )
                if outcome == chaos.DROPPED:
                    report.summaries_dropped += 1
                    say(f"summary for shard {frame['shard']} dropped")
                    continue
                if outcome == chaos.PARTITIONED:
                    report.partitions += 1
                    say("partitioned; reconnecting")
                    raise ConnectionClosedError("injected partition")
                report.summaries_sent += 1
        except (
            ConnectionClosedError,
            FrameError,
            FrameTimeoutError,
            ProtocolError,
            OSError,
        ) as exc:
            # connection-level trouble: the coordinator reassigns any
            # lease this worker held; reconnect and keep serving
            report.reconnects += 1
            say(f"connection lost ({exc}); reconnecting")
            continue
        finally:
            try:
                writer.close()
            except Exception:
                pass


def run_worker(
    config: WorkerConfig, log=None, handle_signals: bool = False
) -> WorkerReport:
    """Synchronous entry point: serve one coordinator to completion.

    *handle_signals* (on for ``repro work``) turns SIGTERM/SIGINT into
    a graceful drain: the in-flight lease finishes and its summary is
    delivered, a final ``goodbye`` frame is sent, and the returned
    report carries ``interrupted_signal`` so the CLI can exit
    ``128 + signum`` (130 for SIGINT, 143 for SIGTERM).
    """

    async def main() -> WorkerReport:
        stop: Optional[asyncio.Event] = None
        installed = []
        caught: dict = {}
        if handle_signals:
            import signal as _signal

            stop = asyncio.Event()
            loop = asyncio.get_running_loop()

            def on_signal(signum: int) -> None:
                caught.setdefault("signum", signum)
                stop.set()

            for signum in (_signal.SIGTERM, _signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, on_signal, signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    continue  # non-main thread or exotic loop: skip
                installed.append((loop, signum))
        try:
            report = await worker_session(config, log=log, stop=stop)
        finally:
            for loop, signum in installed:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        if handle_signals and caught:
            report.interrupted_signal = caught["signum"]
        return report

    return asyncio.run(main())
