"""Tests for the run-telemetry pipeline.

Four contracts, mirroring the subsystem's design:

* **lossless replay** -- an event log reconstructs the run's final
  :class:`MetricsSnapshot` bit-exactly, at any worker count, with the
  dashboard on or off;
* **non-interference** -- telemetry observes; simulated results are
  bit-identical with any combination of bus/dashboard/recording;
* **damage tolerance** -- truncated or corrupted logs, torn ``run.json``
  files and missing artifacts degrade to less detail, never an error;
* **gatekeeping** -- ``repro bench compare`` passes the committed
  lineage and fails (exit 7) on a degraded candidate.
"""

import io
import json
import math

import pytest

from repro.observability import use_instrumentation
from repro.observability.dashboard import (
    Dashboard,
    DashboardState,
    render_dashboard,
)
from repro.observability.events import (
    EVENT_LOG_SCHEMA_VERSION,
    EventBus,
    counter_samples_from_events,
    read_events,
    reconstruct_metrics,
    snapshot_from_payload,
    snapshot_to_payload,
)
from repro.observability.metrics import MetricsRegistry, MetricsSnapshot
from repro.observability.progress import ShardProgress
from repro.observability.regression import (
    compare_bench,
    render_bench_comparison,
)
from repro.observability.runlog import (
    RunStore,
    RunStoreError,
    render_comparison,
    render_run,
)
from repro.observability.runmeta import (
    new_run_context,
    run_header,
    set_current_run,
)
from repro.simulation.parallel import (
    ShardOutcome,
    estimate_winning_probability_sharded,
)
from repro.simulation.rng import SeedSequenceFactory


def system(n: int = 3):
    from fractions import Fraction

    from repro.model.algorithms import SingleThresholdRule
    from repro.model.system import DistributedSystem

    return DistributedSystem(
        [SingleThresholdRule(Fraction(62, 100))] * n, 1
    )


@pytest.fixture(autouse=True)
def _fresh_run_context():
    """Each test gets its own process-default run context."""
    previous = set_current_run(None)
    yield
    set_current_run(previous)


# ---------------------------------------------------------------------------
# Run identity
# ---------------------------------------------------------------------------


class TestRunContext:
    def test_distinct_ids(self):
        a = new_run_context(command="x", argv=["x"])
        b = new_run_context(command="x", argv=["x"])
        assert a.run_id != b.run_id
        assert len(a.run_id) == 16

    def test_header_fields(self):
        context = new_run_context(command="sweep", argv=["sweep", "--n", "3"])
        header = run_header(context)
        assert header["run_id"] == context.run_id
        assert header["command"] == "sweep"
        assert header["argv"] == ["sweep", "--n", "3"]
        assert header["started_utc"].endswith("Z")

    def test_directory_name_sorts_chronologically(self):
        context = new_run_context(command="x")
        name = context.directory_name
        assert name.endswith(context.run_id)
        assert "T" in name and ":" not in name and "-" not in name.split(
            context.run_id
        )[0].rstrip("-")


# ---------------------------------------------------------------------------
# Snapshot codec and event-log replay
# ---------------------------------------------------------------------------


def _busy_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.increment("shard.trials", 12_345)
    registry.increment("cache.hits", 7)
    registry.set_gauge("engine.fraction", 0.1 + 0.2)  # non-representable
    registry.observe("kernel.eval", 0.001234)
    registry.observe("kernel.eval", 5e-7)
    return registry


class TestSnapshotCodec:
    def test_roundtrip_bit_exact(self):
        snapshot = _busy_registry().snapshot()
        payload = json.loads(json.dumps(snapshot_to_payload(snapshot)))
        assert snapshot_from_payload(payload) == snapshot

    def test_empty_roundtrip(self):
        empty = MetricsSnapshot()
        assert snapshot_from_payload(
            snapshot_to_payload(empty)
        ) == empty


class TestEventLogReplay:
    def test_reconstructs_final_snapshot(self, tmp_path):
        path = tmp_path / "events.jsonl"
        context = new_run_context(command="t")
        registry = MetricsRegistry()
        bus = EventBus(path=path, context=context, metrics=registry)
        registry.increment("shard.trials", 100)
        bus.emit("shard", stream="s", index=0, trials=100, wins=40)
        registry.increment("shard.trials", 900)
        bus.close(exit_code=0)
        log = read_events(path)
        assert log.corrupt_lines == 0
        assert log.header["run_id"] == context.run_id
        assert log.header["schema_version"] == EVENT_LOG_SCHEMA_VERSION
        assert reconstruct_metrics(log) == registry.snapshot()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("with_dashboard", [False, True])
    def test_sharded_run_replays_bit_exact(
        self, tmp_path, workers, with_dashboard
    ):
        """The acceptance criterion: replay == final snapshot at any
        worker count, dashboard on or off, results identical."""
        path = tmp_path / f"events-{workers}-{with_dashboard}.jsonl"
        subscribers = []
        if with_dashboard:
            subscribers.append(
                Dashboard(stream=io.StringIO(), interactive=False)
            )
        with use_instrumentation() as instr:
            bus = EventBus(
                path=path,
                context=new_run_context(command="t"),
                subscribers=subscribers,
                metrics=instr.metrics,
            )
            instr.events = bus
            result = estimate_winning_probability_sharded(
                system(),
                trials=8_000,
                shards=8,
                workers=workers,
                factory=SeedSequenceFactory(11),
            )
            bus.close(exit_code=0)
            final = instr.metrics.snapshot()
        replayed = reconstruct_metrics(path)
        assert replayed == final
        assert (
            replayed.counters["shard.trials"] == result.summary.trials
        )
        # the estimate itself is the workers=1, no-telemetry one
        baseline = estimate_winning_probability_sharded(
            system(),
            trials=8_000,
            shards=8,
            workers=1,
            factory=SeedSequenceFactory(11),
        )
        assert result.summary.successes == baseline.summary.successes
        assert result.summary.interval == baseline.summary.interval

    def test_resumed_faulted_run_replays_bit_exact(self, tmp_path):
        """Checkpoint/resume composed with the event log: a run that
        crashed partway, then resumed under a live bus, must (a)
        reproduce the fresh run's summary exactly and (b) leave an
        event log whose replay equals its own final snapshot bit for
        bit -- recovery changes scheduling, never results or
        telemetry integrity."""
        from repro.simulation.faulttolerance import (
            FaultPlan,
            FaultSpec,
            FaultToleranceConfig,
            RetryPolicy,
            ShardRetriesExhaustedError,
        )

        checkpoint = tmp_path / "ckpt.jsonl"
        fresh = estimate_winning_probability_sharded(
            system(),
            trials=8_000,
            shards=8,
            factory=SeedSequenceFactory(11),
        )
        # first attempt: shard 2 crashes with no retry budget; the
        # completed prefix lands in the checkpoint
        with pytest.raises(ShardRetriesExhaustedError):
            estimate_winning_probability_sharded(
                system(),
                trials=8_000,
                shards=8,
                factory=SeedSequenceFactory(11),
                fault_tolerance=FaultToleranceConfig(
                    retry=RetryPolicy(max_retries=0),
                    fault_plan=FaultPlan.single("crash", shard=2),
                    checkpoint_path=checkpoint,
                ),
            )
        # second attempt: resume under a live event bus
        path = tmp_path / "events.jsonl"
        with use_instrumentation() as instr:
            bus = EventBus(
                path=path,
                context=new_run_context(command="t"),
                metrics=instr.metrics,
            )
            instr.events = bus
            resumed = estimate_winning_probability_sharded(
                system(),
                trials=8_000,
                shards=8,
                factory=SeedSequenceFactory(11),
                fault_tolerance=FaultToleranceConfig(
                    checkpoint_path=checkpoint,
                    resume=True,
                ),
            )
            bus.close(exit_code=0)
            final = instr.metrics.snapshot()
        assert resumed.summary == fresh.summary
        assert resumed.shard_outcomes == fresh.shard_outcomes
        assert resumed.resumed_shards == 2  # shards 0 and 1
        assert reconstruct_metrics(path) == final
        # the resumed shards surfaced through the log as recovered
        log = read_events(path)
        recovered = [
            e
            for e in log.events
            if e.get("type") == "shard" and e.get("recovered")
        ]
        assert {e["index"] for e in recovered} >= {0, 1}
        assert final.counters["engine.shards_resumed"] == 2

    def test_truncated_tail_recovers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry()
        bus = EventBus(
            path=path,
            context=new_run_context(command="t"),
            metrics=registry,
        )
        registry.increment("shard.trials", 500)
        bus.emit_metrics("periodic")
        registry.increment("shard.trials", 500)
        bus.close(exit_code=0)
        intact = path.read_bytes()
        # tear the final line mid-write
        path.write_bytes(intact[:-20])
        log = read_events(path)
        assert log.corrupt_lines == 1
        replayed = reconstruct_metrics(log)
        # the torn run_end is gone; the last intact metrics event (the
        # final snapshot) still replays
        assert replayed is not None
        assert replayed.counters["shard.trials"] == 1000

    def test_corrupt_middle_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry()
        bus = EventBus(
            path=path,
            context=new_run_context(command="t"),
            metrics=registry,
        )
        registry.increment("a", 1)
        bus.close(exit_code=0)
        lines = path.read_text().splitlines()
        lines.insert(1, '{"type": "shard"}  not-a-checksum')
        lines.insert(2, "garbage that is not json at all")
        path.write_text("\n".join(lines) + "\n")
        log = read_events(path)
        assert log.corrupt_lines == 2
        assert reconstruct_metrics(log).counters["a"] == 1

    def test_counter_samples(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry()
        bus = EventBus(
            path=path,
            context=new_run_context(command="t"),
            metrics=registry,
        )
        registry.increment("shard.trials", 1000)
        registry.increment("cache.hits", 3)
        registry.increment("cache.misses", 1)
        bus.emit_metrics("periodic")
        registry.increment("shard.trials", 1000)
        registry.increment("batch.points", 10)
        registry.increment("batch.fallbacks", 1)
        bus.close(exit_code=0)
        samples = counter_samples_from_events(read_events(path).events)
        assert len(samples) == 2
        assert samples[0]["cache_hit_rate"] == 0.75
        assert samples[0]["batch_fallback_rate"] is None
        assert samples[1]["batch_fallback_rate"] == 0.1
        assert all(s["t_us"] >= 0 for s in samples)


# ---------------------------------------------------------------------------
# trials_per_second semantics (the progress.py fix)
# ---------------------------------------------------------------------------


class TestTrialsPerSecond:
    def test_unknown_elapsed_is_none(self):
        report = ShardProgress(
            index=0, trials=100, wins=10,
            elapsed_seconds=None, completed_shards=1, total_shards=2,
        )
        assert report.trials_per_second is None

    def test_zero_elapsed_is_inf_not_none(self):
        """A measured 0.0s shard is *instant*, not *untimed* -- the
        old ``if not elapsed_seconds`` conflated the two."""
        report = ShardProgress(
            index=0, trials=100, wins=10,
            elapsed_seconds=0.0, completed_shards=1, total_shards=2,
        )
        assert report.trials_per_second == math.inf

    def test_normal_rate(self):
        report = ShardProgress(
            index=0, trials=100, wins=10,
            elapsed_seconds=0.5, completed_shards=1, total_shards=2,
        )
        assert report.trials_per_second == 200.0

    def test_shard_outcome_mirrors_semantics(self):
        timed = ShardOutcome(
            index=0, stream="s", trials=100, wins=10,
            elapsed_seconds=0.0,
        )
        untimed = ShardOutcome(
            index=0, stream="s", trials=100, wins=10,
            elapsed_seconds=None,
        )
        assert timed.trials_per_second == math.inf
        assert untimed.trials_per_second is None


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------


def _drive(dashboard: Dashboard) -> None:
    for event in [
        {"type": "run_start", "t_ns": 0, "run_id": "deadbeef00000000",
         "command": "validate"},
        {"type": "point", "t_ns": 1_000_000, "label": "beta=1/2",
         "index": 0, "total": 2},
        {"type": "shard", "t_ns": 2_000_000, "stream": "beta=1/2",
         "index": 0, "trials": 500, "wins": 200, "attempt": 0,
         "recovered": False, "completed": 1, "total": 2},
        {"type": "fault", "t_ns": 3_000_000, "kind": "crash",
         "index": 1, "stream": "beta=1/2", "attempt": 0,
         "message": "boom"},
        {"type": "metrics", "t_ns": 4_000_000, "kind": "periodic",
         "snapshot": {"counters": {"shard.trials": 500,
                                   "engine.shard_retries": 1},
                      "gauges": {}, "timings": {}}},
        {"type": "run_end", "t_ns": 5_000_000, "exit_code": 0},
    ]:
        dashboard(event)


class TestDashboard:
    def test_non_tty_fallback_is_plain(self):
        """On a non-TTY the dashboard degrades to log lines: no ANSI
        escapes, one line per notable event."""
        sink = io.StringIO()
        dashboard = Dashboard(stream=sink, interactive=None)
        assert dashboard.interactive is False  # StringIO has no tty
        _drive(dashboard)
        text = sink.getvalue()
        assert "\x1b" not in text
        assert "run deadbeef00000000 (validate) started" in text
        assert "fault: crash on shard 1" in text
        assert "exit=0" in text

    def test_interactive_redraws_in_place(self):
        sink = io.StringIO()
        dashboard = Dashboard(
            stream=sink, interactive=True, min_interval=0.0
        )
        _drive(dashboard)
        text = sink.getvalue()
        assert "\x1b[" in text and "F\x1b[J" in text

    def test_render_is_pure_and_complete(self):
        dashboard = Dashboard(stream=io.StringIO(), interactive=False)
        _drive(dashboard)
        lines = render_dashboard(dashboard.state)
        joined = "\n".join(lines)
        assert "point 1/2 (beta=1/2)" in joined
        assert "1/2 shards" in joined
        assert "retries 1" in joined
        assert "faults 1" in joined
        assert "done  exit=0" in joined

    def test_state_bounds_stream_lines(self):
        state = DashboardState()
        for i in range(50):
            state.apply(
                {"type": "shard", "t_ns": i, "stream": f"s{i}",
                 "index": 0, "trials": 1, "wins": 0, "completed": 1,
                 "total": 1}
            )
        lines = render_dashboard(state, max_streams=6)
        assert sum("shards" in line for line in lines) == 6
        assert any("+44 earlier stream(s)" in line for line in lines)


# ---------------------------------------------------------------------------
# Run store
# ---------------------------------------------------------------------------


def _record_run(store: RunStore, command: str, trials: int):
    context = new_run_context(command=command, argv=[command])
    registry = MetricsRegistry()
    bus = EventBus(
        path=store.events_path(context),
        context=context,
        metrics=registry,
    )
    registry.increment("shard.trials", trials)
    bus.emit("shard", stream="s", index=0, trials=trials, wins=1)
    bus.close(exit_code=0)
    store.finalize(context, 0, registry.snapshot())
    return context


class TestRunStore:
    def test_list_find_compare(self, tmp_path):
        store = RunStore(tmp_path)
        first = _record_run(store, "sweep", 100)
        second = _record_run(store, "sweep", 300)
        runs = store.list_runs()
        assert [r.run_id for r in runs] == [first.run_id, second.run_id]
        assert all(r.complete for r in runs)
        assert store.find("latest").run_id == second.run_id
        assert store.find(first.run_id[:6]).run_id == first.run_id
        text = render_comparison(runs[0], runs[1])
        assert "shard.trials" in text
        assert "+200" in text

    def test_find_errors(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(RunStoreError):
            store.find("latest")  # empty store
        _record_run(store, "a", 1)
        with pytest.raises(RunStoreError):
            store.find("zzzz-no-such-run")

    def test_corrupt_summary_degrades_to_incomplete(self, tmp_path):
        store = RunStore(tmp_path)
        context = _record_run(store, "sweep", 100)
        run = store.find("latest")
        (run.directory / "run.json").write_text("{torn")
        recovered = store.find("latest")
        assert recovered.complete is False
        assert recovered.run_id == context.run_id  # from the event log
        assert recovered.command == "sweep"
        # and its metrics still replay from events.jsonl
        assert recovered.metrics().counters["shard.trials"] == 100

    def test_render_run_shows_counters(self, tmp_path):
        store = RunStore(tmp_path)
        _record_run(store, "sweep", 42)
        text = render_run(store.find("latest"))
        assert "[complete]" in text
        assert "shard.trials" in text and "42" in text

    def test_prune_keeps_newest(self, tmp_path):
        store = RunStore(tmp_path)
        for i in range(4):
            _record_run(store, f"c{i}", i + 1)
        assert store.prune(keep=2) == 2
        kept = store.list_runs()
        assert [r.command for r in kept] == ["c2", "c3"]

    def test_prune_skips_run_being_finalized(self, tmp_path):
        # a live run has written run.json.tmp but not yet renamed it:
        # prune must not delete the directory out from under it
        store = RunStore(tmp_path)
        for i in range(3):
            _record_run(store, f"c{i}", i + 1)
        oldest = store.list_runs()[0]
        (oldest.directory / "run.json.tmp").write_text("{")
        assert store.prune(keep=1) == 1  # c1 pruned, c0 skipped
        kept = store.list_runs()
        assert [r.command for r in kept] == ["c0", "c2"]
        # once the finalize completes, the directory prunes normally
        (oldest.directory / "run.json.tmp").unlink()
        assert store.prune(keep=1) == 1
        assert [r.command for r in store.list_runs()] == ["c2"]


# ---------------------------------------------------------------------------
# Perf-regression gate
# ---------------------------------------------------------------------------


BASE = {
    "benchmark": "batch_cold_sweep",
    "cold_seconds": 0.14,
    "cold_speedup": 33.0,
    "warm_speedup": 1900.0,
    "fallback_rate": 0.003,
    "floor": 20.0,
}


class TestBenchGate:
    def test_self_check_passes_on_committed_lineage(self):
        for name in ("BENCH_5.json", "BENCH_6.json"):
            payload = json.loads(open(name).read())
            comparison = compare_bench(payload, baseline_name=name)
            assert comparison.passed, render_bench_comparison(comparison)

    def test_identical_candidate_passes(self):
        assert compare_bench(BASE, dict(BASE)).passed

    def test_speedup_erosion_fails(self):
        bad = dict(BASE, cold_speedup=10.0)  # < 0.5 * 33 and < floor
        comparison = compare_bench(BASE, bad)
        assert not comparison.passed
        kinds = {(g.name, g.kind) for g in comparison.failures}
        assert ("cold_speedup", "floor") in kinds
        assert ("cold_speedup", "ratio") in kinds

    def test_seconds_blowup_fails(self):
        comparison = compare_bench(BASE, dict(BASE, cold_seconds=1.0))
        assert [g.name for g in comparison.failures] == ["cold_seconds"]

    def test_fallback_ceiling(self):
        assert not compare_bench(BASE, dict(BASE, fallback_rate=0.5)).passed
        # slack: a tiny baseline must not flag noise-level candidates
        tiny = dict(BASE, fallback_rate=0.0)
        assert compare_bench(tiny, dict(tiny, fallback_rate=0.005)).passed

    def test_benchmark_mismatch_fails(self):
        other = dict(BASE, benchmark="warm_repeated_sweep")
        comparison = compare_bench(BASE, other)
        assert not comparison.passed
        assert comparison.failures[0].kind == "identity"

    def test_rendered_diff_names_failures(self):
        text = render_bench_comparison(
            compare_bench(BASE, dict(BASE, cold_speedup=1.0))
        )
        assert "[FAIL]" in text
        assert "REGRESSION: cold_speedup" in text
        assert "EXIT_PERF_REGRESSION" in text


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestTelemetryCli:
    VALIDATE = [
        "validate", "--n", "3", "--grid-size", "2",
        "--trials", "1000", "--seed", "0", "--workers", "2",
    ]

    def test_record_and_inspect(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        assert main(self.VALIDATE + ["--record-run"]) == 0
        err = capsys.readouterr().err
        assert "run recorded:" in err

        assert main(["runs", "list"]) == 0
        listing = capsys.readouterr().out
        assert "validate" in listing and "[complete]" in listing

        assert main(["runs", "show", "latest"]) == 0
        shown = capsys.readouterr().out
        assert "shard.trials" in shown

        assert main(self.VALIDATE + ["--record-run"]) == 0
        capsys.readouterr()
        assert main(
            ["runs", "compare", "latest", "latest", "--changed-only"]
        ) == 0
        compared = capsys.readouterr().out
        assert "every counter identical" in compared

        assert main(["runs", "prune", "--keep", "1"]) == 0
        assert "pruned 1 run(s)" in capsys.readouterr().out

    def test_recorded_run_replays_cli_snapshot(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        metrics_path = tmp_path / "m.jsonl"
        assert main(
            self.VALIDATE
            + ["--record-run", "--metrics-out", str(metrics_path)]
        ) == 0
        capsys.readouterr()
        store = RunStore(tmp_path / "runs")
        run = store.find("latest")
        replayed = run.metrics()
        exported = {
            row["name"]: row["value"]
            for row in map(
                json.loads, metrics_path.read_text().splitlines()
            )
            if row.get("type") == "counter"
        }
        assert replayed.counters == exported

    def test_dashboard_flag_non_tty(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        assert main(self.VALIDATE + ["--dashboard"]) == 0
        captured = capsys.readouterr()
        assert "[dashboard]" in captured.err
        assert "\x1b" not in captured.err

    def test_dashboard_does_not_change_results(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        assert main(self.VALIDATE) == 0
        plain = capsys.readouterr().out
        assert main(
            self.VALIDATE + ["--dashboard", "--record-run"]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import EXIT_PERF_REGRESSION, main

        assert main(["bench", "compare", "BENCH_5.json"]) == 0
        assert "[PASS]" in capsys.readouterr().out
        degraded = tmp_path / "degraded.json"
        payload = json.loads(open("BENCH_6.json").read())
        payload["cold_speedup"] = 1.0
        degraded.write_text(json.dumps(payload))
        assert (
            main(["bench", "compare", "BENCH_6.json", str(degraded)])
            == EXIT_PERF_REGRESSION
        )
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "REGRESSION" in out

    def test_bench_compare_unreadable_artifact(self, tmp_path, capsys):
        from repro.cli import main

        broken = tmp_path / "broken.json"
        broken.write_text("not json")
        assert main(["bench", "compare", str(broken)]) == 2
        assert "bench compare" in capsys.readouterr().err

    def test_report_html(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        assert main(self.VALIDATE + ["--record-run"]) == 0
        capsys.readouterr()
        target = tmp_path / "report.html"
        assert main(["report", "latest", "--html", str(target)]) == 0
        doc = target.read_text()
        assert doc.startswith("<!DOCTYPE html>")
        assert "shard.trials" in doc
        assert "Bench lineage" in doc  # BENCH_*.json in the repo root
        assert "<svg" in doc
        # self-contained: no external fetches of any kind
        assert "http://" not in doc and "https://" not in doc
        assert "<script src" not in doc and "<link" not in doc


# ---------------------------------------------------------------------------
# HTML report internals
# ---------------------------------------------------------------------------


class TestHtmlReport:
    def test_sparkline_svg_shapes(self):
        from repro.observability.htmlreport import sparkline_svg

        assert sparkline_svg([]) == ""
        single = sparkline_svg([1.0])
        assert "<svg" in single and "circle" in single
        flat = sparkline_svg([2.0, 2.0, 2.0])
        assert "polyline" in flat

    def test_incomplete_run_still_renders(self, tmp_path):
        from repro.observability.htmlreport import render_html_report

        store = RunStore(tmp_path)
        context = _record_run(store, "sweep", 10)
        run = store.find("latest")
        (run.directory / "run.json").unlink()
        incomplete = store.find("latest")
        doc = render_html_report(incomplete)
        assert "INCOMPLETE" in doc
        assert "shard.trials" in doc  # replayed from events alone
        assert context.run_id in doc
