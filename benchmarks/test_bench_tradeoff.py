"""E6 -- the knowledge/uniformity trade-off table.

Fair coin (no knowledge) vs optimal common threshold (own input) vs
centralized feasibility (full information), for n = 2 .. 6 at
delta = 1.  The information ordering must hold row by row, and the
n = 3 row must show the paper's headline gap 0.545 vs 0.417.
"""

from fractions import Fraction

from conftest import record

from repro.experiments.tables import tradeoff_table


def test_bench_tradeoff_table(benchmark):
    def build():
        return tradeoff_table(
            ns=(2, 3, 4, 5, 6),
            delta_of_n=lambda n: 1,
            trials=60_000,
            seed=7,
        )

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for row in rows:
        assert row.ordered, f"information ordering violated at n={row.n}"
        record(
            f"tradeoff n={row.n}",
            oblivious=f"{float(row.oblivious):.6f}",
            threshold=f"{float(row.threshold):.6f}",
            centralized=f"{row.centralized_estimate:.6f}",
        )

    by_n = {row.n: row for row in rows}
    # the paper's n = 3 anchors
    assert by_n[3].oblivious == Fraction(5, 12)
    assert round(float(by_n[3].threshold), 3) == 0.545
    # full information is worth a lot: at n = 3 the centralized bound
    # is ~0.75, far above 0.545
    assert by_n[3].centralized_estimate > 0.7

    # n = 2 is degenerate: centralized always wins
    assert by_n[2].centralized_estimate == 1.0
