"""Thread-safe in-memory LRU tier.

One lock, one :class:`~collections.OrderedDict`; every operation is a
few dictionary moves.  Hit/miss/eviction events increment both a set
of internal integer counters (so ``repro cache stats`` works without
instrumentation) and -- when an instrument is active -- the shared
:class:`~repro.observability.metrics.MetricsRegistry` under the
``cache.*`` namespace, following the same resolve-at-call-time pattern
as the rest of the package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.observability import get_instrumentation

__all__ = ["LRUCache"]

#: Sentinel distinguishing "cached None" from "absent".
_MISSING = object()


class LRUCache:
    """A bounded least-recently-used map from key strings to values.

    Values are required (by the decorator layer) to be immutable, so a
    hit can hand back the stored object without copying.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def get(self, key: str) -> Tuple[bool, Optional[Any]]:
        """``(found, value)`` -- a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                found = False
                value = None
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                found = True
        instr = get_instrumentation()
        instr.increment("cache.hits" if found else "cache.misses")
        return found, value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest on overflow."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            get_instrumentation().increment("cache.evictions", evicted)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def stats(self) -> Dict[str, int]:
        """Point-in-time counters (never reset by :meth:`clear`)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache(size={s['size']}/{s['maxsize']}, "
            f"hits={s['hits']}, misses={s['misses']}, "
            f"evictions={s['evictions']})"
        )
