"""Optimisers for the two algorithm families.

* :mod:`repro.optimize.oblivious_opt` -- verify and solve the oblivious
  optimality conditions (Corollary 4.2 / Theorem 4.3): the optimum is
  the uniform fair coin ``alpha = 1/2``.
* :mod:`repro.optimize.threshold_opt` -- exact maximisation of the
  symmetric threshold winning probability (Section 5.2): stationary
  points of the piecewise polynomial, compared against breakpoints and
  endpoints.
* :mod:`repro.optimize.numeric` -- scipy-based numeric maximisation
  over unconstrained per-player parameter vectors, used to confirm the
  exact optima are global and that asymmetric profiles do not improve
  on symmetric ones.
"""

from repro.optimize.oblivious_opt import (
    ObliviousOptimum,
    boundary_split_value,
    solve_oblivious_optimum,
    verify_fair_coin_stationary,
)
from repro.optimize.asymptotic_opt import (
    AsymptoticOptimum,
    near_optimal_symmetric_threshold,
)
from repro.optimize.threshold_opt import (
    ThresholdOptimum,
    optimal_symmetric_threshold,
)
from repro.optimize.certify import (
    OptimalityCertificate,
    certify_threshold_optimum,
)
from repro.optimize.asymmetric import (
    best_two_group_profile,
    coordinate_ascent_thresholds,
    two_group_winning_probability,
)
from repro.optimize.numeric import (
    maximize_oblivious_numeric,
    maximize_thresholds_numeric,
)

__all__ = [
    "AsymptoticOptimum",
    "ObliviousOptimum",
    "OptimalityCertificate",
    "ThresholdOptimum",
    "near_optimal_symmetric_threshold",
    "certify_threshold_optimum",
    "best_two_group_profile",
    "boundary_split_value",
    "coordinate_ascent_thresholds",
    "maximize_oblivious_numeric",
    "maximize_thresholds_numeric",
    "optimal_symmetric_threshold",
    "solve_oblivious_optimum",
    "verify_fair_coin_stationary",
]
