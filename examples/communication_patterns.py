"""Beyond the paper: what communication buys, on the same workload.

The paper settles the no-communication case and points at general
patterns as future work (Section 6).  The framework here supports
arbitrary visibility graphs, so this example measures (by simulation)
the value of several patterns on the three-player, capacity-1 system:

* no communication, optimal threshold (the paper's 0.545);
* a one-way chain P1 -> P2 -> P3 with weighted-average rules
  (the protocol family of Papadimitriou & Yannakakis 1991);
* full information with a consistent greedy packer;
* the centralized feasibility bound.

Run:  python examples/communication_patterns.py
"""

from fractions import Fraction

from repro.baselines.centralized import (
    OmniscientPacker,
    centralized_winning_probability,
)
from repro.baselines.py1991 import WeightedAverageRule
from repro.experiments.report import format_table
from repro.model.algorithms import SingleThresholdRule
from repro.model.communication import FullInformation, GraphPattern
from repro.model.system import DistributedSystem
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.simulation.engine import MonteCarloEngine

TRIALS = 150_000


def no_communication_row(engine):
    optimum = optimal_symmetric_threshold(3, 1)
    system = DistributedSystem(
        [SingleThresholdRule(optimum.beta) for _ in range(3)], 1
    )
    summary = engine.estimate_winning_probability(
        system, trials=TRIALS, stream="none"
    )
    return [
        "optimal threshold",
        "none (0 messages)",
        f"{summary.estimate:.5f}",
        f"exact {float(optimum.probability):.5f}",
    ]


def chain_row(engine):
    # P1 -> P2 -> P3: player 2 sees x1, player 3 sees x2.  Each later
    # player balances against what it saw: go to the opposite bin of a
    # large observed input.  Weights/thresholds are reasonable
    # hand-tuned values, not claimed optimal.
    pattern = GraphPattern.chain(3)
    algorithms = [
        WeightedAverageRule(Fraction(62, 100)),
        WeightedAverageRule(
            Fraction(4, 5), observed_weights={0: Fraction(1, 2)}
        ),
        WeightedAverageRule(
            Fraction(4, 5), observed_weights={1: Fraction(1, 2)}
        ),
    ]
    system = DistributedSystem(algorithms, 1, pattern=pattern)
    summary = engine.estimate_winning_probability(
        system, trials=TRIALS, stream="chain"
    )
    return [
        "weighted-average chain",
        "chain (2 messages)",
        f"{summary.estimate:.5f}",
        "simulation only",
    ]


def full_information_row(engine):
    system = DistributedSystem(
        [OmniscientPacker(i, 3) for i in range(3)],
        1,
        pattern=FullInformation(3),
    )
    summary = engine.estimate_winning_probability(
        system, trials=20_000, stream="full"
    )
    return [
        "greedy packer",
        "full (6 messages)",
        f"{summary.estimate:.5f}",
        "simulation only",
    ]


def feasibility_row():
    bound = centralized_winning_probability(3, 1, trials=TRIALS, seed=5)
    return [
        "feasibility bound",
        "(not a protocol)",
        f"{bound.estimate:.5f}",
        "upper bound",
    ]


def main() -> None:
    engine = MonteCarloEngine(seed=99)
    rows = [
        no_communication_row(engine),
        chain_row(engine),
        full_information_row(engine),
        feasibility_row(),
    ]
    print(
        format_table(
            ["protocol", "communication", "P(win)", "note"],
            rows,
            title="Three players, capacity 1: the value of communication",
        )
    )
    print()
    print(
        "The gap between row 1 and row 4 is the total economic value of\n"
        "information in this system; intermediate patterns buy part of it."
    )


if __name__ == "__main__":
    main()
