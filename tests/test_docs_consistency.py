"""Docs-vs-code consistency: the numbers quoted in the documentation
must match what the library computes.

EXPERIMENTS.md and README.md quote headline values; these tests parse
the claims out of the prose and recompute them, so documentation rot
fails CI instead of misleading readers.
"""

import re
from fractions import Fraction
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing {name}"
    return path.read_text()


class TestExperimentsMd:
    @pytest.fixture(scope="class")
    def text(self):
        return read("EXPERIMENTS.md")

    def test_quotes_the_exact_optimal_threshold(self, text):
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        opt = optimal_symmetric_threshold(3, 1)
        quoted = "0.6220355269"
        assert quoted in text
        # compare at the quoted precision (truncation, not rounding)
        assert f"{float(opt.beta):.12f}".startswith(quoted)

    def test_quotes_the_oblivious_fraction(self, text):
        assert "5/12" in text
        from repro.core.oblivious import (
            optimal_oblivious_winning_probability,
        )

        assert optimal_oblivious_winning_probability(1, 3) == Fraction(5, 12)

    def test_d2_values_match(self, text):
        assert "559/1296" in text
        from repro.core.oblivious import (
            optimal_oblivious_winning_probability,
        )

        assert optimal_oblivious_winning_probability(
            Fraction(4, 3), 4
        ) == Fraction(559, 1296)

    def test_e8_mixture_numbers_match(self, text):
        assert "0.549144" in text, "E8 p* not quoted in EXPERIMENTS.md"
        match = re.search(r"(0\.549144)", text)
        from repro.core.randomized import best_symmetric_mixture_exact
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        beta = optimal_symmetric_threshold(4, Fraction(4, 3)).beta
        p_star, _ = best_symmetric_mixture_exact(4, Fraction(4, 3), beta)
        assert abs(float(p_star) - float(match.group(1))) < 1e-3

    def test_e10_crossover_matches(self, text):
        assert "1.32312" in text or "1.3231" in text
        from repro.experiments.sensitivity import (
            find_improvement_crossover,
        )

        x = find_improvement_crossover(
            4, 1, Fraction(4, 3), Fraction(1, 10**4)
        )
        assert abs(float(x) - 1.3231) < 1e-3

    def test_uniformity_table_rows_match(self, text):
        from repro.core.oblivious import (
            optimal_oblivious_winning_probability,
        )

        for n, quoted in (
            (4, "0.182292"),
            (5, "0.065625"),
            (6, "0.020052"),
        ):
            assert quoted in text
            value = float(optimal_oblivious_winning_probability(1, n))
            assert f"{value:.6f}" == quoted


class TestReadme:
    @pytest.fixture(scope="class")
    def text(self):
        return read("README.md")

    def test_quickstart_numbers_are_current(self, text):
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        opt = optimal_symmetric_threshold(3, 1)
        assert "0.62204" in text
        assert f"{float(opt.beta):.5f}" == "0.62204"
        assert "0.54463" in text
        assert f"{float(opt.probability):.5f}" == "0.54463"

    def test_example_scripts_exist(self, text):
        for match in re.finditer(r"`examples/([a-z_]+\.py)`", text):
            assert (ROOT / "examples" / match.group(1)).exists(), (
                f"README references missing example {match.group(1)}"
            )

    def test_bench_files_exist(self, text):
        for match in re.finditer(
            r"`benchmarks/(test_bench_[a-z0-9_]+\.py)`", text
        ):
            assert (ROOT / "benchmarks" / match.group(1)).exists()


class TestDesignMd:
    def test_module_inventory_is_real(self):
        text = read("DESIGN.md")
        # every module named in the layout block must exist
        for match in re.finditer(r"([a-z_]+\.py)", text):
            name = match.group(1)
            hits = (
                list((ROOT / "src").rglob(name))
                + list((ROOT / "benchmarks").glob(name))
                + list((ROOT / "tests").glob(name))
                + list((ROOT / "examples").glob(name))
                + [ROOT / name]
            )
            assert any(p.exists() for p in hits), (
                f"DESIGN.md names {name} but it does not exist"
            )
