"""Tests for repro.simulation.results_store."""

import json
from fractions import Fraction

import pytest

from repro.simulation.results_store import (
    load_sweep,
    merge_sweeps,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.simulation.runner import SweepPoint, SweepResult, sweep_thresholds


def exact_sweep() -> SweepResult:
    return sweep_thresholds(3, 1, grid_size=5)


def simulated_sweep() -> SweepResult:
    return sweep_thresholds(
        3, 1, grid_size=3, simulate=True, trials=5_000, seed=1
    )


class TestRoundTrip:
    def test_exact_only(self, tmp_path):
        original = exact_sweep()
        path = save_sweep(original, tmp_path / "sweep.json")
        loaded = load_sweep(path)
        assert loaded.label == original.label
        assert loaded.parameters == original.parameters
        assert loaded.exact_values == original.exact_values
        assert all(p.simulated is None for p in loaded.points)

    def test_with_simulation(self, tmp_path):
        original = simulated_sweep()
        loaded = load_sweep(save_sweep(original, tmp_path / "s.json"))
        for a, b in zip(original.points, loaded.points):
            assert a.exact == b.exact  # exactness survives the disk
            assert a.simulated == b.simulated
            assert a.interval == pytest.approx(b.interval)
        assert loaded.all_consistent()

    def test_exact_values_stored_as_fractions(self, tmp_path):
        path = save_sweep(exact_sweep(), tmp_path / "s.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert payload["points"][0]["exact"] == "1/6"

    def test_creates_parent_directories(self, tmp_path):
        path = save_sweep(exact_sweep(), tmp_path / "deep/nested/s.json")
        assert path.exists()


class TestValidation:
    def test_wrong_schema_version(self):
        payload = sweep_to_dict(exact_sweep())
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            sweep_from_dict(payload)

    def test_missing_fields(self):
        with pytest.raises(ValueError):
            sweep_from_dict({"schema_version": 1})

    def test_malformed_point(self):
        payload = sweep_to_dict(exact_sweep())
        payload["points"][0]["exact"] = "not-a-fraction"
        with pytest.raises(ValueError, match="malformed point 0"):
            sweep_from_dict(payload)

    @pytest.mark.parametrize(
        "interval",
        [
            [0.1],  # too short
            [0.1, 0.2, 0.3],  # too long
            ["lo", "hi"],  # non-numeric
            [0.1, None],  # non-numeric edge
            [True, False],  # bools are not measurements
            0.5,  # not a list at all
        ],
    )
    def test_malformed_interval_rejected(self, interval):
        payload = sweep_to_dict(simulated_sweep())
        payload["points"][1]["interval"] = interval
        with pytest.raises(ValueError, match="malformed point 1"):
            sweep_from_dict(payload)

    def test_inverted_interval_rejected(self):
        payload = sweep_to_dict(simulated_sweep())
        payload["points"][0]["interval"] = [0.9, 0.1]
        with pytest.raises(ValueError, match="malformed point 0"):
            sweep_from_dict(payload)

    def test_degenerate_interval_accepted(self):
        """lo == hi is a legal (zero-width) interval."""
        payload = sweep_to_dict(simulated_sweep())
        payload["points"][0]["interval"] = [0.5, 0.5]
        loaded = sweep_from_dict(payload)
        assert loaded.points[0].interval == (0.5, 0.5)

    @pytest.mark.parametrize("simulated", [-0.01, 1.5, "0.4", True])
    def test_bad_simulated_rejected(self, simulated):
        payload = sweep_to_dict(simulated_sweep())
        payload["points"][2]["simulated"] = simulated
        with pytest.raises(ValueError, match="malformed point 2"):
            sweep_from_dict(payload)

    def test_boundary_simulated_accepted(self):
        payload = sweep_to_dict(simulated_sweep())
        payload["points"][0]["simulated"] = 0.0
        payload["points"][1]["simulated"] = 1.0
        loaded = sweep_from_dict(payload)
        assert loaded.points[0].simulated == 0.0
        assert loaded.points[1].simulated == 1.0


class TestMerge:
    def test_disjoint_grids(self):
        a = sweep_thresholds(3, 1, grid=[Fraction(0), Fraction(1, 2)])
        b = sweep_thresholds(3, 1, grid=[Fraction(1, 4), Fraction(3, 4)])
        merged = merge_sweeps([a, b])
        assert merged.parameters == [
            Fraction(0),
            Fraction(1, 4),
            Fraction(1, 2),
            Fraction(3, 4),
        ]

    def test_duplicates_deduped(self):
        a = sweep_thresholds(3, 1, grid=[Fraction(1, 2)])
        merged = merge_sweeps([a, a])
        assert len(merged.points) == 1

    def test_simulated_point_wins(self):
        exact = sweep_thresholds(3, 1, grid=[Fraction(1, 2)])
        sim = sweep_thresholds(
            3,
            1,
            grid=[Fraction(1, 2)],
            simulate=True,
            trials=2_000,
            seed=2,
        )
        merged = merge_sweeps([exact, sim])
        assert merged.points[0].simulated is not None
        merged_other_order = merge_sweeps([sim, exact])
        assert merged_other_order.points[0].simulated is not None

    def test_conflicting_exact_values_rejected(self):
        a = SweepResult(
            label="x",
            points=[SweepPoint(Fraction(1, 2), Fraction(1, 3))],
        )
        b = SweepResult(
            label="x",
            points=[SweepPoint(Fraction(1, 2), Fraction(1, 4))],
        )
        with pytest.raises(ValueError, match="conflicting"):
            merge_sweeps([a, b])

    def test_label_mismatch_rejected(self):
        a = sweep_thresholds(3, 1, grid=[Fraction(1, 2)])
        b = sweep_thresholds(4, 1, grid=[Fraction(1, 2)])
        with pytest.raises(ValueError, match="labels"):
            merge_sweeps([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_sweeps([])

    def test_resume_workflow(self, tmp_path):
        """The intended use: run half the grid, save, run the rest,
        merge, and get the full sweep back."""
        first = sweep_thresholds(3, 1, grid=[Fraction(i, 10) for i in range(5)])
        save_sweep(first, tmp_path / "part1.json")
        second = sweep_thresholds(
            3, 1, grid=[Fraction(i, 10) for i in range(5, 11)]
        )
        save_sweep(second, tmp_path / "part2.json")
        merged = merge_sweeps(
            [
                load_sweep(tmp_path / "part1.json"),
                load_sweep(tmp_path / "part2.json"),
            ]
        )
        full = sweep_thresholds(3, 1, grid_size=11)
        assert merged.parameters == full.parameters
        assert merged.exact_values == full.exact_values


class TestCrashSafety:
    """save_sweep must be atomic (temp file + fsync + os.replace) and
    load_sweep must turn every corruption mode into a clear
    ResultsStoreError naming the path -- never a bare
    json.JSONDecodeError or KeyError."""

    def test_corrupt_byte_raises_results_store_error(self, tmp_path):
        from repro.simulation.results_store import ResultsStoreError

        path = save_sweep(exact_sweep(), tmp_path / "sweep.json")
        payload = bytearray(path.read_bytes())
        middle = len(payload) // 2
        payload[middle] = 0x00  # flip one byte mid-file
        path.write_bytes(bytes(payload))
        with pytest.raises(ResultsStoreError) as info:
            load_sweep(path)
        assert "sweep.json" in str(info.value)
        assert isinstance(info.value, ValueError)  # compat with old API

    def test_truncated_file_raises_results_store_error(self, tmp_path):
        from repro.simulation.results_store import ResultsStoreError

        path = save_sweep(exact_sweep(), tmp_path / "sweep.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ResultsStoreError):
            load_sweep(path)

    def test_missing_file_raises_results_store_error(self, tmp_path):
        from repro.simulation.results_store import ResultsStoreError

        with pytest.raises(ResultsStoreError) as info:
            load_sweep(tmp_path / "absent.json")
        assert "absent.json" in str(info.value)

    def test_schema_violation_names_the_path(self, tmp_path):
        from repro.simulation.results_store import ResultsStoreError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ResultsStoreError) as info:
            load_sweep(path)
        assert "bad.json" in str(info.value)

    def test_non_object_payload_rejected(self, tmp_path):
        from repro.simulation.results_store import ResultsStoreError

        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ResultsStoreError):
            load_sweep(path)

    def test_save_replaces_atomically(self, tmp_path):
        # overwriting an existing file must leave either the old or the
        # new content -- simulate a writer crash by making the dump fail
        # and check the original survives untouched, with no temp litter
        import repro.simulation.results_store as store

        path = save_sweep(exact_sweep(), tmp_path / "sweep.json")
        before = path.read_text()

        class Explodes:
            pass

        with pytest.raises(TypeError):
            # non-serialisable object raises inside json.dump
            result = exact_sweep()
            result.label = Explodes()  # type: ignore[assignment]
            save_sweep(result, path)
        assert path.read_text() == before
        leftovers = [
            p for p in path.parent.iterdir() if p.name != path.name
        ]
        assert leftovers == []

    def test_save_then_load_still_round_trips(self, tmp_path):
        original = simulated_sweep()
        loaded = load_sweep(save_sweep(original, tmp_path / "s.json"))
        assert [p.simulated for p in loaded.points] == [
            p.simulated for p in original.points
        ]
