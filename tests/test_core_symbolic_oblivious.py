"""Tests for repro.core.symbolic_oblivious (Theorem 4.1 as a polynomial)."""

from fractions import Fraction

import pytest

from repro.core.oblivious import oblivious_winning_probability
from repro.core.optimality import oblivious_partial
from repro.core.symbolic_oblivious import (
    exchange_difference,
    oblivious_winning_polynomial,
    optimality_system,
)
from repro.symbolic.multivariate import MultiPoly


class TestWinningPolynomial:
    def test_multilinear(self):
        for n in (2, 3, 4):
            poly = oblivious_winning_polynomial(1, n)
            assert poly.is_multilinear()
            assert poly.nvars == n

    def test_matches_numeric_evaluator(self):
        poly = oblivious_winning_polynomial(Fraction(4, 3), 3)
        for alphas in (
            [Fraction(1, 2)] * 3,
            [Fraction(1, 3), Fraction(2, 5), Fraction(7, 9)],
            [Fraction(0), Fraction(1), Fraction(1, 2)],
        ):
            assert poly(alphas) == oblivious_winning_probability(
                Fraction(4, 3), alphas
            )

    def test_permutation_symmetry(self):
        poly = oblivious_winning_polynomial(1, 3)
        for i in range(3):
            for j in range(i + 1, 3):
                assert poly.swap_variables(i, j) == poly

    def test_n2_closed_form(self):
        # n=2, t=1: phi(0)=phi(2)=1/2, phi(1)=1
        # P = 1/2 a1 a2 + (1-a1) a2 + a1 (1-a2) + 1/2 (1-a1)(1-a2)
        #   = 1/2 + 1/2 a1 + 1/2 a2 - a1 a2
        poly = oblivious_winning_polynomial(1, 2)
        expected = MultiPoly(
            2,
            {
                (0, 0): Fraction(1, 2),
                (1, 0): Fraction(1, 2),
                (0, 1): Fraction(1, 2),
                (1, 1): Fraction(-1),
            },
        )
        assert poly == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            oblivious_winning_polynomial(1, 0)


class TestOptimalitySystem:
    def test_gradient_matches_numeric_partial(self):
        system = optimality_system(1, 3)
        alphas = [Fraction(1, 4), Fraction(3, 5), Fraction(1, 2)]
        for k, gradient_poly in enumerate(system):
            assert gradient_poly(alphas) == oblivious_partial(
                1, alphas, k
            )

    def test_fair_coin_zeroes_the_system(self):
        for n in (2, 3, 4, 5):
            for t in (Fraction(1, 2), 1, Fraction(4, 3)):
                system = optimality_system(t, n)
                half = [Fraction(1, 2)] * n
                assert all(g(half) == 0 for g in system)

    def test_partials_are_multilinear_and_independent_of_own_variable(self):
        # P is multilinear, so dP/da_k cannot mention a_k
        system = optimality_system(1, 4)
        for k, g in enumerate(system):
            assert g.degree_in(k) <= 0


class TestLemma45Exchange:
    def test_difference_vanishes_on_diagonal(self):
        """Lemma 4.5: dP/da_j - dP/da_k = 0 whenever a_j = a_k.

        Verified as a polynomial identity: substituting the same fresh
        value into both slots yields the zero polynomial for every
        tested value, and -- stronger -- substituting slot j's variable
        into slot k gives a polynomial identical to zero.
        """
        n = 4
        diff = exchange_difference(1, n, 1, 3)
        # substitute a common value c into both positions: zero for all c
        for c in (Fraction(0), Fraction(1, 3), Fraction(1, 2), Fraction(1)):
            collapsed = diff.substitute(1, c).substitute(3, c)
            assert collapsed.is_zero()

    def test_difference_nonzero_off_diagonal(self):
        diff = exchange_difference(1, 3, 0, 1)
        value = diff([Fraction(1, 4), Fraction(3, 4), Fraction(1, 2)])
        assert value != 0

    def test_antisymmetry(self):
        d1 = exchange_difference(1, 3, 0, 2)
        d2 = exchange_difference(1, 3, 2, 0)
        assert d1 == -d2

    def test_same_player_rejected(self):
        with pytest.raises(ValueError):
            exchange_difference(1, 3, 1, 1)
