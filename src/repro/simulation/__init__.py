"""Monte Carlo simulation substrate.

The paper's results are exact; this subpackage is the independent
"testbed" that validates them by actually executing the distributed
protocol on sampled inputs:

* :mod:`repro.simulation.rng` -- deterministic seed management so every
  experiment is reproducible from one root seed.
* :mod:`repro.simulation.statistics` -- binomial summaries with Wilson
  confidence intervals (the right interval for probabilities near 0/1).
* :mod:`repro.simulation.engine` -- the trial engine: estimate a
  system's winning probability, vectorised where possible.
* :mod:`repro.simulation.runner` -- parameter sweeps (threshold grids,
  player counts) producing experiment records.
* :mod:`repro.simulation.parallel` -- the sharded executor: split a
  trial budget into per-shard named seed streams and run them across a
  process pool, bit-identically for any worker count.
* :mod:`repro.simulation.faulttolerance` -- retry policies, wall-clock
  timeouts, deterministic fault injection and shard-level
  checkpoint/resume for the sharded executor; every recovery path
  replays named streams, so faults never change results.
"""

from repro.simulation.adaptive import AdaptiveResult, estimate_until_precise
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.faulttolerance import (
    CheckpointError,
    CheckpointFingerprintError,
    FaultPlan,
    FaultSpec,
    FaultToleranceConfig,
    FaultToleranceError,
    RetryPolicy,
    ShardFailure,
    ShardRetriesExhaustedError,
    load_checkpoint,
)
from repro.simulation.parallel import (
    ShardedEstimate,
    ShardOutcome,
    count_wins,
    estimate_winning_probability_sharded,
    plan_shards,
    shard_stream_name,
)
from repro.simulation.results_store import (
    ResultsStoreError,
    load_sweep,
    merge_sweeps,
    save_sweep,
)
from repro.simulation.rng import SeedSequenceFactory
from repro.simulation.runner import SweepResult, sweep_thresholds, sweep_players
from repro.simulation.statistics import BinomialSummary, wilson_interval
from repro.simulation.variance_reduction import (
    VarianceReducedEstimate,
    antithetic_winning_probability,
    stratified_threshold_winning_probability,
)

__all__ = [
    "AdaptiveResult",
    "BinomialSummary",
    "CheckpointError",
    "CheckpointFingerprintError",
    "FaultPlan",
    "FaultSpec",
    "FaultToleranceConfig",
    "FaultToleranceError",
    "ResultsStoreError",
    "RetryPolicy",
    "ShardFailure",
    "ShardOutcome",
    "ShardRetriesExhaustedError",
    "ShardedEstimate",
    "VarianceReducedEstimate",
    "antithetic_winning_probability",
    "count_wins",
    "estimate_until_precise",
    "estimate_winning_probability_sharded",
    "load_checkpoint",
    "load_sweep",
    "merge_sweeps",
    "plan_shards",
    "save_sweep",
    "shard_stream_name",
    "stratified_threshold_winning_probability",
    "MonteCarloEngine",
    "SeedSequenceFactory",
    "SweepResult",
    "sweep_players",
    "sweep_thresholds",
    "wilson_interval",
]
