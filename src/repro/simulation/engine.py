"""The Monte Carlo trial engine.

Estimates the winning probability of a :class:`DistributedSystem` by
drawing input vectors ``x ~ U[0, 1]^n``, executing the protocol, and
counting wins.  Two execution paths:

* a **vectorised** path (no-communication systems): all trials at once
  in numpy, handling millions of trials per second;
* a **scalar** path (communicating systems): one protocol execution per
  trial, exercising the full message-visibility machinery.

Both paths live in :func:`repro.simulation.parallel.count_wins`, which
is also what every shard of the parallel executor runs -- pass
``workers=`` to split the budget across a process pool (see
:mod:`repro.simulation.parallel` for the seed-derivation scheme that
keeps the result independent of the worker count).

The engine never invents randomness: callers supply either a generator
or a :class:`SeedSequenceFactory`, keeping experiments reproducible.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.errors import ValidationError
from repro.model.system import DistributedSystem
from repro.observability import Instrumentation, get_instrumentation
from repro.validation.contracts import check_probability

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.model.inputs import InputDistribution
    from repro.observability.progress import ProgressCallback
    from repro.simulation.faulttolerance import FaultToleranceConfig
from repro.simulation.parallel import (
    count_wins,
    estimate_winning_probability_sharded,
)
from repro.simulation.rng import SeedSequenceFactory
from repro.simulation.statistics import BinomialSummary

__all__ = ["MonteCarloEngine"]


class MonteCarloEngine:
    """Runs repeated protocol trials and summarises the win rate."""

    def __init__(
        self,
        seed: Union[int, SeedSequenceFactory, None] = None,
        batch_size: int = 262_144,
        instrumentation: Optional[Instrumentation] = None,
    ):
        if isinstance(seed, SeedSequenceFactory):
            self._factory = seed
        else:
            self._factory = SeedSequenceFactory(seed)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = batch_size
        self._instrumentation = instrumentation

    @property
    def factory(self) -> SeedSequenceFactory:
        return self._factory

    @property
    def instrumentation(self) -> Instrumentation:
        """The instrument this engine records into: the one passed at
        construction, else the currently active one (a no-op unless a
        caller activated instrumentation).  Never touches any random
        stream, so results are identical with it on or off."""
        if self._instrumentation is not None:
            return self._instrumentation
        return get_instrumentation()

    def estimate_winning_probability(
        self,
        system: DistributedSystem,
        trials: int = 200_000,
        stream: str = "winning-probability",
        z_score: float = 3.89,
        inputs: Optional["InputDistribution"] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        progress: Optional["ProgressCallback"] = None,
        fault_tolerance: Optional["FaultToleranceConfig"] = None,
    ) -> BinomialSummary:
        """Estimate ``P_A(delta)`` over *trials* independent executions.

        *inputs* selects the per-player input distribution; the default
        is the paper's ``U[0, 1]``.  Pass any
        :class:`repro.model.inputs.InputDistribution` to study the
        Section 6 extensions (Beta inputs, mixtures, scaled uniforms).

        *workers* selects the execution mode.  ``None`` (the default)
        keeps the historical single-stream serial loop, so existing
        seeded experiments reproduce unchanged.  Any integer ``>= 1``
        switches to the sharded executor: the budget is split into
        *shards* chunks (default
        :data:`repro.simulation.parallel.DEFAULT_SHARDS`), each drawing
        from its own named child stream, and the summary is
        bit-identical for every worker count -- ``workers=1`` simply
        runs the shards in-process.

        *progress* (sharded mode only) is invoked once per completed
        shard; see :func:`estimate_winning_probability_sharded`.  When
        instrumentation is active (see :mod:`repro.observability`),
        the call is wrapped in a span and contributes trial/win
        counters, timing histograms, and trials/sec throughput --
        without consuming any randomness, so the summary is unchanged.

        *fault_tolerance* configures per-shard retries, wall-clock
        timeouts, fault injection and checkpoint/resume on the sharded
        path (see
        :class:`repro.simulation.faulttolerance.FaultToleranceConfig`);
        passing it implies sharded execution even when *workers* and
        *shards* are unset, because retry and checkpoint semantics are
        defined per shard.  None of the recovery machinery perturbs the
        estimate: a retried or resumed shard replays its own named
        stream, so the summary stays bit-identical.
        """
        if trials < 1:
            raise ValidationError(f"trials must be >= 1, got {trials}")
        instr = self.instrumentation
        if workers is None and shards is None and fault_tolerance is None:
            with instr.span(
                "engine.estimate", stream=stream, trials=trials
            ):
                rng = self._factory.generator(stream)
                start = time.perf_counter()
                wins = count_wins(
                    system,
                    trials,
                    rng,
                    inputs=inputs,
                    batch_size=self._batch_size,
                )
                elapsed = time.perf_counter() - start
            if instr.enabled:
                instr.increment("engine.serial_calls")
                instr.increment("engine.trials", trials)
                instr.increment("engine.wins", wins)
                instr.observe("engine.serial_seconds", elapsed)
                instr.throughput.record(trials, elapsed)
            summary = BinomialSummary(
                successes=wins, trials=trials, z_score=z_score
            )
            check_probability("engine.estimate", summary.estimate)
            return summary
        estimate = estimate_winning_probability_sharded(
            system,
            trials,
            self._factory,
            stream=stream,
            shards=shards,
            workers=1 if workers is None else workers,
            inputs=inputs,
            batch_size=self._batch_size,
            z_score=z_score,
            instrumentation=instr,
            progress=progress,
            fault_tolerance=fault_tolerance,
        )
        if instr.enabled:
            instr.increment("engine.trials", trials)
            instr.increment("engine.wins", estimate.summary.successes)
        check_probability("engine.estimate", estimate.summary.estimate)
        return estimate.summary

    def estimate_bin_load_distribution(
        self,
        system: DistributedSystem,
        trials: int = 100_000,
        stream: str = "bin-loads",
        inputs: Optional["InputDistribution"] = None,
    ) -> np.ndarray:
        """Sample the pair ``(Sigma_0, Sigma_1)`` -- returns ``(trials, 2)``.

        Used to validate the conditional-distribution lemmas: given the
        output vector, the bin loads are sums of conditioned uniforms.
        Scalar path only (it needs per-trial outcomes).

        *inputs* selects the per-player input distribution exactly as in
        :meth:`estimate_winning_probability`; the default is ``U[0, 1]``.
        """
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        with self.instrumentation.span(
            "engine.bin_loads", stream=stream, trials=trials
        ):
            rng = self._factory.generator(stream)
            loads = np.empty((trials, 2))
            for t in range(trials):
                if inputs is None:
                    vector = rng.random(system.n)
                else:
                    vector = inputs.sample(rng, 1, system.n)[0]
                outcome = system.run(vector, rng)
                loads[t, 0] = outcome.load_bin0
                loads[t, 1] = outcome.load_bin1
            return loads

    def __repr__(self) -> str:
        return (
            f"MonteCarloEngine(seed={self._factory.root_seed}, "
            f"batch_size={self._batch_size})"
        )
