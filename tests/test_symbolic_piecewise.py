"""Tests for repro.symbolic.piecewise."""

from fractions import Fraction

import pytest

from repro.errors import PiecewiseDomainError, ReproError
from repro.symbolic.piecewise import Piece, PiecewisePolynomial
from repro.symbolic.polynomial import Polynomial


def make_hat() -> PiecewisePolynomial:
    """The tent function: x on [0, 1/2], 1 - x on [1/2, 1]."""
    return PiecewisePolynomial.from_breakpoints(
        [0, Fraction(1, 2), 1],
        [Polynomial([0, 1]), Polynomial([1, -1])],
    )


class TestPiece:
    def test_validation(self):
        with pytest.raises(ValueError):
            Piece(Fraction(1), Fraction(0), Polynomial.one())

    def test_inverted_piece_raises_typed_error(self):
        with pytest.raises(PiecewiseDomainError):
            Piece(Fraction(1), Fraction(0), Polynomial.one())

    def test_zero_width_piece_rejected(self):
        # A zero-width piece can never own a point under half-open
        # dispatch; accepting one would silently swallow its polynomial.
        with pytest.raises(PiecewiseDomainError):
            Piece(Fraction(1, 2), Fraction(1, 2), Polynomial.one())

    def test_domain_error_is_repro_and_value_error(self):
        try:
            Piece(Fraction(1), Fraction(0), Polynomial.one())
        except PiecewiseDomainError as exc:
            assert isinstance(exc, ReproError)
            assert isinstance(exc, ValueError)
        else:
            pytest.fail("expected PiecewiseDomainError")

    def test_contains_and_width(self):
        p = Piece(Fraction(0), Fraction(1, 2), Polynomial.one())
        assert p.contains(Fraction(1, 4))
        assert p.contains(Fraction(1, 2))
        assert not p.contains(Fraction(3, 4))
        assert p.width() == Fraction(1, 2)

    def test_owns_is_half_open(self):
        p = Piece(Fraction(0), Fraction(1, 2), Polynomial.one())
        assert p.owns(Fraction(0))
        assert not p.owns(Fraction(1, 2))
        assert p.owns(Fraction(1, 2), last=True)


class TestConstruction:
    def test_from_breakpoints(self):
        hat = make_hat()
        assert len(hat.pieces) == 2
        assert hat.lower == 0 and hat.upper == 1

    def test_breakpoints_polynomials_length_mismatch(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial.from_breakpoints(
                [0, 1], [Polynomial.one(), Polynomial.one()]
            )

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial(
                [
                    Piece(Fraction(0), Fraction(1, 3), Polynomial.one()),
                    Piece(Fraction(1, 2), Fraction(1), Polynomial.one()),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial([])

    def test_from_sampler(self):
        # the sampler sees midpoints 1/4 and 3/4
        seen = []

        def builder(mid):
            seen.append(mid)
            return Polynomial.constant(mid)

        pw = PiecewisePolynomial.from_sampler(
            builder, [0, Fraction(1, 2), 1]
        )
        assert seen == [Fraction(1, 4), Fraction(3, 4)]
        assert pw(Fraction(1, 10)) == Fraction(1, 4)

    def test_from_sampler_dedupes_breakpoints(self):
        pw = PiecewisePolynomial.from_sampler(
            lambda mid: Polynomial.one(), [0, 0, 1, 1, Fraction(1, 2)]
        )
        assert len(pw.pieces) == 2

    def test_from_sampler_needs_two_points(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial.from_sampler(
                lambda mid: Polynomial.one(), [0]
            )

    def test_from_breakpoints_rejects_repeated(self):
        # A repeated breakpoint used to build a zero-width piece that
        # silently mis-dispatched; now it is a typed error.
        with pytest.raises(PiecewiseDomainError):
            PiecewisePolynomial.from_breakpoints(
                [0, Fraction(1, 2), Fraction(1, 2), 1],
                [Polynomial.one()] * 3,
            )

    def test_from_breakpoints_rejects_out_of_order(self):
        with pytest.raises(PiecewiseDomainError):
            PiecewisePolynomial.from_breakpoints(
                [0, Fraction(3, 4), Fraction(1, 2), 1],
                [Polynomial.one()] * 3,
            )


class TestEvaluation:
    def test_values(self):
        hat = make_hat()
        assert hat(Fraction(1, 4)) == Fraction(1, 4)
        assert hat(Fraction(3, 4)) == Fraction(1, 4)
        assert hat(Fraction(1, 2)) == Fraction(1, 2)

    def test_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            make_hat()(Fraction(3, 2))

    def test_piece_at_interior_breakpoint_prefers_right(self):
        # Half-open dispatch: a shared breakpoint belongs to the piece
        # that starts there (matching the batch layer's searchsorted).
        hat = make_hat()
        assert hat.piece_at(Fraction(1, 2)).lower == Fraction(1, 2)

    def test_piece_at_lower_endpoint(self):
        assert make_hat().piece_at(Fraction(0)).lower == 0

    def test_piece_at_upper_endpoint_stays_with_last_piece(self):
        assert make_hat().piece_at(Fraction(1)).lower == Fraction(1, 2)

    def test_every_breakpoint_owned_by_exactly_one_piece(self):
        hat = make_hat()
        last = len(hat.pieces) - 1
        for bp in hat.breakpoints:
            owners = [
                i
                for i, p in enumerate(hat.pieces)
                if p.owns(bp, last=(i == last))
            ]
            assert owners == [hat.piece_index_at(bp)]

    def test_float_evaluation(self):
        assert make_hat().evaluate_float(0.25) == pytest.approx(0.25)

    def test_float_evaluation_is_true_horner(self):
        # The float path must agree with exact evaluation at exactly
        # representable points without any Fraction round-trip.
        hat = make_hat()
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert hat.evaluate_float(x) == float(hat(Fraction(x)))

    def test_float_dispatch_at_breakpoint_uses_right_piece(self):
        # A function discontinuous at the breakpoint exposes which
        # piece float dispatch picks: half-open means the right piece.
        step = PiecewisePolynomial.from_breakpoints(
            [0, Fraction(1, 2), 1],
            [Polynomial.zero(), Polynomial.one()],
        )
        assert step.evaluate_float(0.5) == 1.0
        assert step.evaluate_float(1.0) == 1.0
        assert step.evaluate_float(0.0) == 0.0

    def test_float_evaluation_outside_domain_rejected(self):
        with pytest.raises(PiecewiseDomainError):
            make_hat().evaluate_float(1.5)

    def test_sample(self):
        pts = make_hat().sample(5)
        assert len(pts) == 5
        assert pts[0] == (Fraction(0), Fraction(0))
        assert pts[-1] == (Fraction(1), Fraction(0))


class TestTransformations:
    def test_derivative(self):
        d = make_hat().derivative()
        assert d(Fraction(1, 4)) == 1
        assert d(Fraction(3, 4)) == -1

    def test_simplify_merges_equal_pieces(self):
        pw = PiecewisePolynomial.from_breakpoints(
            [0, Fraction(1, 2), 1],
            [Polynomial([2]), Polynomial([2])],
        )
        assert len(pw.simplify().pieces) == 1

    def test_simplify_keeps_distinct_pieces(self):
        assert len(make_hat().simplify().pieces) == 2

    def test_addition_merges_breakpoints(self):
        hat = make_hat()
        other = PiecewisePolynomial.from_breakpoints(
            [0, Fraction(1, 3), 1],
            [Polynomial([1]), Polynomial([0])],
        )
        total = hat + other
        assert set(total.breakpoints) >= {
            Fraction(0),
            Fraction(1, 3),
            Fraction(1, 2),
            Fraction(1),
        }
        assert total(Fraction(1, 4)) == Fraction(1, 4) + 1

    def test_subtraction_and_multiplication(self):
        hat = make_hat()
        assert (hat - hat)(Fraction(1, 3)) == 0
        assert (hat * hat)(Fraction(1, 4)) == Fraction(1, 16)

    def test_domain_mismatch_rejected(self):
        hat = make_hat()
        other = PiecewisePolynomial.from_breakpoints(
            [0, 2], [Polynomial.one()]
        )
        with pytest.raises(ValueError):
            hat + other

    def test_scale(self):
        assert make_hat().scale(4)(Fraction(1, 4)) == 1


class TestOptimisation:
    def test_maximize_hat(self):
        x, v = make_hat().maximize()
        assert x == Fraction(1, 2)
        assert v == Fraction(1, 2)

    def test_minimize_hat(self):
        x, v = make_hat().minimize()
        assert v == 0
        assert x in (Fraction(0), Fraction(1))

    def test_interior_stationary_point(self):
        # -(x - 1/3)^2 has its max at 1/3, inside the piece
        bump = PiecewisePolynomial.from_breakpoints(
            [0, 1],
            [Polynomial([Fraction(-1, 9), Fraction(2, 3), -1])],
        )
        x, v = bump.maximize()
        # 1/3 is not hit exactly by binary bisection; the enclosure is
        # within the default 1e-12 tolerance.
        assert abs(x - Fraction(1, 3)) <= Fraction(1, 10**12)
        assert -Fraction(1, 10**24) <= v <= 0

    def test_critical_points_include_breakpoints(self):
        pts = make_hat().critical_points()
        assert Fraction(0) in pts
        assert Fraction(1, 2) in pts
        assert Fraction(1) in pts

    def test_maximize_ties_break_to_smallest(self):
        flat = PiecewisePolynomial.from_breakpoints(
            [0, 1], [Polynomial([7])]
        )
        x, v = flat.maximize()
        assert x == 0 and v == 7


class TestRendering:
    def test_repr_and_pretty(self):
        hat = make_hat()
        assert "2 pieces" in repr(hat)
        text = hat.pretty("b")
        assert "[0, 1/2]" in text
        assert "b" in text
