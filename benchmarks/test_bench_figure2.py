"""E2 -- Figure 2: winning probability curves, scaled capacity delta = n/3.

Same protocol as Figure 1 with the capacity growing with the player
count (the parameterization of Section 5.2.2, where n = 4 pairs with
delta = 4/3).
"""

from fractions import Fraction

from conftest import record

from repro.experiments.figures import figure2
from repro.probability.uniform_sums import irwin_hall_cdf


def test_bench_figure2_series(benchmark):
    series = benchmark(lambda: figure2(ns=(3, 4, 5), grid_size=101))
    by_n = {s.n: s for s in series}

    for n, s in by_n.items():
        assert s.delta == Fraction(n, 3)
        endpoint = irwin_hall_cdf(Fraction(n, 3), n)
        assert s.values[0] == endpoint
        assert s.values[-1] == endpoint
        assert s.maximum > endpoint
        record(
            f"figure2 n={n} (delta={s.delta})",
            beta_star=f"{float(s.argmax):.6f}",
            p_star=f"{float(s.maximum):.6f}",
        )

    # paper anchor: n = 4, delta = 4/3 optimum ~ 0.678
    assert round(float(by_n[4].argmax), 3) == 0.678

    # scaled capacity keeps the optima in a narrow band (contrast with
    # the collapse in Figure 1) -- all three maxima within [0.42, 0.56]
    for s in by_n.values():
        assert Fraction(42, 100) < s.maximum < Fraction(56, 100)
