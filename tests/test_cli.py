"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCase:
    def test_case_n3(self, capsys):
        assert main(["case", "--n", "3", "--delta", "1"]) == 0
        out = capsys.readouterr().out
        assert "beta* = 0.622" in out
        assert "P*(oblivious, alpha=1/2) = 0.4166" in out

    def test_case_fractional_delta(self, capsys):
        assert main(["case", "--n", "4", "--delta", "4/3"]) == 0
        out = capsys.readouterr().out
        assert "beta* = 0.677997" in out


class TestFigures:
    def test_figure1(self, capsys):
        assert main(["figure1", "--ns", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "beta* = 0.622036" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--ns", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "delta = n/3" in out
        assert "n=4 (delta=4/3)" in out


class TestUniformity:
    def test_fixed_delta(self, capsys):
        assert main(["uniformity", "--ns", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "0.416667" in out  # oblivious n=3 value

    def test_scaled(self, capsys):
        assert main(["uniformity", "--ns", "4", "--scaled"]) == 0
        out = capsys.readouterr().out
        assert "4/3" in out


class TestTradeoff:
    def test_runs(self, capsys):
        assert main(
            ["tradeoff", "--ns", "2", "3", "--trials", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "centralized" in out


class TestValidate:
    def test_consistent(self, capsys):
        code = main(
            [
                "validate",
                "--n",
                "3",
                "--grid-size",
                "3",
                "--trials",
                "30000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all 3 grid points consistent" in out


class TestMixture:
    def test_n4_reports_interior_optimum(self, capsys):
        assert main(["mixture", "--n", "4", "--delta", "4/3"]) == 0
        out = capsys.readouterr().out
        assert "p* = 0.549144" in out
        assert "beats BOTH" in out

    def test_n3_prefers_pure_threshold(self, capsys):
        assert main(["mixture", "--n", "3", "--delta", "1"]) == 0
        out = capsys.readouterr().out
        assert "p* = 1.000000" in out
        assert "beats BOTH" not in out


class TestParsing:
    def test_bad_delta_rejected(self):
        with pytest.raises(SystemExit):
            main(["case", "--n", "3", "--delta", "abc"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
