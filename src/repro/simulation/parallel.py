"""Sharded, parallel Monte Carlo execution.

The fixed-budget engine runs one trial loop on one stream.  At the
trial counts the balls-into-bins literature calls for (10^7-10^9 to
resolve tail probabilities), a single process is the bottleneck --
especially on the scalar path, where every trial executes the full
message-visibility machinery.  This module splits a trial budget into
**shards**, runs the shards across a process pool, and reduces the
per-shard win counts into the usual :class:`BinomialSummary`.

Reproducibility is the design constraint, not an afterthought:

* The shard plan depends only on ``(trials, shards)`` -- never on the
  worker count.  ``plan_shards(10**6, 16)`` is the same list whether it
  is executed by 1 worker or 64.
* Shard ``i`` of stream ``s`` draws from the named child stream
  ``f"{s}/shard-{i}"`` of the caller's :class:`SeedSequenceFactory`.
  Streams are keyed by name (SHA-256, see :mod:`repro.simulation.rng`),
  so a fixed root seed yields **bit-identical results regardless of
  worker count or scheduling order**.
* The reduction is a plain integer sum, which is associative and
  exact; no floating-point reduction order can perturb the summary.

Execution is **fault tolerant** (see
:mod:`repro.simulation.faulttolerance`): shards are submitted
individually, each with its own wall-clock deadline and bounded
retries, and a broken process pool is rebuilt rather than trusted.
Because a retried shard replays the *same* named stream, every
recovery path -- retry, timeout, pool reconstruction, serial salvage,
checkpoint resume -- produces the bit-identical summary; only the
wall-clock (and the failure telemetry) differs.  Completed shards are
never discarded: when the pool cannot be (re)built, only the
*missing* shards run on the in-process serial path.
"""

from __future__ import annotations

import math
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.model.system import DistributedSystem
from repro.observability import Instrumentation, get_instrumentation
from repro.observability.metrics import MetricsRegistry, MetricsSnapshot
from repro.observability.progress import ProgressCallback, ShardProgress
from repro.simulation.faulttolerance import (
    CheckpointWriter,
    CorruptShardResultError,
    FaultPlan,
    FaultToleranceConfig,
    InjectedCrashError,
    RetryPolicy,
    ShardFailure,
    ShardRetriesExhaustedError,
    ShardTimeoutError,
    load_checkpoint,
    run_fingerprint,
    system_digest,
)
from repro.simulation.rng import SeedSequenceFactory
from repro.simulation.statistics import BinomialSummary

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.model.inputs import InputDistribution

__all__ = [
    "DEFAULT_SHARDS",
    "ShardOutcome",
    "ShardedEstimate",
    "count_wins",
    "estimate_winning_probability_sharded",
    "plan_shards",
    "resolve_shard_count",
    "shard_stream_name",
]

#: Default number of shards when the caller does not choose one.  A
#: fixed constant (not ``os.cpu_count()``) so that results never depend
#: on the machine executing them; 16 shards keep 2-16 workers busy
#: while costing nothing when run serially.
DEFAULT_SHARDS = 16


def count_wins(
    system: DistributedSystem,
    trials: int,
    rng: np.random.Generator,
    inputs: Optional["InputDistribution"] = None,
    batch_size: int = 262_144,
) -> int:
    """Run *trials* executions of *system* and return the win count.

    This is the single trial loop shared by the serial engine and every
    shard worker: vectorised when all algorithms are local, scalar (one
    protocol execution per trial) otherwise.  Keeping one implementation
    is what makes "serial fallback" and "worker process" bit-identical.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    vectorised = all(alg.is_local for alg in system.algorithms)
    wins = 0
    if vectorised:
        remaining = trials
        while remaining > 0:
            batch = min(remaining, batch_size)
            if inputs is None:
                matrix = rng.random((batch, system.n))
            else:
                matrix = inputs.sample(rng, batch, system.n)
            wins += int(system.run_batch(matrix, rng).sum())
            remaining -= batch
    else:
        for _ in range(trials):
            if inputs is None:
                vector = rng.random(system.n)
            else:
                vector = inputs.sample(rng, 1, system.n)[0]
            if system.run(vector, rng).won:
                wins += 1
    return wins


def shard_stream_name(stream: str, index: int) -> str:
    """The derived stream name for shard *index* of *stream*."""
    return f"{stream}/shard-{index}"


def resolve_shard_count(trials: int, shards: Optional[int]) -> int:
    """The effective shard count: the requested (or default) count,
    capped so no shard is empty.  Independent of the worker count by
    construction."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if shards is None:
        shards = DEFAULT_SHARDS
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return min(shards, trials)


def plan_shards(trials: int, shards: Optional[int] = None) -> List[int]:
    """Per-shard trial counts summing to *trials*.

    The remainder of ``trials / shards`` is spread one trial at a time
    over the leading shards, so the plan is a pure function of its
    arguments -- the invariant the determinism suite pins down.
    """
    count = resolve_shard_count(trials, shards)
    base, extra = divmod(trials, count)
    return [base + (1 if i < extra else 0) for i in range(count)]


@dataclass(frozen=True)
class ShardOutcome:
    """The result of one shard: which stream it drew from and what it saw.

    ``elapsed_seconds`` and ``attempt`` are execution history as
    observed in this run -- observability, not outcome identity -- so
    both are excluded from equality: a run that retried shard 3 twice
    and a run that never failed compare equal when their counts agree,
    which is exactly what the determinism suite asserts."""

    index: int
    stream: str
    trials: int
    wins: int
    elapsed_seconds: Optional[float] = field(
        default=None, compare=False, repr=False
    )
    attempt: int = field(default=0, compare=False, repr=False)

    @property
    def trials_per_second(self) -> Optional[float]:
        """This shard's throughput.

        ``None`` only when timing is unavailable (``elapsed_seconds is
        None``); a measured ``0.0`` elapsed -- an instant shard --
        reports ``inf``, mirroring
        :attr:`repro.observability.progress.ShardProgress.trials_per_second`.
        """
        if self.elapsed_seconds is None:
            return None
        if self.elapsed_seconds == 0.0:
            return math.inf
        return self.trials / self.elapsed_seconds


@dataclass(frozen=True)
class ShardedEstimate:
    """A :class:`BinomialSummary` plus the per-shard breakdown and how
    the shards were actually executed.

    The fault-tolerance fields (``failures``, ``resumed_shards``,
    ``salvaged_shards``) describe *how* the run survived, never *what*
    it computed, so they are excluded from equality for the same
    reason per-shard timings are."""

    summary: BinomialSummary
    shard_outcomes: Tuple[ShardOutcome, ...]
    workers_used: int
    failures: Tuple[ShardFailure, ...] = field(default=(), compare=False)
    resumed_shards: int = field(default=0, compare=False)
    salvaged_shards: int = field(default=0, compare=False)

    @property
    def shards(self) -> int:
        return len(self.shard_outcomes)

    @property
    def retried_shards(self) -> int:
        """How many distinct shards needed at least one re-execution."""
        return len(
            {f.index for f in self.failures if f.kind != "pool"}
        )


@dataclass(frozen=True)
class _ShardTask:
    """Everything one shard execution needs, picklable for the pool."""

    system: DistributedSystem
    trials: int
    base_stream: str
    index: int
    stream: str
    root_seed: int
    inputs: Optional["InputDistribution"]
    batch_size: int
    collect: bool
    fault_plan: Optional[FaultPlan]


def _run_shard(
    task: _ShardTask, attempt: int = 0
) -> Tuple[int, float, Optional[MetricsSnapshot]]:
    """Worker entry point: rebuild the shard's generator from (root
    seed, stream name), run its trial loop, and time it.  Module-level
    so it is picklable by every multiprocessing start method.

    Any injected *compute* fault for ``(base_stream, index, attempt)``
    is applied first: a ``crash`` raises before the stream is touched,
    ``hang`` and ``slow`` sleep before running normally, and
    ``corrupt`` returns an impossible win count the parent's range
    check rejects.  Network fault kinds in the same plan are ignored
    here -- they target the distributed frame layer, and the shard
    must run normally underneath them.  A retried attempt rebuilds
    the *same* named stream, so the win count is identical no matter
    which attempt succeeds.

    Returns ``(wins, elapsed_seconds, metrics_snapshot)``; the snapshot
    is ``None`` unless metrics collection was requested, and crosses
    the process boundary by pickling so the parent can merge per-shard
    metrics exactly.  Nothing measured here touches the shard's random
    stream, so the win count is identical with metrics on or off."""
    if task.fault_plan is not None:
        spec = task.fault_plan.compute_fault(
            task.base_stream, task.index, attempt
        )
        if spec is not None:
            if spec.kind == "crash":
                raise InjectedCrashError(
                    f"injected crash: shard {task.index} attempt {attempt}"
                )
            if spec.kind == "corrupt":
                return task.trials + 1, 0.0, None
            time.sleep(spec.seconds)  # hang / slow
    rng = SeedSequenceFactory(task.root_seed).generator(task.stream)
    start = time.perf_counter()
    wins = count_wins(
        task.system,
        task.trials,
        rng,
        inputs=task.inputs,
        batch_size=task.batch_size,
    )
    elapsed = time.perf_counter() - start
    snapshot: Optional[MetricsSnapshot] = None
    if task.collect:
        registry = MetricsRegistry(enabled=True)
        registry.increment("shard.count")
        registry.increment("shard.trials", task.trials)
        registry.increment("shard.wins", wins)
        registry.observe("shard.seconds", elapsed)
        snapshot = registry.snapshot()
    return wins, elapsed, snapshot


def _pickle_failure(*objects) -> Optional[str]:
    """Why these objects cannot cross a process boundary (None if they
    can).  Only genuine serialisation failures count -- any other
    exception propagates instead of silently degrading to the serial
    path (an earlier revision swallowed *all* exceptions here, which
    hid real bugs behind a quiet slowdown)."""
    try:
        for obj in objects:
            pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        return type(exc).__name__
    return None


class _PoolUnavailableError(Exception):
    """Internal: the process pool cannot be (re)built; the caller
    salvages completed shards and finishes on the serial path."""


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for hung workers.

    ``shutdown`` alone only *asks* workers to exit after their current
    task, which a hung task never finishes; terminating the worker
    processes is the only way to reclaim them.  The pool is discarded
    afterwards, so the private ``_processes`` access is best-effort."""
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:
        pass


_Result = Tuple[int, float, Optional[MetricsSnapshot]]


def _validate_result(result: _Result, task: _ShardTask) -> None:
    """Reject impossible shard results before they reach the sum."""
    wins = result[0]
    if not isinstance(wins, int) or not 0 <= wins <= task.trials:
        raise CorruptShardResultError(
            f"shard {task.index} returned wins={wins!r}, outside "
            f"[0, {task.trials}]"
        )


def _run_serial(
    tasks: List[_ShardTask],
    pending: List[int],
    attempts: Dict[int, int],
    policy: RetryPolicy,
    on_success: Callable[[int, _Result, int], None],
    on_failure: Callable[[ShardFailure], None],
    stats: Dict[str, int],
) -> None:
    """Run *pending* shards in-process, in index order, with the same
    retry accounting as the pool path (timeouts excepted: an
    in-process shard cannot be interrupted)."""
    for index in sorted(pending):
        task = tasks[index]
        while True:
            attempt = attempts[index]
            attempts[index] = attempt + 1
            try:
                result = _run_shard(task, attempt)
                _validate_result(result, task)
            except Exception as exc:
                kind = (
                    "corrupt"
                    if isinstance(exc, CorruptShardResultError)
                    else "error"
                )
                on_failure(
                    ShardFailure(
                        index=index,
                        stream=task.stream,
                        attempt=attempt,
                        kind=kind,
                        message=str(exc),
                    )
                )
                if attempts[index] >= policy.max_attempts:
                    raise ShardRetriesExhaustedError(
                        index, task.stream, attempts[index], str(exc)
                    ) from exc
                stats["retries"] += 1
                time.sleep(
                    policy.backoff_seconds(
                        attempts[index] - 1,
                        jitter_key=(task.stream, index, attempts[index]),
                    )
                )
                continue
            on_success(index, result, attempt)
            break


def _run_pool(
    tasks: List[_ShardTask],
    pending: List[int],
    attempts: Dict[int, int],
    policy: RetryPolicy,
    workers_used: int,
    on_success: Callable[[int, _Result, int], None],
    on_failure: Callable[[ShardFailure], None],
    stats: Dict[str, int],
) -> None:
    """Run *pending* shards across a process pool, fault-tolerantly.

    Shards are submitted individually (``submit``, not ``map``) so each
    gets its own wall-clock deadline and retry budget.  Three failure
    modes, three responses:

    * a worker raises (or returns a corrupt result): the shard is
      retried after exponential backoff, up to the policy's budget,
      then :class:`ShardRetriesExhaustedError`;
    * a shard exceeds ``policy.shard_timeout``: the pool is killed
      (a hung worker cannot be cancelled), rebuilt, the timed-out
      shard charged one attempt, and every innocent in-flight shard
      resubmitted uncharged;
    * the pool itself breaks (worker segfault/OOM): the pool is
      rebuilt -- bounded by ``max_retries + 1`` reconstructions --
      and the affected shards resubmitted uncharged; a pool that
      cannot be rebuilt raises :class:`_PoolUnavailableError`, and the
      caller finishes the *missing* shards serially, keeping every
      completed result.

    Retried shards replay their original named stream, so nothing here
    can change the estimate -- only when (and where) shards run.
    """
    ready = deque(sorted(pending))
    delayed: List[Tuple[float, int]] = []  # (not-before, index)
    inflight: Dict = {}  # future -> (index, attempt, deadline)
    rebuilds_left = policy.max_retries + 1

    def new_pool() -> ProcessPoolExecutor:
        try:
            return ProcessPoolExecutor(max_workers=workers_used)
        except (OSError, PermissionError, RuntimeError) as exc:
            raise _PoolUnavailableError(str(exc)) from exc

    def rebuild_pool(old: ProcessPoolExecutor) -> ProcessPoolExecutor:
        nonlocal rebuilds_left
        stats["pool_rebuilds"] += 1
        rebuilds_left -= 1
        _kill_pool(old)
        if rebuilds_left < 0:
            raise _PoolUnavailableError(
                "process pool kept breaking; falling back to serial"
            )
        return new_pool()

    def reschedule_uncharged(index: int) -> None:
        # the shard never got to run through no fault of its own:
        # give the execution back and resubmit without backoff
        attempts[index] -= 1
        ready.append(index)

    def schedule_retry(index: int, attempt: int, kind: str, exc) -> None:
        on_failure(
            ShardFailure(
                index=index,
                stream=tasks[index].stream,
                attempt=attempt,
                kind=kind,
                message=str(exc),
            )
        )
        if attempts[index] >= policy.max_attempts:
            raise ShardRetriesExhaustedError(
                index, tasks[index].stream, attempts[index], str(exc)
            )
        stats["retries"] += 1
        not_before = time.monotonic() + policy.backoff_seconds(
            attempts[index] - 1,
            jitter_key=(tasks[index].stream, index, attempts[index]),
        )
        delayed.append((not_before, index))
        delayed.sort()

    pool = new_pool()
    try:
        while ready or delayed or inflight:
            now = time.monotonic()
            still_delayed = []
            for not_before, index in delayed:
                if not_before <= now:
                    ready.append(index)
                else:
                    still_delayed.append((not_before, index))
            delayed[:] = still_delayed

            submit_failed = False
            while ready:
                index = ready[0]
                attempt = attempts[index]
                try:
                    future = pool.submit(_run_shard, tasks[index], attempt)
                except (RuntimeError, OSError):
                    # the pool broke between waits; if work is in
                    # flight the wait loop below will observe the
                    # breakage and rebuild once, otherwise rebuild here
                    submit_failed = True
                    break
                ready.popleft()
                attempts[index] = attempt + 1
                deadline = (
                    now + policy.shard_timeout
                    if policy.shard_timeout is not None
                    else None
                )
                inflight[future] = (index, attempt, deadline)
            if submit_failed and not inflight:
                pool = rebuild_pool(pool)
                continue

            if not inflight:
                if delayed:
                    time.sleep(
                        max(0.0, delayed[0][0] - time.monotonic())
                    )
                continue

            horizons = [
                deadline
                for (_, _, deadline) in inflight.values()
                if deadline is not None
            ] + [not_before for not_before, _ in delayed]
            timeout = (
                max(0.0, min(horizons) - time.monotonic())
                if horizons
                else None
            )
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()

            broken = False
            for future in done:
                index, attempt, _ = inflight.pop(future)
                try:
                    result = future.result()
                    _validate_result(result, tasks[index])
                except BrokenProcessPool as exc:
                    broken = True
                    on_failure(
                        ShardFailure(
                            index=index,
                            stream=tasks[index].stream,
                            attempt=attempt,
                            kind="pool",
                            message=str(exc) or "process pool died",
                        )
                    )
                    reschedule_uncharged(index)
                except Exception as exc:
                    kind = (
                        "corrupt"
                        if isinstance(exc, CorruptShardResultError)
                        else "error"
                    )
                    schedule_retry(index, attempt, kind, exc)
                else:
                    on_success(index, result, attempt)
            if broken:
                for index, _, _ in inflight.values():
                    reschedule_uncharged(index)
                inflight.clear()
                pool = rebuild_pool(pool)
                continue

            expired = {
                future
                for future, (_, _, deadline) in inflight.items()
                if deadline is not None and deadline <= now
            }
            if expired:
                # a running task cannot be cancelled: kill the pool,
                # charge the timed-out shards, resubmit the innocents
                stats["timeouts"] += len(expired)
                for future, (index, attempt, _) in list(inflight.items()):
                    if future in expired:
                        schedule_retry(
                            index,
                            attempt,
                            "timeout",
                            ShardTimeoutError(
                                f"shard {index} exceeded "
                                f"{policy.shard_timeout}s wall-clock limit"
                            ),
                        )
                    else:
                        reschedule_uncharged(index)
                inflight.clear()
                stats["pool_rebuilds"] += 1
                _kill_pool(pool)
                pool = new_pool()
    finally:
        _kill_pool(pool)


def estimate_winning_probability_sharded(
    system: DistributedSystem,
    trials: int,
    factory: SeedSequenceFactory,
    stream: str = "winning-probability",
    shards: Optional[int] = None,
    workers: int = 1,
    inputs: Optional["InputDistribution"] = None,
    batch_size: int = 262_144,
    z_score: float = 3.89,
    instrumentation: Optional[Instrumentation] = None,
    progress: Optional[ProgressCallback] = None,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
) -> ShardedEstimate:
    """Estimate the winning probability over a sharded trial budget.

    The budget is split by :func:`plan_shards`; shard ``i`` draws from
    the child stream ``shard_stream_name(stream, i)``.  With a seeded
    *factory* the returned summary is bit-identical for every value of
    *workers* (including the serial fallback), because neither the plan
    nor the per-shard streams depend on how shards are scheduled.

    An unseeded factory first materialises a root seed from OS entropy
    so that all shards of *this call* still draw from disjoint streams
    of one (unreproducible) root.

    *fault_tolerance* configures per-shard retries with exponential
    backoff, a per-shard wall-clock timeout, deterministic fault
    injection (tests/chaos mode), and shard-level checkpoint/resume --
    see :class:`~repro.simulation.faulttolerance.FaultToleranceConfig`.
    Because a retried shard replays the same named stream, the summary
    is bit-identical across any combination of injected faults,
    retries, pool reconstructions and resumes; a shard that fails more
    than ``retry.max_retries`` times raises
    :class:`~repro.simulation.faulttolerance.ShardRetriesExhaustedError`
    (already-completed shards remain in the checkpoint, if one was
    requested, so the run is resumable).  The default config retries
    nothing but still *salvages*: when the pool dies, completed shards
    are kept and only the missing ones re-run serially.

    *instrumentation* (default: the active instrument, a no-op unless
    activated) receives per-shard timing histograms, trial/win counters
    and the sharded-estimate span; per-shard metrics collected inside
    worker processes travel back as pickled snapshots and merge exactly.
    Fault-tolerance events surface as ``engine.shard_retries``,
    ``engine.shard_timeouts``, ``engine.pool_rebuilds``,
    ``engine.shard_failures``, ``engine.shards_salvaged``,
    ``engine.shards_resumed`` and ``engine.pickle_fallback`` counters.
    *progress*, when given, is called **exactly once per shard**, in
    index order (completions are buffered so the callback sequence is
    deterministic even when shards finish out of order or retry);
    each :class:`~repro.observability.progress.ShardProgress` carries
    the attempt that succeeded and whether the shard was recovered
    (retried or loaded from a checkpoint).  Neither instrumentation
    nor progress touches any random stream: the estimate is
    bit-identical with them on or off.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    config = (
        FaultToleranceConfig() if fault_tolerance is None else fault_tolerance
    )
    policy = config.retry
    instr = (
        get_instrumentation() if instrumentation is None else instrumentation
    )
    plan = plan_shards(trials, shards)
    root_seed = factory.root_seed
    if root_seed is None:
        root_seed = int(np.random.SeedSequence().entropy)
    names = [shard_stream_name(stream, i) for i in range(len(plan))]
    for name in names:
        factory.record_issue(name)

    collect = instr.enabled
    tasks = [
        _ShardTask(
            system=system,
            trials=shard_trials,
            base_stream=stream,
            index=i,
            stream=name,
            root_seed=root_seed,
            inputs=inputs,
            batch_size=batch_size,
            collect=collect,
            fault_plan=config.fault_plan,
        )
        for i, (shard_trials, name) in enumerate(zip(plan, names))
    ]

    # per-shard state: result tuples, execution counts, failure log
    completed: Dict[int, Tuple[int, float, Optional[MetricsSnapshot], int, bool]] = {}
    attempts: Dict[int, int] = {i: 0 for i in range(len(plan))}
    failures: List[ShardFailure] = []
    stats = {"retries": 0, "timeouts": 0, "pool_rebuilds": 0}

    fingerprint = run_fingerprint(
        root_seed, stream, plan, system_digest(system, inputs), batch_size
    )
    writer: Optional[CheckpointWriter] = None
    resumed = 0
    if config.checkpoint_path is not None:
        path = Path(config.checkpoint_path)
        if config.resume and path.exists() and path.stat().st_size > 0:
            checkpoint = load_checkpoint(path, root_seed)
            for index, record in checkpoint.outcomes(fingerprint).items():
                if 0 <= index < len(plan) and record.trials == plan[index]:
                    completed[index] = (
                        record.wins,
                        record.elapsed_seconds,
                        None,
                        record.attempt,
                        True,
                    )
            resumed = len(completed)
        writer = CheckpointWriter(path, root_seed)

    fired = 0

    def flush_progress() -> None:
        # fire the contiguous completed prefix, exactly once per shard,
        # in index order -- deterministic regardless of completion order
        nonlocal fired
        while fired < len(plan) and fired in completed:
            wins, elapsed, _, attempt, was_resumed = completed[fired]
            report = ShardProgress(
                index=fired,
                trials=plan[fired],
                wins=wins,
                elapsed_seconds=elapsed,
                completed_shards=fired + 1,
                total_shards=len(plan),
                attempt=attempt,
                recovered=was_resumed or attempt > 0,
            )
            if progress is not None:
                progress(report)
            instr.emit(
                "shard",
                stream=stream,
                index=fired,
                trials=report.trials,
                wins=report.wins,
                elapsed_ns=(
                    None if elapsed is None else int(round(elapsed * 1e9))
                ),
                attempt=attempt,
                recovered=report.recovered,
                completed=report.completed_shards,
                total=report.total_shards,
            )
            fired += 1

    def on_success(index: int, result: _Result, attempt: int) -> None:
        wins, elapsed, snapshot = result
        completed[index] = (wins, elapsed, snapshot, attempt, False)
        if writer is not None:
            writer.append(
                fingerprint,
                index,
                names[index],
                plan[index],
                wins,
                elapsed,
                attempt,
            )
        flush_progress()

    def on_failure(failure: ShardFailure) -> None:
        failures.append(failure)
        instr.emit(
            "fault",
            kind=failure.kind,
            index=failure.index,
            stream=failure.stream,
            attempt=failure.attempt,
            message=failure.message,
        )

    workers_used = min(workers, len(plan))
    pool_used = False
    try:
        with instr.span(
            "simulation.sharded_estimate",
            stream=stream,
            trials=trials,
            shards=len(plan),
            workers=workers,
        ):
            start = time.perf_counter()
            flush_progress()  # resumed prefix, if any
            pending = [i for i in range(len(plan)) if i not in completed]
            if pending and workers_used > 1:
                reason = _pickle_failure(system, inputs)
                if reason is None:
                    try:
                        _run_pool(
                            tasks,
                            pending,
                            attempts,
                            policy,
                            workers_used,
                            on_success,
                            on_failure,
                            stats,
                        )
                        pool_used = True
                        pending = []
                    except _PoolUnavailableError:
                        # salvage: keep everything completed so far and
                        # finish only the missing shards in-process
                        pending = [
                            i
                            for i in range(len(plan))
                            if i not in completed
                        ]
                elif collect:
                    instr.increment("engine.pickle_fallback")
                    instr.increment(f"engine.pickle_fallback.{reason}")
            if pending:
                _run_serial(
                    tasks,
                    pending,
                    attempts,
                    policy,
                    on_success,
                    on_failure,
                    stats,
                )
            wall_seconds = time.perf_counter() - start
    finally:
        if writer is not None:
            writer.close()
    if not pool_used:
        workers_used = 1

    failed_indices = {f.index for f in failures}
    salvaged = (
        sum(
            1
            for index, record in completed.items()
            if not record[4]  # not resumed
            and attempts[index] == 1
            and index not in failed_indices
        )
        if failures
        else 0
    )

    outcomes = tuple(
        ShardOutcome(
            index=i,
            stream=name,
            trials=shard_trials,
            wins=completed[i][0],
            elapsed_seconds=completed[i][1],
            attempt=completed[i][3],
        )
        for i, (shard_trials, name) in enumerate(zip(plan, names))
    )
    if collect:
        for record in completed.values():
            if record[2] is not None:
                instr.metrics.merge(record[2])
        instr.increment("engine.sharded_calls")
        instr.set_gauge("engine.workers_used", workers_used)
        instr.observe("engine.sharded_wall_seconds", wall_seconds)
        instr.throughput.record(trials, wall_seconds)
        for counter, value in (
            ("engine.shard_retries", stats["retries"]),
            ("engine.shard_timeouts", stats["timeouts"]),
            ("engine.pool_rebuilds", stats["pool_rebuilds"]),
            ("engine.shard_failures", len(failures)),
            ("engine.shards_salvaged", salvaged),
            ("engine.shards_resumed", resumed),
        ):
            if value:
                instr.increment(counter, value)
    summary = BinomialSummary(
        successes=sum(record[0] for record in completed.values()),
        trials=trials,
        z_score=z_score,
    )
    return ShardedEstimate(
        summary=summary,
        shard_outcomes=outcomes,
        workers_used=workers_used,
        failures=tuple(failures),
        resumed_shards=resumed,
        salvaged_shards=salvaged,
    )
