"""Asymptotic (large-``m``) approximations to sum-of-uniforms CDFs.

The exact kernels of :mod:`repro.probability.uniform_sums` are
inclusion-exclusion sums -- exponential in ``m`` for general interval
widths, and even the linear Irwin-Hall series loses every float digit
to cancellation once ``m`` is a few hundred.  This module provides the
third tier of the regime ladder: central-limit approximations with
*explicit, rigorous* error bounds, valid for any ``m`` and sharp
enough to be useful from ``m`` in the hundreds up to ``10**6`` and
beyond.

Two estimators are offered per CDF:

* ``method="normal"`` -- the plain CLT estimate ``Phi(z)`` with the
  Berry-Esseen bound

  ``|F(t) - Phi(z)| <= C_BE * sum rho_i / sigma^3``

  where ``rho_i = E|X_i - mu_i|^3`` and ``C_BE = 0.5600`` (Shevtsova's
  constant for sums of independent, not necessarily identically
  distributed variables, which covers the iid case).  For uniforms the
  ratio is width-invariant: a single ``U[0, u]`` contributes
  ``rho/sigma^3 = (u^3/32) / (u/sqrt(12))^3 = 12*sqrt(12)/32``, so the
  iid bound is ``0.5600 * (12*sqrt(12)/32) / sqrt(m) ~ 0.7275/sqrt(m)``.

* ``method="edgeworth"`` (default) -- the first Edgeworth correction.
  Uniforms are symmetric (zero skewness), so the leading correction is
  the kurtosis term

  ``F(t) ~ Phi(z) - phi(z) * (lambda4 / 24) * (z^3 - 3z)``

  with ``lambda4 = kappa4 / sigma^4`` the excess kurtosis of the sum
  (``kappa4 = -u^4/120`` per ``U[0, u]``; for Irwin-Hall this is the
  familiar ``Phi(z) + phi(z)(z^3 - 3z)/(20 m)``).  The *estimate* is
  far more accurate than the normal one (empirically ``O(1/m)`` vs
  ``O(1/sqrt(m))``), and its *guaranteed* bound is kept rigorous by
  the triangle inequality: ``|F - edgeworth| <= BE + |correction|``.

Both bounds are then **tail-sharpened**: in the far tails the true CDF
is pinned between 0 (or 1) and a Hoeffding bound
``exp(-2 s^2 / sum u_i^2)``, which for ``|z| >> 1`` is exponentially
smaller than the polynomial Berry-Esseen term.  The reported
``error_bound`` is the minimum of the two enclosures, so e.g.
``P(S <= m/4)`` for large ``m`` comes back as a tiny value with a tiny
certified bound rather than a tiny value with a ``0.7/sqrt(m)`` bound.

Quantiles are bracketed rather than merely estimated:
``F(mu + sigma * InvPhi(p - eps)) <= p <= F(mu + sigma * InvPhi(p + eps))``
whenever ``eps`` is a valid uniform CDF-error bound, so the returned
``(lower, upper)`` interval *provably* contains the true quantile.

Everything here is plain ``float`` arithmetic on a handful of terms --
``O(1)`` per query -- and depends only on the standard library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence, Tuple

from repro.errors import ValidationError

__all__ = [
    "ASYMPTOTIC_METHODS",
    "AsymptoticCDF",
    "AsymptoticQuantile",
    "BERRY_ESSEEN_CONSTANT",
    "UNIFORM_BE_RATIO",
    "irwin_hall_asymptotic_value_bound",
    "irwin_hall_cdf_asymptotic",
    "irwin_hall_quantile_asymptotic",
    "normal_cdf",
    "normal_pdf",
    "sum_uniform_cdf_asymptotic",
]

#: Shevtsova's Berry-Esseen constant for sums of independent (not
#: necessarily identically distributed) random variables.
BERRY_ESSEEN_CONSTANT = 0.5600

#: ``E|X - mu|^3 / sigma^3`` for a uniform on any interval: width
#: cancels, leaving ``(u^3/32) / (u^3 / (12 sqrt(12))) = 12 sqrt(12)/32``.
UNIFORM_BE_RATIO = 12.0 * math.sqrt(12.0) / 32.0

ASYMPTOTIC_METHODS = ("normal", "edgeworth")

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)
_STD_NORMAL = NormalDist()


def normal_cdf(z: float) -> float:
    """Standard normal CDF via ``erfc`` (accurate in both tails)."""
    return 0.5 * math.erfc(-z / _SQRT2)


def normal_pdf(z: float) -> float:
    """Standard normal density."""
    # exp underflows to 0.0 for |z| >~ 39, which is the correct limit.
    return _INV_SQRT_2PI * math.exp(-0.5 * min(z * z, 1500.0))


@dataclass(frozen=True)
class AsymptoticCDF:
    """A CDF estimate with a rigorous two-sided error bound.

    The guarantee is ``|true CDF - value| <= error_bound``; the
    :meth:`bracket` helper intersects that enclosure with ``[0, 1]``.
    """

    value: float
    error_bound: float
    method: str
    m: int
    z: float

    def bracket(self) -> Tuple[float, float]:
        """Certified ``(floor, ceiling)`` enclosure of the true CDF."""
        return (
            max(0.0, self.value - self.error_bound),
            min(1.0, self.value + self.error_bound),
        )


@dataclass(frozen=True)
class AsymptoticQuantile:
    """A quantile estimate with a certified enclosing interval.

    ``lower <= true quantile <= upper`` is guaranteed; *value* is the
    Cornish-Fisher point estimate inside that interval.
    """

    value: float
    lower: float
    upper: float
    p: float
    m: int


def _check_method(method: str) -> None:
    if method not in ASYMPTOTIC_METHODS:
        raise ValidationError(
            f"method must be one of {ASYMPTOTIC_METHODS}, got {method!r}"
        )


def _raw_assemble(
    t: float,
    mean: float,
    sigma: float,
    be_bound: float,
    lambda4: float,
    sq_width_sum: float,
    method: str,
) -> Tuple[float, float, float]:
    """Shared estimate/bound assembly for the iid and non-iid cases.

    Returns ``(value, error_bound, z)`` as a bare tuple -- the hot
    path of the binomial-mixture engine calls this thousands of times
    per query, so no dataclass is allocated here.
    """
    z = (t - mean) / sigma
    value = 0.5 * math.erfc(-z / _SQRT2)
    bound = be_bound
    if method == "edgeworth":
        phi_z = _INV_SQRT_2PI * math.exp(-0.5 * min(z * z, 1500.0))
        correction = -phi_z * (lambda4 / 24.0) * (z * z * z - 3.0 * z)
        value += correction
        # The Edgeworth *estimate* is sharper but its cheap rigorous
        # bound is not: |F - (Phi + corr)| <= |F - Phi| + |corr|.
        bound += abs(correction)
    if value < 0.0:
        value = 0.0
    elif value > 1.0:
        value = 1.0
    # Tail sharpening: Hoeffding pins F into [0, tail] (left tail) or
    # [1 - tail, 1] (right tail), so the distance from any estimate in
    # [0, 1] to the true CDF is at most max(tail, distance to the
    # pinned endpoint).
    s = t - mean
    hoeff = (
        math.exp(-2.0 * min(s * s / sq_width_sum, 700.0))
        if sq_width_sum
        else 0.0
    )
    pinned = value if s < 0.0 else 1.0 - value
    if pinned < hoeff:
        pinned = hoeff
    if pinned < bound:
        bound = pinned
    return value, bound, z


_BE_IID = BERRY_ESSEEN_CONSTANT * UNIFORM_BE_RATIO


def irwin_hall_asymptotic_value_bound(
    t: float, m: int, method: str = "edgeworth"
) -> Tuple[float, float]:
    """Allocation-free ``(value, error_bound)`` variant of
    :func:`irwin_hall_cdf_asymptotic`.

    The hot-path entry point for the binomial-mixture engine: same
    numbers, no :class:`AsymptoticCDF` object, no argument validation
    beyond the support short-circuits (``m >= 1`` and a recognised
    *method* are the caller's responsibility).
    """
    if t <= 0.0:
        return 0.0, 0.0
    if t >= m:
        return 1.0, 0.0
    value, bound, _ = _raw_assemble(
        t,
        0.5 * m,
        math.sqrt(m / 12.0),
        _BE_IID / math.sqrt(m),
        -1.2 / m,
        float(m),
        method,
    )
    return value, bound


def irwin_hall_cdf_asymptotic(
    t: float, m: int, method: str = "edgeworth"
) -> AsymptoticCDF:
    """Asymptotic ``P(sum of m iid U[0,1] <= t)`` with certified bound.

    ``O(1)`` for any ``m >= 1``; exact short-circuits outside the
    support return ``error_bound = 0``.
    """
    _check_method(method)
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    t = float(t)
    if t <= 0.0:
        return AsymptoticCDF(0.0, 0.0, method, m, -math.inf)
    if t >= m:
        return AsymptoticCDF(1.0, 0.0, method, m, math.inf)
    sigma = math.sqrt(m / 12.0)
    be = _BE_IID / math.sqrt(m)
    # kappa4 = -m/120; lambda4 = kappa4 / sigma^4 = -6/(5m).
    value, bound, z = _raw_assemble(
        t, m / 2.0, sigma, be, -1.2 / m, float(m), method
    )
    return AsymptoticCDF(value, bound, method, m, z)


def sum_uniform_cdf_asymptotic(
    t: float, uppers: Sequence[float], method: str = "edgeworth"
) -> AsymptoticCDF:
    """Asymptotic ``P(sum x_i <= t)`` for ``x_i ~ U[0, uppers[i]]``.

    Non-iid analogue of :func:`irwin_hall_cdf_asymptotic`; linear in
    ``len(uppers)`` (one pass to accumulate moments).  Zero-width
    entries are the constant 0 and are dropped, mirroring the exact
    kernel's convention.
    """
    _check_method(method)
    widths = []
    for i, u in enumerate(uppers):
        u = float(u)
        if u < 0.0:
            raise ValidationError(
                f"uppers[{i}] must be >= 0, got {u}"
            )
        if u > 0.0:
            widths.append(u)
    m = len(widths)
    if m == 0:
        value = 1.0 if float(t) >= 0.0 else 0.0
        return AsymptoticCDF(value, 0.0, method, 0, math.nan)
    t = float(t)
    span = math.fsum(widths)
    if t <= 0.0:
        return AsymptoticCDF(0.0, 0.0, method, m, -math.inf)
    if t >= span:
        return AsymptoticCDF(1.0, 0.0, method, m, math.inf)
    mean = 0.5 * span
    sq = math.fsum(u * u for u in widths)
    variance = sq / 12.0
    sigma = math.sqrt(variance)
    # rho_i = u_i^3/32; sum rho / sigma^3.
    rho_sum = math.fsum(u * u * u for u in widths) / 32.0
    be = BERRY_ESSEEN_CONSTANT * rho_sum / (sigma * variance)
    # kappa4_i = -u_i^4/120.
    kappa4 = -math.fsum(u * u * u * u for u in widths) / 120.0
    lambda4 = kappa4 / (variance * variance)
    value, bound, z = _raw_assemble(
        t, mean, sigma, be, lambda4, sq, method
    )
    return AsymptoticCDF(value, bound, method, m, z)


def irwin_hall_quantile_asymptotic(
    p: float, m: int, method: str = "edgeworth"
) -> AsymptoticQuantile:
    """Quantile of the Irwin-Hall distribution with a certified bracket.

    Since ``|F - Phi(z)| <= eps`` uniformly (the ``method="normal"``
    Berry-Esseen bound), ``F(mu + sigma InvPhi(p - eps)) <= p`` and
    ``F(mu + sigma InvPhi(p + eps)) >= p``, so the true quantile lies
    in the returned ``[lower, upper]``.  When ``p -+ eps`` escapes
    ``(0, 1)`` the corresponding endpoint degrades to the support edge
    (0 or ``m``) -- still correct, just vacuous on that side.  The
    point estimate is the Cornish-Fisher inversion of the Edgeworth
    series (or the plain normal quantile under ``method="normal"``).
    """
    _check_method(method)
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    p = float(p)
    if not 0.0 < p < 1.0:
        raise ValidationError(f"p must be in (0, 1), got {p}")
    mu = m / 2.0
    sigma = math.sqrt(m / 12.0)
    eps = BERRY_ESSEEN_CONSTANT * UNIFORM_BE_RATIO / math.sqrt(m)
    zq = _STD_NORMAL.inv_cdf(p)
    if method == "edgeworth":
        # Cornish-Fisher: invert z + (z^3-3z)/(20m) to first order.
        z_point = zq - (zq * zq * zq - 3.0 * zq) / (20.0 * m)
    else:
        z_point = zq
    value = min(float(m), max(0.0, mu + sigma * z_point))
    lo_p = p - eps
    hi_p = p + eps
    lower = (
        0.0 if lo_p <= 0.0 else max(0.0, mu + sigma * _STD_NORMAL.inv_cdf(lo_p))
    )
    upper = (
        float(m)
        if hi_p >= 1.0
        else min(float(m), mu + sigma * _STD_NORMAL.inv_cdf(hi_p))
    )
    return AsymptoticQuantile(
        value=value, lower=lower, upper=upper, p=p, m=m
    )
