"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCase:
    def test_case_n3(self, capsys):
        assert main(["case", "--n", "3", "--delta", "1"]) == 0
        out = capsys.readouterr().out
        assert "beta* = 0.622" in out
        assert "P*(oblivious, alpha=1/2) = 0.4166" in out

    def test_case_fractional_delta(self, capsys):
        assert main(["case", "--n", "4", "--delta", "4/3"]) == 0
        out = capsys.readouterr().out
        assert "beta* = 0.677997" in out


class TestFigures:
    def test_figure1(self, capsys):
        assert main(["figure1", "--ns", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "beta* = 0.622036" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--ns", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "delta = n/3" in out
        assert "n=4 (delta=4/3)" in out


class TestUniformity:
    def test_fixed_delta(self, capsys):
        assert main(["uniformity", "--ns", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "0.416667" in out  # oblivious n=3 value

    def test_scaled(self, capsys):
        assert main(["uniformity", "--ns", "4", "--scaled"]) == 0
        out = capsys.readouterr().out
        assert "4/3" in out


class TestTradeoff:
    def test_runs(self, capsys):
        assert main(
            ["tradeoff", "--ns", "2", "3", "--trials", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "centralized" in out


class TestValidate:
    def test_consistent(self, capsys):
        code = main(
            [
                "validate",
                "--n",
                "3",
                "--grid-size",
                "3",
                "--trials",
                "30000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all 3 grid points consistent" in out


class TestMixture:
    def test_n4_reports_interior_optimum(self, capsys):
        assert main(["mixture", "--n", "4", "--delta", "4/3"]) == 0
        out = capsys.readouterr().out
        assert "p* = 0.549144" in out
        assert "beats BOTH" in out

    def test_n3_prefers_pure_threshold(self, capsys):
        assert main(["mixture", "--n", "3", "--delta", "1"]) == 0
        out = capsys.readouterr().out
        assert "p* = 1.000000" in out
        assert "beats BOTH" not in out


class TestParsing:
    def test_bad_delta_rejected(self):
        with pytest.raises(SystemExit):
            main(["case", "--n", "3", "--delta", "abc"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestValidateFaultTolerance:
    """The fault-tolerance flags on ``repro validate``: chaos mode must
    not change output, interrupted runs must resume, and predictable
    failures must map to distinct exit codes with one-line messages."""

    BASE = ["validate", "--n", "3", "--grid-size", "2", "--trials", "8000"]

    def test_chaos_crash_output_identical_to_clean_run(self, capsys):
        assert main(self.BASE + ["--workers", "2"]) == 0
        clean = capsys.readouterr().out
        code = main(
            self.BASE
            + ["--workers", "2", "--chaos-crash", "1", "--max-retries", "2"]
        )
        chaotic = capsys.readouterr().out
        assert code == 0
        assert chaotic == clean

    def test_retries_exhausted_exit_code(self, capsys):
        # a crash with a zero-retry budget cannot be survived
        code = main(self.BASE + ["--workers", "2", "--chaos-crash", "0"])
        captured = capsys.readouterr()
        assert code == 5
        assert "repro:" in captured.err
        assert "Traceback" not in captured.err

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        assert main(self.BASE + ["--checkpoint", str(path)]) == 0
        clean = capsys.readouterr().out
        assert path.exists()
        code = main(
            self.BASE + ["--checkpoint", str(path), "--resume"]
        )
        resumed = capsys.readouterr().out
        assert code == 0
        assert resumed == clean

    def test_resume_fingerprint_mismatch_exit_code(self, capsys, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        assert main(self.BASE + ["--checkpoint", str(path)]) == 0
        capsys.readouterr()
        code = main(
            self.BASE
            + ["--seed", "99", "--checkpoint", str(path), "--resume"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "different run" in captured.err
        assert "Traceback" not in captured.err

    def test_unwritable_checkpoint_exit_code(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code = main(
            self.BASE + ["--checkpoint", str(blocker / "ckpt.jsonl")]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "checkpoint" in captured.err
        assert "Traceback" not in captured.err

    def test_resume_without_checkpoint_is_usage_error(self, capsys):
        code = main(self.BASE + ["--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--resume requires --checkpoint" in captured.err

    def test_shard_timeout_flag_accepted(self, capsys):
        code = main(
            self.BASE
            + ["--workers", "2", "--shard-timeout", "60", "--max-retries", "1"]
        )
        assert code == 0
        assert "consistent" in capsys.readouterr().out

    def test_profile_report_shows_failure_section(self, capsys):
        code = main(
            self.BASE
            + [
                "--workers",
                "2",
                "--chaos-crash",
                "1",
                "--max-retries",
                "2",
                "--profile",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "failures and recoveries:" in captured.err
        assert "engine.shards_salvaged" in captured.err
