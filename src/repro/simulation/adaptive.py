"""Adaptive (sequential) estimation: sample until a target precision.

The fixed-budget engine asks "what can I say after N trials?"; this
module asks the operational question "how many trials until the
winning probability is known to within ``±h``?"  It runs the engine in
growing stages and stops when the Wilson half-width drops below the
target, reporting the full trajectory -- per-stage batch sizes *and*
the Wilson half-width reached after each stage -- so tests can assert
the stopping rule's behaviour.  With instrumentation active (see
:mod:`repro.observability`) every stage is wrapped in a span carrying
its batch size and achieved half-width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.system import DistributedSystem
from repro.observability import get_instrumentation
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.faulttolerance import FaultToleranceConfig
from repro.simulation.statistics import (
    BinomialSummary,
    required_samples,
    wilson_interval,
)

__all__ = ["AdaptiveResult", "estimate_until_precise"]


@dataclass
class AdaptiveResult:
    """Outcome of a sequential estimation.

    ``stages[i]`` is the number of trials run in stage ``i``;
    ``half_widths[i]`` is the Wilson half-width of the *cumulative*
    estimate after that stage completed, so the two lists together are
    the full convergence trajectory of the stopping rule.
    """

    summary: BinomialSummary
    target_half_width: float
    stages: List[int] = field(default_factory=list)
    half_widths: List[float] = field(default_factory=list)

    @property
    def achieved(self) -> bool:
        """Whether the target precision was reached within budget."""
        return self.summary.half_width <= self.target_half_width

    @property
    def total_trials(self) -> int:
        """Total trials over all stages."""
        return self.summary.trials

    def __str__(self) -> str:
        status = "achieved" if self.achieved else "budget exhausted"
        trajectory = ""
        if self.half_widths:
            rendered = " -> ".join(
                f"±{width:.4g}" for width in self.half_widths
            )
            trajectory = f"; half-widths {rendered}"
        return (
            f"{self.summary} after {len(self.stages)} stages "
            f"({status}; target ±{self.target_half_width}{trajectory})"
        )


def estimate_until_precise(
    system: DistributedSystem,
    half_width: float,
    engine: Optional[MonteCarloEngine] = None,
    initial_trials: int = 4_096,
    growth: float = 2.0,
    max_trials: int = 5_000_000,
    z_score: float = 3.89,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
) -> AdaptiveResult:
    """Sample in growing stages until the Wilson half-width <= *half_width*.

    Successes accumulate across stages (every trial contributes to the
    final interval).  The first stage is sized from the worst-case
    requirement when that is already below *max_trials*, so easy
    targets finish in one stage.  Stops early once the target is met;
    gives up (with ``achieved == False``) at *max_trials*.

    *workers*, *shards* and *fault_tolerance* are forwarded to every
    stage's :meth:`MonteCarloEngine.estimate_winning_probability` call;
    the stage schedule itself is deterministic, so the whole sequential
    procedure stays reproducible under parallel execution -- and, since
    each stage draws from its own named stream, under per-shard retries
    and checkpoint/resume as well.
    """
    if not 0 < half_width < 0.5:
        raise ValueError(
            f"half_width must be in (0, 0.5), got {half_width}"
        )
    if growth <= 1:
        raise ValueError(f"growth must exceed 1, got {growth}")
    if initial_trials < 1:
        raise ValueError(
            f"initial_trials must be >= 1, got {initial_trials}"
        )
    engine = engine or MonteCarloEngine(seed=0)
    instr = engine.instrumentation

    worst_case = required_samples(half_width, z_score)
    stage = min(max(initial_trials, worst_case // 4), max_trials)

    successes = 0
    trials = 0
    stages: List[int] = []
    half_widths: List[float] = []
    with instr.span(
        "adaptive.estimate",
        target_half_width=half_width,
        max_trials=max_trials,
    ):
        while True:
            batch = min(stage, max_trials - trials)
            if batch <= 0:
                break
            with instr.span(
                "adaptive.stage", stage=len(stages), batch=batch
            ):
                summary = engine.estimate_winning_probability(
                    system,
                    trials=batch,
                    stream=f"adaptive-stage-{len(stages)}",
                    z_score=z_score,
                    workers=workers,
                    shards=shards,
                    fault_tolerance=fault_tolerance,
                )
                successes += summary.successes
                trials += batch
                stages.append(batch)
                lo, hi = wilson_interval(successes, trials, z_score)
                achieved_width = (hi - lo) / 2
                half_widths.append(achieved_width)
            if instr.enabled:
                instr.increment("adaptive.stages")
                instr.set_gauge("adaptive.half_width", achieved_width)
            if achieved_width <= half_width:
                break
            stage = int(stage * growth)
    final = BinomialSummary(
        successes=successes, trials=trials, z_score=z_score
    )
    return AdaptiveResult(
        summary=final,
        target_half_width=half_width,
        stages=stages,
        half_widths=half_widths,
    )
