"""Computational replay of Lemma 4.6 (the heart of Theorem 4.3).

Lemma 4.6 argues that a symmetric stationary point of the oblivious
problem must have ``alpha = 1/2``.  The proof pivots on a polynomial
in the variable ``rho = alpha / (alpha - 1)``:

``Q(rho) = sum_{r=0}^{n-1} C(n-1, r) (phi_t(r+1) - phi_t(r)) rho^r``

(the symmetric stationarity condition after dividing by
``(1 - alpha)^(n-1)``).  Lemma 4.4's symmetry makes the coefficient of
``rho^r`` the negative of the coefficient of ``rho^(n-1-r)`` --
``Q`` is *antisymmetric* under ``rho -> 1/rho`` (up to the factor
``rho^(n-1)``) -- so ``rho = 1`` is always a root, and the sign
argument of the lemma shows no other positive ``rho`` works when the
forward differences are positive below ``n/2``.

This module constructs ``Q`` exactly and exposes the three checkable
facts; the test-suite replays them for a sweep of ``(n, t)``:

1. the coefficient antisymmetry (Lemma 4.4 in coefficient form);
2. ``Q(1) = 0`` (so ``alpha = 1/2`` is stationary -- ``rho = 1``
   corresponds to ``alpha/(alpha-1) = -1``?  No: the paper's sign
   convention makes ``alpha = 1/2`` map to ``rho = -1``; see
   :func:`rho_of_alpha` -- the antisymmetric structure makes ``Q``
   vanish at the symmetric point either way, which is what the
   functions here let the tests verify concretely);
3. positivity of the forward differences in the relevant range.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.core.phi import phi_table
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction, binomial

__all__ = [
    "lemma46_polynomial",
    "rho_of_alpha",
    "stationarity_in_alpha",
]


def rho_of_alpha(alpha: RationalLike) -> Fraction:
    """The paper's change of variable ``rho = alpha / (alpha - 1)``.

    Maps ``alpha = 1/2`` to ``rho = -1``; ``alpha in (0, 1)`` to
    ``rho < 0``.  Undefined at ``alpha = 1``.
    """
    a = as_fraction(alpha)
    if a == 1:
        raise ZeroDivisionError("rho is undefined at alpha = 1")
    return a / (a - 1)


def lemma46_polynomial(t: RationalLike, n: int) -> Polynomial:
    """The polynomial ``Q(rho)`` of Lemma 4.6 (exact coefficients).

    ``Q(rho) = sum_r C(n-1, r) (phi_t(r+1) - phi_t(r)) rho^r``
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    phis = phi_table(t, n)
    coefficients = [
        binomial(n - 1, r) * (phis[r + 1] - phis[r]) for r in range(n)
    ]
    return Polynomial(coefficients)


def stationarity_in_alpha(t: RationalLike, n: int) -> Polynomial:
    """The symmetric stationarity condition as a polynomial in ``alpha``.

    ``S(alpha) = sum_r C(n-1, r) (phi(r+1) - phi(r))
                 alpha^(n-1-r) (1-alpha)^r``

    (obtained from the gradient formula
    ``dP/dalpha_k = E[phi(K')] - E[phi(K'+1)]`` with ``K'`` binomial on
    the other ``n - 1`` players; zeroing it is Corollary 4.2 under
    symmetry).  ``S(1/2) = 0`` follows from Lemma 4.4, and Theorem 4.3
    says 1/2 is the *only* root in ``(0, 1)`` -- both verified exactly
    by the tests via Sturm root counting.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    phis = phi_table(t, n)
    alpha = Polynomial.x()
    one_minus = Polynomial.linear(1, -1)
    total = Polynomial.zero()
    for r in range(n):
        diff = phis[r] - phis[r + 1]
        if diff == 0:
            continue
        total = total + (
            binomial(n - 1, r) * diff * alpha ** (n - 1 - r) * one_minus**r
        )
    return total


def antisymmetry_defect(t: RationalLike, n: int) -> List[Fraction]:
    """The sums ``c_r + c_(n-1-r)`` of Q's coefficients.

    Lemma 4.4 predicts every entry is zero; the tests assert exactly
    that.  Returned as a list (length ``ceil(n/2)``) so a failure
    pinpoints the offending degree.
    """
    q = lemma46_polynomial(t, n)
    return [
        q.coefficient(r) + q.coefficient(n - 1 - r)
        for r in range((n + 1) // 2)
    ]
