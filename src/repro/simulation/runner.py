"""Parameter-sweep runners producing experiment records.

The figures and tables of the paper are sweeps: winning probability
against the common threshold ``beta`` (Figures 1-2) or against the
player count ``n`` (the uniformity table).  These helpers run such
sweeps through either the exact formulas, the Monte Carlo engine, or
both, and return plain records that the reporting layer renders.

Both sweeps accept ``workers=`` and forward it to the engine, so large
validation grids shard across a process pool without changing their
results (see :mod:`repro.simulation.parallel`).  With instrumentation
active (see :mod:`repro.observability`) each sweep wraps itself and
every grid point in spans and counts points simulated -- without
touching any random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from repro.core.nonoblivious import symmetric_threshold_winning_probability
from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.observability import get_instrumentation
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.faulttolerance import FaultToleranceConfig
from repro.symbolic.rational import RationalLike, as_fraction, rational_range

__all__ = [
    "BatchSweepStats",
    "SweepPoint",
    "SweepResult",
    "sweep_players",
    "sweep_thresholds",
]


@dataclass(frozen=True)
class BatchSweepStats:
    """How the batch layer served a sweep: points evaluated, points
    certified within the float error bound, and points that fell back
    to the exact ``Fraction`` kernel."""

    points: int
    certified: int
    fallbacks: int

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.points if self.points else 0.0


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the parameter, the exact value, and (when a
    Monte Carlo check ran) the simulated estimate with its interval."""

    parameter: Fraction
    exact: Fraction
    simulated: Optional[float] = None
    interval: Optional[tuple] = None

    @property
    def consistent(self) -> Optional[bool]:
        """Whether the exact value falls in the simulated interval
        (None when no simulation ran)."""
        if self.interval is None:
            return None
        lo, hi = self.interval
        return lo <= float(self.exact) <= hi


@dataclass
class SweepResult:
    """A labelled series of sweep points.

    ``batch`` records how the batch layer served the sweep when it ran
    in batched mode (``None`` for the scalar exact path)."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)
    batch: Optional[BatchSweepStats] = None

    @property
    def parameters(self) -> List[Fraction]:
        return [p.parameter for p in self.points]

    @property
    def exact_values(self) -> List[Fraction]:
        return [p.exact for p in self.points]

    @property
    def any_simulated(self) -> bool:
        """Whether at least one point carries a Monte Carlo check."""
        return any(p.consistent is not None for p in self.points)

    def all_consistent(self) -> Optional[bool]:
        """Whether every simulated point covers its exact value.

        Returns ``None`` when *no* point was simulated at all -- an
        exact-only sweep carries no Monte Carlo evidence, so it must
        not read as a passed validation.  (An earlier revision returned
        ``True`` here, letting a sweep "pass" vacuously.)  Points
        without intervals in a partially-simulated sweep are skipped.
        """
        if not self.any_simulated:
            return None
        return all(p.consistent is not False for p in self.points)

    def best(self) -> SweepPoint:
        """The point with the largest exact value."""
        return max(self.points, key=lambda p: p.exact)


def sweep_thresholds(
    n: int,
    delta: RationalLike,
    grid: Optional[Sequence[RationalLike]] = None,
    grid_size: int = 101,
    simulate: bool = False,
    trials: int = 100_000,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
    batch: bool = False,
) -> SweepResult:
    """Winning probability of the symmetric threshold rule over a ``beta`` grid.

    Exact values come from Theorem 5.1; with ``simulate=True`` each grid
    point is also estimated by Monte Carlo and the Wilson interval
    recorded (this is the validation mode used by the integration
    tests and benchmark harness).  *workers*, *shards* and
    *fault_tolerance* are forwarded to
    :meth:`MonteCarloEngine.estimate_winning_probability`; because each
    grid point runs on its own named stream, one checkpoint file can
    carry an entire interrupted sweep across a resume.

    With ``batch=True`` the exact column is served by the vectorised
    batch layer (:mod:`repro.batch`): the grid is evaluated **at the
    float64 image of each beta** in one compiled pass, each point's
    value is either certified within the fastpath error bound (and
    recorded as the certified float's rational image) or served by the
    exact ``Fraction`` kernel at that float point.  The returned
    result carries :class:`BatchSweepStats`; ``sweep.batch_points`` is
    counted on the metrics.  Betas that are not exactly
    float64-representable are evaluated at their rounded image -- use
    the scalar path when exact evaluation at such betas matters.
    """
    d = as_fraction(delta)
    betas = (
        [as_fraction(b) for b in grid]
        if grid is not None
        else rational_range(0, 1, grid_size)
    )
    engine = MonteCarloEngine(seed=seed) if simulate else None
    instr = get_instrumentation()
    points = []
    batch_stats = None
    batch_exacts: Optional[List[Fraction]] = None
    if batch:
        import numpy as np

        from repro.batch.tables import compiled_threshold_curve

        compiled = compiled_threshold_curve(n, d)
        xs = np.array([float(b) for b in betas], dtype=np.float64)
        result = compiled.evaluate_certified(xs)
        batch_exacts = [
            result.exact_fallbacks.get(i, None) for i in range(len(betas))
        ]
        batch_exacts = [
            as_fraction(result.values[i]) if exact_value is None else exact_value
            for i, exact_value in enumerate(batch_exacts)
        ]
        batch_stats = BatchSweepStats(
            points=result.points,
            certified=result.points - result.fallback_count,
            fallbacks=result.fallback_count,
        )
        instr.increment("sweep.batch_points", result.points)
        instr.emit(
            "batch",
            points=batch_stats.points,
            certified=batch_stats.certified,
            fallbacks=batch_stats.fallbacks,
        )
    with instr.span(
        "sweep.thresholds",
        n=n,
        delta=str(d),
        grid_points=len(betas),
        simulate=simulate,
    ):
        for index, beta in enumerate(betas):
            with instr.span("sweep.point", beta=str(beta)):
                exact = (
                    batch_exacts[index]
                    if batch_exacts is not None
                    else symmetric_threshold_winning_probability(beta, n, d)
                )
                simulated = None
                interval = None
                if engine is not None:
                    system = DistributedSystem(
                        [SingleThresholdRule(beta) for _ in range(n)], d
                    )
                    summary = engine.estimate_winning_probability(
                        system,
                        trials=trials,
                        stream=f"beta={beta}",
                        workers=workers,
                        shards=shards,
                        fault_tolerance=fault_tolerance,
                    )
                    simulated = summary.estimate
                    interval = summary.interval
                    instr.increment("sweep.points_simulated")
                instr.increment("sweep.points")
                instr.emit(
                    "point",
                    label=f"beta={beta}",
                    index=index,
                    total=len(betas),
                )
            points.append(
                SweepPoint(
                    parameter=beta,
                    exact=exact,
                    simulated=simulated,
                    interval=interval,
                )
            )
    return SweepResult(
        label=f"n={n}, delta={d}", points=points, batch=batch_stats
    )


def sweep_players(
    ns: Sequence[int],
    delta_of_n: Callable[[int], RationalLike],
    value_of_n: Callable[[int, Fraction], Fraction] = (
        lambda n, d: optimal_oblivious_winning_probability(d, n)
    ),
    label: str = "optimal oblivious",
    system_of_n: Optional[
        Callable[[int, Fraction], DistributedSystem]
    ] = None,
    simulate: bool = False,
    trials: int = 100_000,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
) -> SweepResult:
    """Sweep a per-``n`` exact quantity (default: the Theorem 4.3 optimum).

    *delta_of_n* maps the player count to the capacity (e.g. constant 1,
    or the scaled ``n/3`` used in Section 5.2.2).

    With ``simulate=True``, *system_of_n* must build the executable
    system for each ``(n, delta)`` pair; every point then also records
    a Monte Carlo estimate (stream ``f"n={n}"``), with *workers*,
    *shards* and *fault_tolerance* forwarded to the engine.
    """
    if simulate and system_of_n is None:
        raise ValueError("simulate=True requires system_of_n")
    engine = MonteCarloEngine(seed=seed) if simulate else None
    instr = get_instrumentation()
    ns = list(ns)
    points = []
    with instr.span(
        "sweep.players",
        label=label,
        grid_points=len(ns),
        simulate=simulate,
    ):
        for point_index, n in enumerate(ns):
            # The distributed model needs at least two players; n = 1
            # used to slip past this guard and fail deep inside the
            # kernels instead of at the API boundary.
            if n < 2:
                raise ValueError(f"player counts must be >= 2, got {n}")
            d = as_fraction(delta_of_n(n))
            with instr.span("sweep.point", n=n, delta=str(d)):
                simulated = None
                interval = None
                if engine is not None:
                    summary = engine.estimate_winning_probability(
                        system_of_n(n, d),
                        trials=trials,
                        stream=f"n={n}",
                        workers=workers,
                        shards=shards,
                        fault_tolerance=fault_tolerance,
                    )
                    simulated = summary.estimate
                    interval = summary.interval
                    instr.increment("sweep.points_simulated")
                instr.increment("sweep.points")
                instr.emit(
                    "point",
                    label=f"n={n}",
                    index=point_index,
                    total=len(ns),
                )
            points.append(
                SweepPoint(
                    parameter=Fraction(n),
                    exact=value_of_n(n, d),
                    simulated=simulated,
                    interval=interval,
                )
            )
    return SweepResult(label=label, points=points)
