"""Reproduce Section 5.2 end to end: derive the optimal protocols.

Walks the paper's own derivation mechanically for both worked cases
(n = 3, delta = 1 and n = 4, delta = 4/3) and for a case the paper did
not work out (n = 5, delta = 5/3):

1. build the exact piecewise polynomial of Theorem 5.1;
2. print each piece (the paper's interval case analysis);
3. differentiate to get the optimality condition (Theorem 5.2);
4. solve it exactly and compare with the oblivious optimum.

Run:  python examples/optimal_thresholds.py
"""

from fractions import Fraction

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.experiments.tables import case_study, render_case_study


def run_case(n: int, delta) -> None:
    study = case_study(n, delta)
    print("=" * 72)
    print(render_case_study(study))
    if study.improvement > 0:
        print(
            "=> looking at the input beats the fair coin by "
            f"{float(study.improvement):.6f}"
        )
    else:
        print(
            "=> NOTE: at this parameter point the randomised fair coin "
            f"beats every common threshold by {float(-study.improvement):.6f} "
            "(documented discrepancy D2, see EXPERIMENTS.md)"
        )
    print()


def uniformity_summary() -> None:
    print("=" * 72)
    print("Uniformity: the oblivious optimum is alpha = 1/2 for every n,")
    print("while the optimal threshold beta* moves with n (delta = 1):")
    from repro.optimize.threshold_opt import optimal_symmetric_threshold

    for n in range(2, 8):
        opt = optimal_symmetric_threshold(n, 1)
        oblivious = optimal_oblivious_winning_probability(1, n)
        print(
            f"  n={n}: beta* = {float(opt.beta):.6f}   "
            f"P*(threshold) = {float(opt.probability):.6f}   "
            f"P*(coin) = {float(oblivious):.6f}"
        )


def main() -> None:
    run_case(3, 1)  # Section 5.2.1
    run_case(4, Fraction(4, 3))  # Section 5.2.2
    run_case(5, Fraction(5, 3))  # beyond the paper
    uniformity_summary()


if __name__ == "__main__":
    main()
