"""Tests for repro.probability.moments."""

from fractions import Fraction

import pytest

from repro.probability.moments import (
    chebyshev_overflow_bound,
    expected_overflow_single_bin,
    hoeffding_overflow_bound,
    irwin_hall_moment,
    sum_uniform_central_moment,
    sum_uniform_moment,
    uniform_moment,
)


class TestUniformMoment:
    def test_unit_uniform(self):
        # E[X^k] = 1/(k+1)
        for k in range(6):
            assert uniform_moment(k) == Fraction(1, k + 1)

    def test_shifted(self):
        # U[1, 2]: mean 3/2, E[X^2] = (8 - 1)/3 = 7/3
        assert uniform_moment(1, 1, 2) == Fraction(3, 2)
        assert uniform_moment(2, 1, 2) == Fraction(7, 3)

    def test_zeroth_moment(self):
        assert uniform_moment(0, Fraction(1, 4), Fraction(3, 4)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_moment(-1)
        with pytest.raises(ValueError):
            uniform_moment(1, 1, 1)


class TestSumUniformMoment:
    def test_single_variable(self):
        assert sum_uniform_moment(2, [(0, 1)]) == Fraction(1, 3)

    def test_mean_adds(self):
        intervals = [(0, 1), (Fraction(1, 4), Fraction(1, 2)), (0, 2)]
        mean = sum_uniform_moment(1, intervals)
        assert mean == Fraction(1, 2) + Fraction(3, 8) + 1

    def test_second_moment_via_variance(self):
        # Var(S) = sum Var(X_i); E[S^2] = Var + mean^2
        intervals = [(0, 1), (0, Fraction(1, 2))]
        mean = Fraction(1, 2) + Fraction(1, 4)
        variance = Fraction(1, 12) + Fraction(1, 48)
        assert sum_uniform_moment(2, intervals) == variance + mean**2

    def test_empty_sum(self):
        assert sum_uniform_moment(0, []) == 1
        assert sum_uniform_moment(3, []) == 0

    def test_agrees_with_density_integration(self):
        # E[S^2] = integral t^2 f(t) dt, via a fine Riemann sum
        from repro.probability.uniform_sums import sum_uniform_pdf

        uppers = [1, Fraction(1, 2)]
        intervals = [(0, u) for u in uppers]
        steps = 3000
        span = Fraction(3, 2)
        riemann = sum(
            (span * Fraction(i, steps)) ** 2
            * sum_uniform_pdf(span * Fraction(i, steps), uppers)
            for i in range(1, steps)
        ) * span / steps
        exact = sum_uniform_moment(2, intervals)
        assert abs(riemann - exact) < Fraction(1, 300)

    def test_validation(self):
        with pytest.raises(ValueError):
            sum_uniform_moment(-1, [(0, 1)])


class TestCentralMoments:
    def test_first_central_moment_zero(self):
        intervals = [(0, 1), (Fraction(1, 3), Fraction(2, 3))]
        assert sum_uniform_central_moment(1, intervals) == 0

    def test_variance(self):
        intervals = [(0, 1), (0, 1), (0, 1)]
        assert sum_uniform_central_moment(2, intervals) == Fraction(3, 12)

    def test_odd_central_moment_of_symmetric_sum(self):
        # sums of symmetric variables are symmetric: odd central
        # moments vanish
        intervals = [(0, 1)] * 4
        assert sum_uniform_central_moment(3, intervals) == 0
        assert sum_uniform_central_moment(5, intervals) == 0


class TestIrwinHallMoment:
    def test_known_values(self):
        assert irwin_hall_moment(1, 3) == Fraction(3, 2)
        assert irwin_hall_moment(2, 2) == Fraction(2, 12) + 1

    def test_m_zero(self):
        assert irwin_hall_moment(0, 0) == 1
        assert irwin_hall_moment(2, 0) == 0


class TestExpectedOverflow:
    def test_no_overflow_when_capacity_exceeds_support(self):
        assert expected_overflow_single_bin(3, [(0, 1), (0, 1)]) == 0

    def test_single_uniform_closed_form(self):
        # E[(X - d)^+] = (1 - d)^2 / 2 for X ~ U[0, 1]
        for d in (Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)):
            assert expected_overflow_single_bin(d, [(0, 1)]) == (
                (1 - d) ** 2 / 2
            )

    def test_capacity_zero_gives_mean(self):
        # E[(S - 0)^+] = E[S]
        intervals = [(0, 1), (0, Fraction(1, 2))]
        assert expected_overflow_single_bin(0, intervals) == Fraction(3, 4)

    def test_two_uniforms_hand_case(self):
        # S = X + Y, X,Y ~ U[0,1]; E[(S - 1)^+] =
        # integral_1^2 (1 - F(t)) dt with F(t) = 1 - (2-t)^2/2 on [1,2]
        # = integral_1^2 (2-t)^2/2 dt = 1/6
        assert expected_overflow_single_bin(1, [(0, 1), (0, 1)]) == (
            Fraction(1, 6)
        )

    def test_monotone_in_capacity(self):
        intervals = [(0, 1)] * 3
        values = [
            expected_overflow_single_bin(Fraction(i, 4), intervals)
            for i in range(13)
        ]
        assert values == sorted(values, reverse=True)

    def test_empty(self):
        assert expected_overflow_single_bin(1, []) == 0


class TestTailBounds:
    def test_chebyshev_dominates_exact_tail(self):
        from repro.probability.uniform_sums import sum_uniform_cdf

        intervals = [(0, 1)] * 3
        for d in (Fraction(2), Fraction(9, 4), Fraction(5, 2)):
            exact_tail = 1 - sum_uniform_cdf(d, [1, 1, 1])
            assert chebyshev_overflow_bound(d, intervals) >= exact_tail

    def test_hoeffding_dominates_exact_tail(self):
        from repro.probability.uniform_sums import sum_uniform_cdf

        intervals = [(0, 1)] * 4
        for d in (Fraction(3), Fraction(7, 2)):
            exact_tail = float(1 - sum_uniform_cdf(d, [1] * 4))
            assert hoeffding_overflow_bound(d, intervals) >= exact_tail

    def test_vacuous_below_mean(self):
        intervals = [(0, 1)] * 2
        assert chebyshev_overflow_bound(Fraction(1, 2), intervals) == 1
        assert hoeffding_overflow_bound(Fraction(1, 2), intervals) == 1.0

    def test_bounds_much_looser_than_exact(self):
        """The quantitative point of the paper's exact approach: at the
        n = 3, delta = 1 operating point the generic bounds are useless
        (both ~1) while the exact overflow probability is ~0.5."""
        from repro.probability.uniform_sums import sum_uniform_cdf

        exact_tail = 1 - sum_uniform_cdf(1, [1, 1, 1])
        cheb = chebyshev_overflow_bound(1, [(0, 1)] * 3)
        assert cheb == 1  # vacuous: capacity below the mean 3/2
        assert exact_tail == Fraction(5, 6)


class TestTailBoundOverflowGuards:
    """Regression: astronomically large capacities must yield the
    correct limit 0.0, not OverflowError from float(Fraction)."""

    def test_hoeffding_huge_delta_is_zero(self):
        assert hoeffding_overflow_bound(Fraction(10) ** 200, [(0, 1)]) == 0.0

    def test_hoeffding_huge_ratio_from_tiny_widths(self):
        # Small (d - mean) but microscopic widths: the exponent ratio
        # itself overflows float range.
        tiny = [(0, Fraction(1, 10 ** 200))]
        assert hoeffding_overflow_bound(Fraction(2), tiny) == 0.0

    def test_hoeffding_large_but_floatable_still_underflows_cleanly(self):
        # Just inside float range: exp(-huge) underflows silently to 0.
        assert hoeffding_overflow_bound(Fraction(10 ** 150), [(0, 1)]) == 0.0

    def test_chebyshev_huge_delta_stays_exact(self):
        bound = chebyshev_overflow_bound(Fraction(10) ** 200, [(0, 1)])
        assert 0 < bound < Fraction(1, 10 ** 390)


class TestDegenerateIntervals:
    """Empty and zero-width interval sets take their documented
    vacuous/degenerate values instead of raising."""

    def test_empty_intervals(self):
        # S is the constant 0: tail above positive d is empty, bounds
        # above or at the mean are vacuous (1).
        assert chebyshev_overflow_bound(1, []) < 1
        assert hoeffding_overflow_bound(1, []) == 0.0
        assert chebyshev_overflow_bound(0, []) == 1
        assert hoeffding_overflow_bound(0, []) == 1.0

    def test_zero_width_intervals_are_constants(self):
        # S == 3 surely; any d > 3 has empty tail.
        intervals = [(1, 1), (2, 2)]
        assert sum_uniform_moment(1, intervals) == 3
        assert sum_uniform_central_moment(2, intervals) == 0
        assert chebyshev_overflow_bound(4, intervals) == 0
        assert hoeffding_overflow_bound(4, intervals) == 0.0
        assert chebyshev_overflow_bound(3, intervals) == 1
        assert hoeffding_overflow_bound(3, intervals) == 1.0

    def test_mixed_zero_width_shifts_moments(self):
        # A zero-width (constant) interval only shifts the sum.
        shifted = sum_uniform_moment(1, [(0, 1), (5, 5)])
        plain = sum_uniform_moment(1, [(0, 1)])
        assert shifted == plain + 5

    def test_zero_width_central_moments_match_shifted(self):
        for k in range(5):
            assert sum_uniform_central_moment(
                k, [(0, 1), (5, 5)]
            ) == sum_uniform_central_moment(k, [(0, 1)])


class TestTailBoundPropertyTrio:
    """Property tests over random interval sets: both generic bounds
    dominate the exact tail, and both are monotone in the capacity."""

    @staticmethod
    def _cases():
        import random

        rng = random.Random(20260809)
        cases = []
        for _ in range(6):
            m = rng.randint(1, 4)
            intervals = []
            for _ in range(m):
                lo = Fraction(rng.randint(0, 4), 4)
                width = Fraction(rng.randint(0, 8), 4)  # may be zero
                intervals.append((lo, lo + width))
            cases.append(intervals)
        return cases

    @staticmethod
    def _exact_tail(d, intervals):
        from repro.probability.uniform_sums import sum_uniform_cdf

        offset = sum((lo for lo, _ in intervals), Fraction(0))
        widths = [hi - lo for lo, hi in intervals]
        return 1 - sum_uniform_cdf(d - offset, widths)

    def test_bounds_dominate_exact_tail(self):
        for intervals in self._cases():
            span = sum((hi for _, hi in intervals), Fraction(0))
            for num in range(1, 9):
                d = num * (span + 1) / 8
                tail = self._exact_tail(d, intervals)
                assert chebyshev_overflow_bound(d, intervals) >= tail, (
                    intervals,
                    d,
                )
                assert (
                    hoeffding_overflow_bound(d, intervals)
                    >= float(tail) - 1e-12
                ), (intervals, d)

    def test_bounds_monotone_in_delta(self):
        for intervals in self._cases():
            span = sum((hi for _, hi in intervals), Fraction(0))
            deltas = [num * (span + 1) / 8 for num in range(1, 9)]
            cheb = [chebyshev_overflow_bound(d, intervals) for d in deltas]
            hoeff = [hoeffding_overflow_bound(d, intervals) for d in deltas]
            assert cheb == sorted(cheb, reverse=True), intervals
            assert hoeff == sorted(hoeff, reverse=True), intervals
