"""Latency, throughput, and shed behaviour of ``repro serve``
(BENCH_9.json).

Two measured phases against a live in-process server:

1. **Steady state** -- concurrent clients inside the admission
   envelope.  The artifact records accepted p50/p99 latency; the
   acceptance assertion is the Issue-9 deadline contract: every
   accepted request reports ``elapsed_ms <= deadline_ms``, and the
   observed p99 fits the configured deadline budget.
2. **2x overload** -- twice as many in-flight clients as
   ``max_inflight + queue_depth`` can hold, against a deliberately
   slowed kernel.  The artifact records the shed rate; asserted:
   the server sheds (shed_rate > 0) rather than queueing unboundedly,
   and nothing ever returns a 5xx.

Latency fields are ``*_ms`` on purpose: wall-clock latency on shared
CI runners is too noisy for the ``*_seconds`` perf-gate family, while
the shed-rate and status-code contracts are stable and asserted.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from fractions import Fraction
from pathlib import Path

from conftest import record

from repro.serve import ReproServer, ServeConfig
from repro.simulation.faulttolerance import FaultPlan, FaultSpec

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_9.json"

STEADY_CLIENTS = 4
STEADY_REQUESTS_EACH = 40
OVERLOAD_CLIENTS = 16  # 2x the overload config's capacity of 8


def run_server(config):
    """Start a server thread; returns (server, stop callable)."""
    holder: dict = {}
    started = threading.Event()

    async def main():
        server = ReproServer(config)
        await server.start()
        holder["server"] = server
        started.set()
        holder["report"] = await server.serve_until_stopped()

    thread = threading.Thread(
        target=lambda: asyncio.run(main()), daemon=True
    )
    thread.start()
    assert started.wait(timeout=30)
    server = holder["server"]
    while not server.ready:
        time.sleep(0.005)

    def stop():
        server.stop_threadsafe("bench")
        thread.join(timeout=30)
        return holder["report"]

    return server, stop


def hit(port, path):
    """One request; returns (status, latency_ms, parsed body|None)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        start = time.perf_counter()
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read()
        latency_ms = (time.perf_counter() - start) * 1000.0
        body = (
            json.loads(raw)
            if "json" in (response.getheader("Content-Type") or "")
            else None
        )
        return response.status, latency_ms, body
    finally:
        conn.close()


def percentile(sorted_values, q):
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, round(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def test_bench_serve_latency_and_shed():
    # Phase 1: steady state, inside the admission envelope.
    deadline_ms = 250.0
    server, stop = run_server(
        ServeConfig(
            port=0,
            max_inflight=8,
            queue_depth=16,
            deadline_ms=deadline_ms,
            warm=((3, Fraction(1, 2)), (4, Fraction(1, 2))),
            warm_optima=False,
        )
    )
    results = []
    lock = threading.Lock()

    def steady_client(index):
        for step in range(STEADY_REQUESTS_EACH):
            beta = 0.05 + 0.9 * (
                (index * STEADY_REQUESTS_EACH + step)
                % 97
            ) / 97.0
            outcome = hit(
                server.port,
                f"/v1/winning-probability?n=3&delta=1/2&beta={beta}",
            )
            with lock:
                results.append(outcome)

    threads = [
        threading.Thread(target=steady_client, args=(i,))
        for i in range(STEADY_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    steady_wall = time.perf_counter() - start
    steady_report = stop()

    total = STEADY_CLIENTS * STEADY_REQUESTS_EACH
    assert len(results) == total
    assert all(status == 200 for status, _, _ in results)
    for _, _, body in results:
        # the deadline contract, request by request
        assert body["elapsed_ms"] <= body["deadline_ms"]
    latencies = sorted(ms for _, ms, _ in results)
    p50_ms = percentile(latencies, 0.50)
    p99_ms = percentile(latencies, 0.99)
    assert p99_ms <= deadline_ms * 4  # generous: client-side, noisy CI
    throughput_rps = total / steady_wall

    # Phase 2: 2x overload against a slowed kernel.
    overload_chaos = FaultPlan(
        {
            ("serve", seq, 0): FaultSpec("slow", seconds=0.1)
            for seq in range(OVERLOAD_CLIENTS * 2)
        }
    )
    server, stop = run_server(
        ServeConfig(
            port=0,
            max_inflight=4,
            queue_depth=4,
            deadline_ms=5000.0,
            warm=((3, Fraction(1, 2)),),
            warm_optima=False,
            chaos=overload_chaos,
        )
    )
    overload_results = []

    def overload_client():
        outcome = hit(
            server.port,
            "/v1/winning-probability?n=3&delta=1/2&beta=0.6",
        )
        with lock:
            overload_results.append(outcome)

    threads = [
        threading.Thread(target=overload_client)
        for _ in range(OVERLOAD_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    overload_report = stop()

    statuses = [status for status, _, _ in overload_results]
    assert len(statuses) == OVERLOAD_CLIENTS
    assert set(statuses) <= {200, 429}  # never a 5xx under overload
    shed = statuses.count(429)
    served = statuses.count(200)
    assert shed >= 1  # 2x overload must shed, not queue unboundedly
    assert served >= 4  # while capacity is still served
    shed_rate = shed / len(statuses)

    record(
        "serve.latency",
        requests=total,
        p50_ms=round(p50_ms, 2),
        p99_ms=round(p99_ms, 2),
        throughput_rps=round(throughput_rps, 1),
        shed_rate=round(shed_rate, 3),
    )
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "serve_latency",
                "workload": {
                    "steady_clients": STEADY_CLIENTS,
                    "steady_requests": total,
                    "deadline_ms": deadline_ms,
                    "overload_clients": OVERLOAD_CLIENTS,
                    "overload_capacity": 8,
                },
                "p50_ms": p50_ms,
                "p99_ms": p99_ms,
                "throughput_rps": throughput_rps,
                "steady_statuses_200": total,
                "steady_drained_clean": steady_report.drained_clean,
                "overload_served": served,
                "overload_shed": shed,
                "shed_rate": shed_rate,
                "overload_5xx": 0,
                "overload_drained_clean": overload_report.drained_clean,
            },
            indent=2,
        )
        + "\n"
    )
