"""Sensitivity of the optima to the capacity ``delta``.

The paper evaluates two isolated points (``delta = 1`` at ``n = 3``,
``delta = 4/3`` at ``n = 4``).  This experiment maps the whole
landscape:

* ``beta*(delta)`` and ``P*(delta)`` for the threshold family (exact,
  one piecewise-polynomial maximisation per grid point);
* the coin value ``P_coin(delta)`` (exact closed form);
* the **improvement curve** ``P*_threshold - P_coin`` and its zero
  crossings -- the capacities where knowledge stops paying
  (discrepancy D2 is the statement that ``delta = 4/3`` sits past the
  first crossing for ``n = 4``).

Crossings are located by bisection on exact evaluations, so the
reported capacities are rational enclosures of the true crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = [
    "SensitivityPoint",
    "find_improvement_crossover",
    "improvement",
    "sensitivity_curve",
]


@dataclass(frozen=True)
class SensitivityPoint:
    """The exact optima at one ``(n, delta)``."""

    n: int
    delta: Fraction
    beta_star: Fraction
    threshold_value: Fraction
    coin_value: Fraction

    @property
    def improvement(self) -> Fraction:
        return self.threshold_value - self.coin_value


def improvement(n: int, delta: RationalLike) -> Fraction:
    """``P*_threshold(delta) - P_coin(delta)`` for ``n`` players (exact)."""
    d = as_fraction(delta)
    threshold = optimal_symmetric_threshold(n, d).probability
    coin = optimal_oblivious_winning_probability(d, n)
    return threshold - coin


def sensitivity_curve(
    n: int, deltas: Sequence[RationalLike]
) -> List[SensitivityPoint]:
    """Evaluate the exact optima over a capacity grid."""
    points = []
    for delta in deltas:
        d = as_fraction(delta)
        opt = optimal_symmetric_threshold(n, d)
        coin = optimal_oblivious_winning_probability(d, n)
        points.append(
            SensitivityPoint(
                n=n,
                delta=d,
                beta_star=opt.beta,
                threshold_value=opt.probability,
                coin_value=coin,
            )
        )
    return points


def find_improvement_crossover(
    n: int,
    lower: RationalLike,
    upper: RationalLike,
    tolerance: RationalLike = Fraction(1, 10**6),
) -> Optional[Fraction]:
    """Bisect for a capacity where the improvement changes sign.

    Returns a rational enclosure midpoint of width *tolerance*, or
    ``None`` when the improvement has the same sign at both ends (no
    crossing bracketed).  The improvement is continuous in ``delta``
    (both optima are), so a sign change guarantees a crossover inside.
    """
    lo = as_fraction(lower)
    hi = as_fraction(upper)
    tol = as_fraction(tolerance)
    if lo >= hi:
        raise ValueError(f"need lower < upper, got [{lo}, {hi}]")
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    f_lo = improvement(n, lo)
    f_hi = improvement(n, hi)
    if f_lo == 0:
        return lo
    if f_hi == 0:
        return hi
    if (f_lo > 0) == (f_hi > 0):
        return None
    while hi - lo > tol:
        mid = (lo + hi) / 2
        f_mid = improvement(n, mid)
        if f_mid == 0:
            return mid
        if (f_mid > 0) == (f_lo > 0):
            lo, f_lo = mid, f_mid
        else:
            hi, f_hi = mid, f_mid
    return (lo + hi) / 2
