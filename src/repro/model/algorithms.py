"""Concrete decision algorithms (Sections 3.2, 4 and 5).

Four families:

* :class:`ObliviousCoin` -- the oblivious class: output 0 with a fixed
  probability ``alpha``, never reading the input.  Theorem 4.3 proves
  ``alpha = 1/2`` optimal for every ``n``.
* :class:`SingleThresholdRule` -- the paper's non-oblivious class:
  output 0 iff the input is at most a threshold ``a``.  Section 5
  derives the optimal (non-uniform) thresholds.
* :class:`IntervalRule` -- a step function with arbitrarily many
  cut-points, generalising the single threshold; included because the
  framework explicitly allows "any (computable) function of the inputs
  it sees", and used in tests/ablations to confirm single thresholds
  are not beaten by multi-interval rules at the paper's optima.
* :class:`CallableRule` -- escape hatch wrapping any
  ``float -> {0, 1}`` function.

All of these are *local* (no-communication) rules and provide
vectorised batch paths for the Monte Carlo engine.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.model.agents import DecisionAlgorithm
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = [
    "CallableRule",
    "IntervalRule",
    "ObliviousCoin",
    "SingleThresholdRule",
]


class ObliviousCoin(DecisionAlgorithm):
    """Output 0 with probability ``alpha``, ignoring the input."""

    is_oblivious = True
    is_local = True

    def __init__(self, alpha: RationalLike):
        a = as_fraction(alpha)
        if not 0 <= a <= 1:
            raise ValueError(f"alpha must be a probability, got {a}")
        self._alpha = a

    @property
    def alpha(self) -> Fraction:
        """``P(y = 0)`` -- the paper's probability-vector entry."""
        return self._alpha

    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        return 0 if rng.random() < float(self._alpha) else 1

    def decide_batch(
        self, own_inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        draws = rng.random(own_inputs.shape[0])
        return (draws >= float(self._alpha)).astype(np.int8)

    def probability_of_zero(self, own_input: float) -> float:
        return float(self._alpha)

    def __repr__(self) -> str:
        return f"ObliviousCoin(alpha={self._alpha})"


class SingleThresholdRule(DecisionAlgorithm):
    """Output 0 iff ``x <= threshold`` (the paper's single-threshold class)."""

    is_oblivious = False
    is_local = True

    def __init__(self, threshold: RationalLike):
        a = as_fraction(threshold)
        if not 0 <= a <= 1:
            raise ValueError(f"threshold must be in [0, 1], got {a}")
        self._threshold = a

    @property
    def threshold(self) -> Fraction:
        return self._threshold

    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        return 0 if own_input <= float(self._threshold) else 1

    def decide_batch(
        self, own_inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return (own_inputs > float(self._threshold)).astype(np.int8)

    def probability_of_zero(self, own_input: float) -> float:
        return 1.0 if own_input <= float(self._threshold) else 0.0

    def __repr__(self) -> str:
        return f"SingleThresholdRule(threshold={self._threshold})"


class IntervalRule(DecisionAlgorithm):
    """A step function: output determined by which cut-interval holds ``x``.

    ``cuts = [c_1 < ... < c_m]`` split ``[0, 1]`` into ``m + 1``
    intervals; ``outputs[j]`` is the bit emitted on interval ``j``
    (closed on the right, matching the single-threshold convention
    ``x <= a -> 0``).  ``IntervalRule([a], [0, 1])`` is exactly
    :class:`SingleThresholdRule`.
    """

    is_oblivious = False
    is_local = True

    def __init__(
        self, cuts: Sequence[RationalLike], outputs: Sequence[int]
    ):
        cut_points = [as_fraction(c) for c in cuts]
        if len(outputs) != len(cut_points) + 1:
            raise ValueError(
                f"need len(outputs) == len(cuts) + 1, got "
                f"{len(outputs)} and {len(cut_points)}"
            )
        if any(b not in (0, 1) for b in outputs):
            raise ValueError(f"outputs must be bits, got {list(outputs)}")
        for prev, nxt in zip(cut_points, cut_points[1:]):
            if prev >= nxt:
                raise ValueError(f"cuts must be strictly increasing: {cuts}")
        for c in cut_points:
            if not 0 <= c <= 1:
                raise ValueError(f"cuts must lie in [0, 1], got {c}")
        self._cuts = tuple(cut_points)
        self._outputs = tuple(int(b) for b in outputs)

    @property
    def cuts(self):
        return self._cuts

    @property
    def outputs(self):
        return self._outputs

    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        for cut, bit in zip(self._cuts, self._outputs):
            if own_input <= float(cut):
                return bit
        return self._outputs[-1]

    def decide_batch(
        self, own_inputs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        edges = np.array([float(c) for c in self._cuts])
        # side="left": x exactly equal to a cut falls in the interval
        # *ending* at that cut, matching the closed-right convention.
        idx = np.searchsorted(edges, own_inputs, side="left")
        table = np.array(self._outputs, dtype=np.int8)
        return table[idx]

    def probability_of_zero(self, own_input: float) -> float:
        # The rule is deterministic: read the cut table directly rather
        # than constructing a throwaway Generator for decide()'s
        # signature (which was pure per-call allocation overhead).
        for cut, bit in zip(self._cuts, self._outputs):
            if own_input <= float(cut):
                return 1.0 - bit
        return 1.0 - self._outputs[-1]

    def measure_of_zero(self) -> Fraction:
        """Lebesgue measure of ``{x : rule(x) = 0}`` -- handy in analysis."""
        edges = (Fraction(0),) + self._cuts + (Fraction(1),)
        total = Fraction(0)
        for j, bit in enumerate(self._outputs):
            if bit == 0:
                total += edges[j + 1] - edges[j]
        return total

    def __repr__(self) -> str:
        return (
            f"IntervalRule(cuts={[str(c) for c in self._cuts]}, "
            f"outputs={list(self._outputs)})"
        )


class CallableRule(DecisionAlgorithm):
    """Wrap an arbitrary deterministic ``float -> {0, 1}`` function."""

    is_oblivious = False
    is_local = True

    def __init__(self, fn: Callable[[float], int], name: str = "callable"):
        self._fn = fn
        self._name = name

    def decide(
        self,
        own_input: float,
        observed: Mapping[int, float],
        rng: np.random.Generator,
    ) -> int:
        bit = self._fn(own_input)
        if bit not in (0, 1):
            raise ValueError(
                f"{self._name} returned {bit!r}; decision rules must "
                "return 0 or 1"
            )
        return int(bit)

    def probability_of_zero(self, own_input: float) -> float:
        return 1.0 - float(self._fn(own_input))

    def __repr__(self) -> str:
        return f"CallableRule({self._name})"
