"""Persistent cache tier: one checksummed JSON file per entry.

Storage discipline reuses the hardening of
:mod:`repro.simulation.results_store`:

* **Atomic writes.**  Every entry is written to a temporary file in
  the cache directory, flushed, ``fsync``-ed, then moved over the
  final name with :func:`os.replace` -- a crash or a concurrent
  reader/writer sees either a complete entry or none.  Two processes
  racing to cache the same key write byte-identical payloads, so the
  race is harmless.
* **Per-entry checksums.**  The payload carries a SHA-256 checksum of
  its own canonical serialisation; a flipped bit, a truncated file, or
  a hand-edited value fails verification and the entry is *deleted and
  recomputed*, counted as ``cache.disk_corrupt`` -- never served.
* **Version pinning.**  The kernel's code fingerprint is baked into
  the key (see :mod:`repro.cache.keys`), so an entry written by an
  older formula is simply never addressed again; as defence in depth
  the fingerprint is also stored *inside* the entry and re-verified on
  read, so even a hand-renamed or key-colliding file cannot smuggle a
  stale value in (counted as ``cache.disk_stale``).

* **Bounded growth.**  An optional ``max_bytes`` cap prunes the
  directory **oldest-first** (by modification time -- a hit does not
  refresh it, so this is insertion order in practice) after every
  write that pushes the total over the cap.  Eviction is counted as
  ``cache.disk_evictions``; an evicted entry is recomputed on next
  use, so the cap trades time, never correctness.  ``repro cache
  prune --max-bytes`` applies the same policy on demand.

Entries are small (a key, a rational, a checksum), and the directory
is flat: ``<cache_dir>/<key>.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.cache.codec import decode_value
from repro.cache.keys import CACHE_SCHEMA_VERSION
from repro.fsutil import fsync_directory
from repro.observability import get_instrumentation

__all__ = ["DiskCache"]

_ENTRY_SUFFIX = ".json"


def _entry_checksum(
    key: str, kernel: str, fingerprint: str, value_payload: Any
) -> str:
    canonical = json.dumps(
        {
            "key": key,
            "kernel": kernel,
            "fingerprint": fingerprint,
            "value": value_payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class DiskCache:
    """The persistent tier: ``get``/``put``/``clear`` over a directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        max_bytes: Optional[int] = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        self._directory = Path(directory)
        self._max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._stale = 0
        self._evictions = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path_for(self, key: str) -> Path:
        return self._directory / f"{key}{_ENTRY_SUFFIX}"

    def _count(self, field: str, metric: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        get_instrumentation().increment(metric)

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def get(
        self, key: str, fingerprint: str
    ) -> Tuple[bool, Optional[Any]]:
        """``(found, value)``; corrupt or stale entries are deleted.

        Every failure mode -- unreadable file, invalid JSON, checksum
        mismatch, undecodable value -- degrades to a miss plus a
        recompute; the cache can lose time to damage, never
        correctness.
        """
        path = self._path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            self._count("_misses", "cache.disk_misses")
            return False, None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("entry is not a JSON object")
            if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
                raise ValueError(
                    f"schema_version {payload.get('schema_version')!r}"
                )
            expected = _entry_checksum(
                payload["key"],
                payload["kernel"],
                payload["fingerprint"],
                payload["value"],
            )
            if payload.get("checksum") != expected or payload["key"] != key:
                raise ValueError("checksum mismatch")
            value = decode_value(payload["value"])
        except (ValueError, KeyError, TypeError):
            self._count("_corrupt", "cache.disk_corrupt")
            self._discard(path)
            return False, None
        if payload["fingerprint"] != fingerprint:
            self._count("_stale", "cache.disk_stale")
            self._discard(path)
            return False, None
        self._count("_hits", "cache.disk_hits")
        return True, value

    def put(
        self, key: str, fingerprint: str, kernel: str, value_payload: Any
    ) -> None:
        """Persist one encoded entry atomically (tmp + fsync + replace).

        An unwritable directory degrades to a no-op: the disk tier is
        an accelerator, never a correctness dependency.
        """
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "kernel": kernel,
            "fingerprint": fingerprint,
            "value": value_payload,
            "checksum": _entry_checksum(
                key, kernel, fingerprint, value_payload
            ),
        }
        target = self._path_for(key)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self._directory),
                prefix=f".{key[:16]}.",
                suffix=".tmp",
            )
            try:
                with os.fdopen(descriptor, "w") as handle:
                    json.dump(entry, handle, separators=(",", ":"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_name, target)
                # second fsync, on the directory: the rename is not
                # durable until its entry is flushed
                fsync_directory(self._directory)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._count("_writes", "cache.disk_writes")
        if self._max_bytes is not None:
            self.prune(self._max_bytes)

    @property
    def max_bytes(self) -> Optional[int]:
        """The size cap, or ``None`` when the tier is unbounded."""
        return self._max_bytes

    def total_bytes(self) -> int:
        """Bytes currently held by entry files."""
        total = 0
        try:
            for path in self._directory.iterdir():
                if path.suffix == _ENTRY_SUFFIX:
                    try:
                        total += path.stat().st_size
                    except OSError:
                        pass
        except OSError:
            return 0
        return total

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-first until the tier fits *max_bytes*.

        Returns how many entries were evicted.  Age is modification
        time (ties broken by name for determinism); a concurrently
        vanished file simply does not need evicting.  Counted per
        entry as ``cache.disk_evictions``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        try:
            entries = []
            for path in self._directory.iterdir():
                if path.suffix != _ENTRY_SUFFIX:
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime_ns, path.name, path,
                                stat.st_size))
        except OSError:
            return 0
        total = sum(size for _, _, _, size in entries)
        evicted = 0
        for _, _, path, size in sorted(entries):
            if total <= max_bytes:
                break
            self._discard(path)
            total -= size
            evicted += 1
            self._count("_evictions", "cache.disk_evictions")
        return evicted

    def entry_count(self) -> int:
        """How many entries currently sit in the directory."""
        try:
            return sum(
                1
                for p in self._directory.iterdir()
                if p.suffix == _ENTRY_SUFFIX
            )
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        try:
            entries = list(self._directory.iterdir())
        except OSError:
            return 0
        for path in entries:
            if path.suffix == _ENTRY_SUFFIX:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self._directory),
                "entries": self.entry_count(),
                "total_bytes": self.total_bytes(),
                "max_bytes": self._max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "writes": self._writes,
                "corrupt": self._corrupt,
                "stale": self._stale,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return f"DiskCache({self._directory})"
