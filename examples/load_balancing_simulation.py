"""Load balancing scenario: distributed job placement without coordination.

The paper's motivating story (after Papadimitriou & Yannakakis 1991):
``n`` independent job sources each receive one job of random size and
must choose one of two servers, each with fixed capacity, *without
talking to each other*.  This example sizes that system:

1. sweep the common placement threshold and plot the overflow-free
   probability (exact + simulated);
2. compare protocol families on the same workload: random placement,
   the optimal threshold, and a full-information coordinator;
3. show what happens as the fleet grows with capacity scaling n/3.

Run:  python examples/load_balancing_simulation.py
"""

from fractions import Fraction

from repro.baselines.centralized import centralized_winning_probability
from repro.baselines.fair_coin import fair_coin_value
from repro.experiments.report import format_table, render_ascii_plot
from repro.model.algorithms import SingleThresholdRule
from repro.model.system import DistributedSystem
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.simulation.engine import MonteCarloEngine
from repro.simulation.runner import sweep_thresholds


def threshold_sweep(n: int, capacity) -> None:
    print(f"\n== Threshold sweep: {n} sources, server capacity {capacity} ==")
    result = sweep_thresholds(
        n, capacity, grid_size=11, simulate=True, trials=50_000, seed=1
    )
    rows = []
    for point in result.points:
        rows.append(
            [
                f"{float(point.parameter):.2f}",
                f"{float(point.exact):.5f}",
                f"{point.simulated:.5f}",
                "ok" if point.consistent else "MISMATCH",
            ]
        )
    print(
        format_table(
            ["threshold", "P(no overflow) exact", "simulated", "check"],
            rows,
        )
    )
    assert result.all_consistent()


def protocol_comparison(n: int, capacity) -> None:
    print(f"\n== Protocol comparison: {n} sources, capacity {capacity} ==")
    optimum = optimal_symmetric_threshold(n, capacity)
    random_placement = fair_coin_value(n, capacity)
    coordinator = centralized_winning_probability(
        n, capacity, trials=60_000, seed=2
    )
    print(
        format_table(
            ["protocol", "communication", "P(no overflow)"],
            [
                [
                    "random placement (fair coin)",
                    "none",
                    f"{float(random_placement):.5f}",
                ],
                [
                    f"optimal threshold ({float(optimum.beta):.4f})",
                    "none",
                    f"{float(optimum.probability):.5f}",
                ],
                [
                    "omniscient coordinator (bound)",
                    "full",
                    f"{coordinator.estimate:.5f}",
                ],
            ],
        )
    )


def fleet_growth() -> None:
    print("\n== Fleet growth with capacity scaled as n/3 ==")
    series = []
    for n in (3, 4, 5, 6):
        capacity = Fraction(n, 3)
        optimum = optimal_symmetric_threshold(n, capacity)
        series.append(
            (float(n), float(optimum.probability))
        )
        print(
            f"  n={n}: capacity={capacity}, "
            f"beta*={float(optimum.beta):.4f}, "
            f"P*={float(optimum.probability):.5f}"
        )
    print(
        render_ascii_plot(
            [("optimal threshold P*", series)], width=40, height=10
        )
    )


def stress_one_configuration() -> None:
    """Replay the n=3 optimum at scale and report the overflow margin."""
    print("\n== Stress run: optimal protocol, 500k placements ==")
    optimum = optimal_symmetric_threshold(3, 1)
    system = DistributedSystem(
        [SingleThresholdRule(optimum.beta) for _ in range(3)], 1
    )
    engine = MonteCarloEngine(seed=3)
    summary = engine.estimate_winning_probability(system, trials=500_000)
    print(f"  simulated: {summary}")
    print(f"  exact:     {float(optimum.probability):.6f}")
    assert summary.covers(float(optimum.probability))


def main() -> None:
    threshold_sweep(3, 1)
    protocol_comparison(3, 1)
    protocol_comparison(4, Fraction(4, 3))
    fleet_growth()
    stress_one_configuration()


if __name__ == "__main__":
    main()
