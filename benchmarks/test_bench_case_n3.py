"""E3 -- Section 5.2.1: the worked case n = 3, delta = 1.

Regenerates everything the paper derives for this case: the piecewise
cubics, the optimality quadratic beta^2 - 2 beta + 6/7, the optimal
threshold 1 - sqrt(1/7) = 0.622, the optimal probability 0.545, and
the comparison against the oblivious optimum 5/12 (the
Papadimitriou-Yannakakis conjecture settled by the paper).
"""

from fractions import Fraction

from conftest import record

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.symbolic.polynomial import Polynomial


def test_bench_case_n3_delta1(benchmark):
    opt = benchmark(
        lambda: optimal_symmetric_threshold(3, 1, Fraction(1, 10**15))
    )

    # the two cubics of Section 5.2.1
    low = opt.curve.piece_at(Fraction(1, 4)).polynomial
    high = opt.curve.piece_at(Fraction(4, 5)).polynomial
    assert low == Polynomial(
        [Fraction(1, 6), 0, Fraction(3, 2), Fraction(-1, 2)]
    )
    assert high == Polynomial(
        [Fraction(-11, 6), 9, Fraction(-21, 2), Fraction(7, 2)]
    )

    # the optimality quadratic (up to the positive factor 21/2)
    assert opt.stationarity_polynomial == (
        Polynomial([Fraction(6, 7), -2, 1]) * Fraction(21, 2)
    )

    # the paper's numbers
    beta_star = float(opt.beta)
    p_star = float(opt.probability)
    assert abs(beta_star - (1 - (1 / 7) ** 0.5)) < 1e-14
    assert round(p_star, 3) == 0.545

    oblivious = optimal_oblivious_winning_probability(1, 3)
    assert oblivious == Fraction(5, 12)
    assert opt.probability > oblivious

    record(
        "case n=3 delta=1",
        beta_star=f"{beta_star:.7f} (paper: 0.622)",
        p_star=f"{p_star:.7f} (paper: 0.545)",
        oblivious=f"{float(oblivious):.7f} (= 5/12)",
    )


def test_bench_case_n3_monte_carlo_confirmation(benchmark):
    """Replay the optimal protocol through the simulator."""
    from repro.model.algorithms import SingleThresholdRule
    from repro.model.system import DistributedSystem
    from repro.simulation.engine import MonteCarloEngine

    opt = optimal_symmetric_threshold(3, 1)
    system = DistributedSystem(
        [SingleThresholdRule(opt.beta) for _ in range(3)], 1
    )

    def run():
        return MonteCarloEngine(seed=31).estimate_winning_probability(
            system, trials=200_000
        )

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary.covers(float(opt.probability))
    record(
        "case n=3 Monte Carlo",
        simulated=f"{summary.estimate:.5f}",
        exact=f"{float(opt.probability):.5f}",
    )
