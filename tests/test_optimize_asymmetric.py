"""Tests for repro.optimize.asymmetric."""

from fractions import Fraction

import pytest

from repro.core.nonoblivious import threshold_winning_probability
from repro.optimize.asymmetric import (
    best_two_group_profile,
    coordinate_ascent_thresholds,
    two_group_winning_probability,
)
from repro.optimize.threshold_opt import optimal_symmetric_threshold


class TestTwoGroupWinningProbability:
    def test_matches_direct_evaluation(self):
        v = two_group_winning_probability(
            1, 3, 1, Fraction(1, 2), Fraction(3, 4)
        )
        assert v == threshold_winning_probability(
            1, [Fraction(1, 2), Fraction(3, 4), Fraction(3, 4)]
        )

    def test_symmetric_special_case(self):
        beta = Fraction(3, 5)
        assert two_group_winning_probability(1, 4, 2, beta, beta) == (
            threshold_winning_probability(1, [beta] * 4)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            two_group_winning_probability(1, 3, 4, Fraction(1, 2), 0)
        with pytest.raises(ValueError):
            two_group_winning_probability(1, 0, 0, 0, 0)


class TestBestTwoGroupProfile:
    def test_includes_symmetric_grid_optimum(self):
        value, k, b1, b2 = best_two_group_profile(1, 3, grid_size=11)
        # must at least reach the best symmetric grid point
        symmetric_best = max(
            threshold_winning_probability(1, [Fraction(i, 10)] * 3)
            for i in range(11)
        )
        assert value >= symmetric_best

    def test_two_players_split_is_found(self):
        # n = 2, delta = 1: the profile (1, 0) wins always -- the grid
        # search must find value 1
        value, k, b1, b2 = best_two_group_profile(1, 2, grid_size=5)
        assert value == 1

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            best_two_group_profile(1, 3, grid_size=1)


class TestCoordinateAscent:
    def test_monotone_improvement(self):
        start = [Fraction(1, 2)] * 3
        start_value = threshold_winning_probability(1, start)
        thresholds, value = coordinate_ascent_thresholds(
            1, start, rounds=2, grid_size=21, refine_steps=2
        )
        assert value >= start_value

    def test_converges_to_symmetric_optimum_from_symmetric_start(self):
        opt = optimal_symmetric_threshold(3, 1)
        thresholds, value = coordinate_ascent_thresholds(
            1, [Fraction(3, 5)] * 3, rounds=3, grid_size=41, refine_steps=3
        )
        # line-search resolution caps the accuracy at ~1e-5
        assert value >= opt.probability - Fraction(1, 10**4)

    def test_n3_symmetric_optimum_survives_asymmetric_attack(self):
        """At n = 3, delta = 1 the symmetric optimum is globally
        optimal within the threshold class: ascent from a skewed start
        does not exceed it beyond line-search resolution (and the
        exhaustive (1, a, b) grid tops out at 1/2 < 0.5446)."""
        opt = optimal_symmetric_threshold(3, 1)
        thresholds, value = coordinate_ascent_thresholds(
            1,
            [Fraction(1, 5), Fraction(1, 2), Fraction(9, 10)],
            rounds=4,
            grid_size=41,
            refine_steps=3,
        )
        assert value <= opt.probability + Fraction(1, 10**4)

    def test_paper_discrepancy_d4_split_beats_symmetric_at_n4(self):
        """Discrepancy D4 (see EXPERIMENTS.md): the optimal threshold
        profile at the paper's n = 4, delta = 4/3 case is the
        asymmetric deterministic split (1, 1, 0, 0) worth exactly
        49/81 ~ 0.605 -- Theorem 5.2's symmetric reduction misses it."""
        from repro.core.nonoblivious import threshold_winning_probability

        split = threshold_winning_probability(
            Fraction(4, 3), [1, 1, 0, 0]
        )
        assert split == Fraction(49, 81)
        symmetric = optimal_symmetric_threshold(4, Fraction(4, 3))
        assert split > symmetric.probability
        # the two-group grid search finds it (k = 2, betas 1 and 0)
        value, k, b1, b2 = best_two_group_profile(
            Fraction(4, 3), 4, grid_size=5
        )
        assert value >= Fraction(49, 81)
        # and coordinate ascent escapes to it from a skewed start
        thresholds, reached = coordinate_ascent_thresholds(
            Fraction(4, 3),
            [Fraction(1, 5), Fraction(2, 5), Fraction(4, 5), Fraction(9, 10)],
            rounds=3,
            grid_size=33,
            refine_steps=2,
        )
        assert reached == Fraction(49, 81)
        assert sorted(thresholds) == [0, 0, 1, 1]

    def test_d4_split_value_by_group_sizes(self):
        """The split value is F_k(delta) * F_(n-k)(delta); the even
        split maximises it among splits for the paper's cases."""
        from repro.core.nonoblivious import threshold_winning_probability
        from repro.probability.uniform_sums import irwin_hall_cdf

        d = Fraction(4, 3)
        for k in range(5):
            profile = [Fraction(1)] * k + [Fraction(0)] * (4 - k)
            assert threshold_winning_probability(d, profile) == (
                irwin_hall_cdf(d, 4 - k) * irwin_hall_cdf(d, k)
            )
        even = irwin_hall_cdf(d, 2) ** 2
        uneven = irwin_hall_cdf(d, 1) * irwin_hall_cdf(d, 3)
        assert even > uneven

    def test_validation(self):
        with pytest.raises(ValueError):
            coordinate_ascent_thresholds(1, [], rounds=1)
        with pytest.raises(ValueError):
            coordinate_ascent_thresholds(1, [Fraction(1, 2)], rounds=0)
        with pytest.raises(ValueError):
            coordinate_ascent_thresholds(
                1, [Fraction(1, 2)], grid_size=2
            )
