"""Tests for repro.symbolic.rational."""

from fractions import Fraction

import pytest

from repro.symbolic.rational import (
    as_fraction,
    binomial,
    factorial,
    falling_factorial,
    integer_power,
    is_rational_like,
    rational_range,
    sign,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(4, 3)
        assert as_fraction(f) is f

    def test_string_ratio(self):
        assert as_fraction("4/3") == Fraction(4, 3)

    def test_string_decimal(self):
        assert as_fraction("0.25") == Fraction(1, 4)

    def test_float_exact_binary(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_float_binary_representation_is_exact(self):
        # 0.1 is NOT 1/10 in binary; the conversion must be exact, not
        # "helpfully" rounded.
        assert as_fraction(0.1) != Fraction(1, 10)
        assert as_fraction(0.1) == Fraction(*(0.1).as_integer_ratio())

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            as_fraction([1, 2])  # type: ignore[arg-type]

    def test_negative(self):
        assert as_fraction("-7/2") == Fraction(-7, 2)


class TestIsRationalLike:
    def test_accepts_int_fraction_float_str(self):
        assert is_rational_like(5)
        assert is_rational_like(Fraction(1, 3))
        assert is_rational_like(2.5)
        assert is_rational_like("3/4")

    def test_rejects_bad_string(self):
        assert not is_rational_like("not a number")

    def test_rejects_nan(self):
        assert not is_rational_like(float("nan"))

    def test_rejects_division_by_zero_string(self):
        assert not is_rational_like("1/0")

    def test_rejects_other_objects(self):
        assert not is_rational_like(object())


class TestFactorial:
    def test_small_values(self):
        assert factorial(0) == 1
        assert factorial(1) == 1
        assert factorial(5) == 120

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            factorial(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            factorial(2.0)  # type: ignore[arg-type]


class TestBinomial:
    def test_pascal_row(self):
        assert [binomial(4, k) for k in range(5)] == [1, 4, 6, 4, 1]

    def test_out_of_range_is_zero(self):
        assert binomial(4, 5) == 0
        assert binomial(4, -1) == 0
        assert binomial(-1, 0) == 0

    def test_symmetry(self):
        for n in range(8):
            for k in range(n + 1):
                assert binomial(n, k) == binomial(n, n - k)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            binomial(4.0, 2)  # type: ignore[arg-type]


class TestFallingFactorial:
    def test_values(self):
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 2) == 20
        assert falling_factorial(5, 5) == 120

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            falling_factorial(5, -1)

    def test_relation_to_factorial(self):
        assert falling_factorial(7, 7) == factorial(7)


class TestIntegerPower:
    def test_zero_exponent_is_one(self):
        assert integer_power(Fraction(0), 0) == 1
        assert integer_power(Fraction(5, 3), 0) == 1

    def test_positive(self):
        assert integer_power(Fraction(2, 3), 3) == Fraction(8, 27)

    def test_negative_exponent(self):
        assert integer_power(Fraction(2), -2) == Fraction(1, 4)

    def test_zero_to_negative_rejected(self):
        with pytest.raises(ZeroDivisionError):
            integer_power(Fraction(0), -1)


class TestSign:
    def test_all_cases(self):
        assert sign(Fraction(3, 7)) == 1
        assert sign(Fraction(-1, 9)) == -1
        assert sign(Fraction(0)) == 0


class TestRationalRange:
    def test_endpoints_included(self):
        grid = rational_range(0, 1, 5)
        assert grid[0] == 0
        assert grid[-1] == 1
        assert len(grid) == 5

    def test_even_spacing(self):
        grid = rational_range(0, 1, 5)
        steps = {b - a for a, b in zip(grid, grid[1:])}
        assert steps == {Fraction(1, 4)}

    def test_exact_rational_grid(self):
        grid = rational_range("1/3", "2/3", 3)
        assert grid == [Fraction(1, 3), Fraction(1, 2), Fraction(2, 3)]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            rational_range(0, 1, 1)
