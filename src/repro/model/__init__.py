"""The distributed decision-making model of Section 3.

* :mod:`repro.model.agents` -- players and the decision-algorithm
  interface (deterministic or randomized, oblivious or not).
* :mod:`repro.model.algorithms` -- the concrete algorithm families the
  paper studies: oblivious coins, single-threshold rules, plus the
  general interval and callable rules the framework allows.
* :mod:`repro.model.communication` -- communication patterns.  The paper
  settles the *no communication* case; the pattern abstraction exists
  so the framework matches the paper's general model (Section 3.1) and
  its discussion of extensions.
* :mod:`repro.model.system` -- the distributed system: inputs to
  decisions to bin loads to the win/overflow verdict.
"""

from repro.model.agents import DecisionAlgorithm, Player
from repro.model.algorithms import (
    CallableRule,
    IntervalRule,
    ObliviousCoin,
    SingleThresholdRule,
)
from repro.model.inputs import (
    BetaInputs,
    InputDistribution,
    MixtureInputs,
    ScaledUniformInputs,
    UniformInputs,
)
from repro.model.communication import (
    CommunicationPattern,
    FullInformation,
    GraphPattern,
    NoCommunication,
)
from repro.model.messaging import (
    AnnouncementProtocol,
    Message,
    PartialSumChainProtocol,
    ProtocolEngine,
    ProtocolOutcome,
    RoundBasedProtocol,
    Transcript,
)
from repro.model.system import DistributedSystem, Outcome

__all__ = [
    "AnnouncementProtocol",
    "BetaInputs",
    "Message",
    "PartialSumChainProtocol",
    "ProtocolEngine",
    "ProtocolOutcome",
    "RoundBasedProtocol",
    "Transcript",
    "CallableRule",
    "InputDistribution",
    "MixtureInputs",
    "ScaledUniformInputs",
    "UniformInputs",
    "CommunicationPattern",
    "DecisionAlgorithm",
    "DistributedSystem",
    "FullInformation",
    "GraphPattern",
    "IntervalRule",
    "NoCommunication",
    "ObliviousCoin",
    "Outcome",
    "Player",
    "SingleThresholdRule",
]
