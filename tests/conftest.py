"""Shared fixtures and helpers for the test-suite.

Conventions used throughout the tests:

* Exact assertions (``==`` on ``Fraction``) wherever the quantity is
  exact -- which is most of the package.
* Monte Carlo assertions always go through a Wilson/normal interval at
  z = 3.89 (two-sided tail ~ 1e-4), with fixed seeds, so spurious
  failures are rare and reruns are deterministic.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def fresh_kernel_cache():
    """Isolate the memoization cache between tests.

    The cache is process-wide by design; without this, one test's warm
    entries would mask another test's counters and call-count
    assertions.  Dropping the memory tier before each test restores
    cold-cache behaviour (tests that want a disk tier configure their
    own directory and are responsible for detaching it).
    """
    from repro.cache import clear_cache, configure_cache

    configure_cache(enabled=True, directory=None)
    clear_cache(include_disk=False)
    yield
    configure_cache(enabled=True, directory=None)
    clear_cache(include_disk=False)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that sample."""
    return np.random.default_rng(12345)


@pytest.fixture
def tight_tolerance() -> Fraction:
    """Root-refinement tolerance used by exact-optimum tests."""
    return Fraction(1, 10**15)


def fraction_close(a: Fraction, b: Fraction, tol: Fraction) -> bool:
    """|a - b| <= tol for exact rationals."""
    return abs(a - b) <= tol
