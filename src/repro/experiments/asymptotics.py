"""Large-``n`` behaviour of the optima (beyond the paper's n <= 5).

At fixed capacity the winning probability of *any* protocol collapses
as the player count grows (the total load concentrates at ``n/2`` per
bin, far above a fixed ``delta``); the interesting quantities are the
*rates*:

* the decay ratio ``P*(n + 1) / P*(n)`` for the optimal threshold and
  the fair coin, computed exactly out to ``n`` in the teens;
* the drift of the optimal threshold ``beta*(n)``;
* the *relative advantage* ``P*_threshold / P*_coin``, which stays in
  a band around 1.1-1.4 even as both values vanish -- the
  multiplicative knowledge premium persists at scale (it oscillates
  with how the capacity interacts with the breakpoint lattice rather
  than converging monotonically).

Everything is exact; the decay ratios are reported as fractions so the
asymptotic tests can assert monotonicity without float noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.optimize.threshold_opt import optimal_symmetric_threshold
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["AsymptoticsRow", "asymptotics_table", "decay_ratios"]


@dataclass(frozen=True)
class AsymptoticsRow:
    """Exact optima at one player count."""

    n: int
    beta_star: Fraction
    threshold_value: Fraction
    coin_value: Fraction

    @property
    def relative_advantage(self) -> Fraction:
        """``P*_threshold / P*_coin`` (both positive for delta > 0)."""
        return self.threshold_value / self.coin_value


def asymptotics_table(
    ns: Sequence[int], delta: RationalLike = 1
) -> List[AsymptoticsRow]:
    """Exact optima for each ``n`` at fixed capacity *delta*."""
    d = as_fraction(delta)
    rows = []
    for n in ns:
        if n < 1:
            raise ValueError(f"player counts must be >= 1, got {n}")
        opt = optimal_symmetric_threshold(n, d)
        coin = optimal_oblivious_winning_probability(d, n)
        rows.append(
            AsymptoticsRow(
                n=n,
                beta_star=opt.beta,
                threshold_value=opt.probability,
                coin_value=coin,
            )
        )
    return rows


def decay_ratios(rows: Sequence[AsymptoticsRow]) -> List[Fraction]:
    """Consecutive ratios ``P*_threshold(n_{i+1}) / P*_threshold(n_i)``.

    Rows must be sorted by ``n``; zero values (capacity 0) are
    rejected.
    """
    ratios = []
    for prev, nxt in zip(rows, rows[1:]):
        if prev.threshold_value == 0:
            raise ValueError(
                f"P*(n={prev.n}) is zero; ratios are undefined"
            )
        ratios.append(nxt.threshold_value / prev.threshold_value)
    return ratios
