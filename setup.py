"""Legacy shim: enables `python setup.py develop` / editable installs in
offline environments that lack the `wheel` package (pip's modern editable
path requires bdist_wheel).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
