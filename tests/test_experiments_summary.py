"""Tests for repro.experiments.summary and the `repro all` command."""

import pytest

from repro.experiments.summary import (
    CheckResult,
    ReproductionReport,
    reproduce_all,
)


class TestReproduceAll:
    @pytest.fixture(scope="class")
    def report(self):
        return reproduce_all(monte_carlo_trials=None)

    def test_all_checks_pass(self, report):
        assert report.passed, report.render()

    def test_exact_only_skips_sampling_checks(self, report):
        items = [c.item for c in report.checks]
        assert "Prop 2.2 vs Monte Carlo" not in items
        assert "protocol replay (n=3 optimum)" not in items

    def test_covers_every_headline(self, report):
        items = " ".join(c.item for c in report.checks)
        for keyword in ("5.2.1", "5.2.2", "Thm 4.3", "D1", "D2", "E8"):
            assert keyword in items

    def test_with_monte_carlo(self):
        report = reproduce_all(monte_carlo_trials=20_000)
        assert report.passed, report.render()
        items = [c.item for c in report.checks]
        assert "Prop 2.2 vs Monte Carlo" in items

    def test_render_format(self, report):
        text = report.render()
        assert "[ok ]" in text
        assert "REPRODUCTION COMPLETE" in text


class TestReportMechanics:
    def test_failures_listed(self):
        report = ReproductionReport(
            checks=[
                CheckResult("a", "1", "1", True),
                CheckResult("b", "2", "3", False, note="oops"),
            ]
        )
        assert not report.passed
        assert [c.item for c in report.failures] == ["b"]
        text = report.render()
        assert "FAIL" in text
        assert "1 CHECK(S) FAILED" in text
        assert "(oops)" in text


class TestCliAll:
    def test_exact_only(self, capsys):
        from repro.cli import main

        assert main(["all", "--exact-only"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCTION COMPLETE" in out
