"""Tests for repro.model.agents and repro.model.algorithms."""

from fractions import Fraction

import numpy as np
import pytest

from repro.model.agents import DecisionAlgorithm, Player
from repro.model.algorithms import (
    CallableRule,
    IntervalRule,
    ObliviousCoin,
    SingleThresholdRule,
)


class TestPlayer:
    def test_default_name(self):
        p = Player(0, ObliviousCoin(Fraction(1, 2)))
        assert p.name == "P1"

    def test_custom_name(self):
        p = Player(2, ObliviousCoin(Fraction(1, 2)), name="alice")
        assert p.name == "alice"
        assert "alice" in str(p)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Player(-1, ObliviousCoin(Fraction(1, 2)))


class TestObliviousCoin:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ObliviousCoin(Fraction(3, 2))
        with pytest.raises(ValueError):
            ObliviousCoin(-1)

    def test_flags(self):
        coin = ObliviousCoin(Fraction(1, 2))
        assert coin.is_oblivious
        assert coin.is_local

    def test_ignores_input(self, rng):
        coin = ObliviousCoin(1)  # always 0
        assert coin.decide(0.99, {}, rng) == 0
        coin = ObliviousCoin(0)  # always 1
        assert coin.decide(0.01, {}, rng) == 1

    def test_probability_of_zero(self):
        assert ObliviousCoin(Fraction(2, 7)).probability_of_zero(0.4) == (
            pytest.approx(2 / 7)
        )

    def test_batch_frequency(self, rng):
        coin = ObliviousCoin(Fraction(1, 4))
        outs = coin.decide_batch(np.zeros(40_000), rng)
        assert set(np.unique(outs)) <= {0, 1}
        # P(0) = 1/4; z=3.89 interval on 40k draws
        assert abs(float((outs == 0).mean()) - 0.25) < 3.89 * (
            0.25 * 0.75 / 40_000
        ) ** 0.5

    def test_batch_deterministic_cases(self, rng):
        assert ObliviousCoin(1).decide_batch(np.zeros(10), rng).sum() == 0
        assert ObliviousCoin(0).decide_batch(np.zeros(10), rng).sum() == 10


class TestSingleThresholdRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            SingleThresholdRule(Fraction(-1, 2))
        with pytest.raises(ValueError):
            SingleThresholdRule(2)

    def test_decision_boundary(self, rng):
        rule = SingleThresholdRule(Fraction(1, 2))
        assert rule.decide(0.5, {}, rng) == 0  # closed at the threshold
        assert rule.decide(0.500001, {}, rng) == 1
        assert rule.decide(0.0, {}, rng) == 0

    def test_flags(self):
        rule = SingleThresholdRule(Fraction(1, 2))
        assert not rule.is_oblivious
        assert rule.is_local

    def test_batch_matches_scalar(self, rng):
        rule = SingleThresholdRule(Fraction(3, 10))
        xs = np.linspace(0, 1, 101)
        batch = rule.decide_batch(xs, rng)
        scalar = [rule.decide(float(x), {}, rng) for x in xs]
        assert list(batch) == scalar

    def test_probability_of_zero(self):
        rule = SingleThresholdRule(Fraction(1, 2))
        assert rule.probability_of_zero(0.3) == 1.0
        assert rule.probability_of_zero(0.7) == 0.0


class TestIntervalRule:
    def test_reduces_to_single_threshold(self, rng):
        multi = IntervalRule([Fraction(2, 5)], [0, 1])
        single = SingleThresholdRule(Fraction(2, 5))
        for x in (0.0, 0.2, 0.4, 0.41, 0.9, 1.0):
            assert multi.decide(x, {}, rng) == single.decide(x, {}, rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalRule([Fraction(1, 2)], [0])  # wrong outputs length
        with pytest.raises(ValueError):
            IntervalRule([Fraction(1, 2)], [0, 2])  # non-bit
        with pytest.raises(ValueError):
            IntervalRule(
                [Fraction(1, 2), Fraction(1, 4)], [0, 1, 0]
            )  # not increasing
        with pytest.raises(ValueError):
            IntervalRule([Fraction(3, 2)], [0, 1])  # outside [0, 1]

    def test_sandwich_rule(self, rng):
        # 0 on [0, 1/3], 1 on (1/3, 2/3], 0 on (2/3, 1]
        rule = IntervalRule(
            [Fraction(1, 3), Fraction(2, 3)], [0, 1, 0]
        )
        assert rule.decide(0.2, {}, rng) == 0
        assert rule.decide(0.5, {}, rng) == 1
        assert rule.decide(0.9, {}, rng) == 0

    def test_batch_matches_scalar_incl_boundaries(self, rng):
        rule = IntervalRule(
            [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)], [1, 0, 1, 0]
        )
        xs = np.array([0.0, 0.25, 0.26, 0.5, 0.51, 0.75, 0.76, 1.0])
        batch = rule.decide_batch(xs, rng)
        scalar = [rule.decide(float(x), {}, rng) for x in xs]
        assert list(batch) == scalar

    def test_measure_of_zero(self):
        rule = IntervalRule(
            [Fraction(1, 3), Fraction(2, 3)], [0, 1, 0]
        )
        assert rule.measure_of_zero() == Fraction(2, 3)

    def test_probability_of_zero(self):
        rule = IntervalRule([Fraction(1, 2)], [1, 0])
        assert rule.probability_of_zero(0.25) == 0.0
        assert rule.probability_of_zero(0.75) == 1.0


class TestCallableRule:
    def test_wraps_function(self, rng):
        rule = CallableRule(lambda x: 0 if x * x <= 0.25 else 1, name="sq")
        assert rule.decide(0.4, {}, rng) == 0
        assert rule.decide(0.6, {}, rng) == 1

    def test_bad_return_value(self, rng):
        rule = CallableRule(lambda x: 2)
        with pytest.raises(ValueError, match="must return 0 or 1"):
            rule.decide(0.5, {}, rng)

    def test_default_batch_loops(self, rng):
        rule = CallableRule(lambda x: 1)
        outs = rule.decide_batch(np.array([0.1, 0.9]), rng)
        assert list(outs) == [1, 1]


class TestDecisionAlgorithmBase:
    def test_batch_rejected_for_nonlocal(self, rng):
        class Peeker(DecisionAlgorithm):
            is_local = False

            def decide(self, own_input, observed, rng):
                return 0

        with pytest.raises(ValueError, match="batch"):
            Peeker().decide_batch(np.zeros(3), rng)

    def test_default_probability_of_zero_samples(self):
        class AlwaysOne(DecisionAlgorithm):
            def decide(self, own_input, observed, rng):
                return 1

        assert AlwaysOne().probability_of_zero(0.5) == 0.0
