"""Certified optimality: machine-checkable proofs for the optima.

:func:`optimal_symmetric_threshold` finds the maximum by comparing
finitely many candidates -- correct, but its output is a *claim*.
This module upgrades the claim to a *certificate*: a Bernstein-form
proof object establishing

``P* + slack - P(beta) >= 0   for ALL beta in [0, 1]``

piece by piece, where ``slack`` absorbs the width of the rational
enclosure of an irrational optimum (zero slack works only when the
optimum is attained at a rational point of the candidate set).  A
verifier can re-check the certificate with nothing but exact
arithmetic -- no optimisation code in the trusted base.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from repro.optimize.threshold_opt import ThresholdOptimum, optimal_symmetric_threshold
from repro.symbolic.bernstein import certify_nonnegative
from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction

__all__ = ["OptimalityCertificate", "certify_threshold_optimum"]


@dataclass(frozen=True)
class OptimalityCertificate:
    """A verified global bound on the threshold winning probability."""

    optimum: ThresholdOptimum
    slack: Fraction
    certified_pieces: Tuple[Tuple[Fraction, Fraction], ...]

    @property
    def upper_bound(self) -> Fraction:
        """The certified bound: no threshold exceeds this value."""
        return self.optimum.probability + self.slack

    def verify(self, max_depth: int = 40) -> bool:
        """Re-check the certificate from scratch (exact arithmetic only).

        Reconstructs the gap polynomial on every piece and re-runs the
        Bernstein non-negativity proof; returns True iff every piece
        passes.  This deliberately avoids reusing any state from
        certification time.
        """
        bound = self.upper_bound
        for piece in self.optimum.curve.pieces:
            gap = Polynomial.constant(bound) - piece.polynomial
            if not certify_nonnegative(
                gap, piece.lower, piece.upper, max_depth=max_depth
            ):
                return False
        return True


def certify_threshold_optimum(
    n: int,
    delta: RationalLike,
    slack: RationalLike = Fraction(1, 10**9),
    max_depth: int = 40,
) -> OptimalityCertificate:
    """Produce a certificate that the computed optimum is global.

    *slack* must exceed the enclosure error of the optimum (the
    default 1e-9 is comfortably above the default 1e-12 refinement).
    Raises :class:`RuntimeError` if some piece cannot be certified at
    the given subdivision depth -- which, given a correct optimum, only
    happens when *slack* is too small.
    """
    d = as_fraction(delta)
    s = as_fraction(slack)
    if s <= 0:
        raise ValueError(f"slack must be positive, got {s}")
    optimum = optimal_symmetric_threshold(n, d)
    bound = optimum.probability + s
    certified: List[Tuple[Fraction, Fraction]] = []
    for piece in optimum.curve.pieces:
        gap = Polynomial.constant(bound) - piece.polynomial
        ok = certify_nonnegative(
            gap, piece.lower, piece.upper, max_depth=max_depth
        )
        if not ok:
            raise RuntimeError(
                f"piece [{piece.lower}, {piece.upper}] exceeds the "
                f"claimed bound {bound}; the optimum is not global"
            )
        certified.append((piece.lower, piece.upper))
    return OptimalityCertificate(
        optimum=optimum,
        slack=s,
        certified_pieces=tuple(certified),
    )
