"""Tests for the exact-kernel memoization cache (``repro.cache``).

The invariants a memoization layer must never violate here:

1. cached and freshly computed values are *identical* (not merely
   close) -- cold-vs-warm determinism;
2. a damaged persistent entry is detected, deleted and recomputed,
   never served;
3. an entry written by an older version of a kernel's source is
   unreachable (fingerprint in the key) and rejected even if smuggled
   under the right filename (fingerprint in the payload);
4. ``bypass_cache`` makes every kernel recompute, reading and writing
   nothing -- the property ``repro check`` relies on.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.cache import (
    DiskCache,
    LRUCache,
    UncacheableArgumentError,
    UnencodableValueError,
    bypass_cache,
    cache_key,
    cache_stats,
    canonical_token,
    clear_cache,
    configure_cache,
    decode_value,
    encode_value,
    kernel_fingerprint,
    memoized_kernel,
)
from repro.cache.disk import _entry_checksum


# ----------------------------------------------------------------------
# Keys and canonicalisation
# ----------------------------------------------------------------------
class TestCanonicalKeys:
    def test_rational_spellings_share_a_token(self):
        assert (
            canonical_token(0.5)
            == canonical_token(Fraction(1, 2))
            == canonical_token("1/2")
            == "1/2"
        )

    def test_floats_canonicalise_exactly(self):
        # 0.1 is NOT 1/10 in binary; the token must be the exact
        # binary rational, never a rounded reading.
        assert canonical_token(0.1) == canonical_token(Fraction(0.1))
        assert canonical_token(0.1) != canonical_token(Fraction(1, 10))

    def test_bool_none_and_int_are_distinct(self):
        assert canonical_token(True) != canonical_token(1)
        assert canonical_token(False) != canonical_token(0)
        assert canonical_token(None) not in {
            canonical_token(0),
            canonical_token(False),
        }

    def test_sequences_nest(self):
        assert canonical_token([1, (2, 3)]) == "(1/1,(2/1,3/1))"
        assert canonical_token([]) == "()"

    def test_uncacheable_argument_raises(self):
        with pytest.raises(UncacheableArgumentError):
            canonical_token(object())
        with pytest.raises(UncacheableArgumentError):
            canonical_token(float("nan"))

    def test_key_depends_on_arguments_and_fingerprint(self):
        base = cache_key("k", "fp", (1, 2), {})
        assert cache_key("k", "fp", (1, 2), {}) == base
        assert cache_key("k", "fp", (2, 1), {}) != base
        assert cache_key("k", "fp2", (1, 2), {}) != base
        assert cache_key("k2", "fp", (1, 2), {}) != base
        assert cache_key("k", "fp", (1, 2), {"w": 3}) != base

    def test_fingerprint_tracks_source(self):
        def f(x):
            return x + 1

        def g(x):
            return x + 2

        assert kernel_fingerprint(f) != kernel_fingerprint(g)


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -7,
            10**40,
            Fraction(-22, 7),
            (Fraction(1, 3), [1, None], (True,)),
            [],
        ],
    )
    def test_roundtrip_identity(self, value):
        assert decode_value(encode_value(value)) == value

    def test_roundtrip_preserves_types(self):
        out = decode_value(encode_value((1, [Fraction(1, 2)], True)))
        assert isinstance(out, tuple)
        assert isinstance(out[1], list)
        assert isinstance(out[1][0], Fraction)
        assert out[2] is True

    def test_floats_are_not_encodable(self):
        # Kernels return exact values; a float reaching the codec is a
        # bug upstream, not something to round-trip approximately.
        with pytest.raises(UnencodableValueError):
            encode_value(0.5)

    def test_decode_rejects_junk(self):
        with pytest.raises(ValueError):
            decode_value({"t": "mystery", "v": 1})
        with pytest.raises(ValueError):
            decode_value("loose string")


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_hit_miss_eviction_counters(self):
        lru = LRUCache(maxsize=2)
        assert lru.get("a") == (False, None)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == (True, 1)
        lru.put("c", 3)  # evicts b (a was refreshed by the hit)
        assert lru.get("b") == (False, None)
        assert lru.get("a") == (True, 1)
        stats = lru.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2
        assert stats["misses"] == 2

    def test_cached_none_is_a_hit(self):
        lru = LRUCache()
        lru.put("k", None)
        assert lru.get("k") == (True, None)

    def test_clear_reports_dropped(self):
        lru = LRUCache()
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.clear() == 2
        assert len(lru) == 0


# ----------------------------------------------------------------------
# Decorator semantics
# ----------------------------------------------------------------------
class TestMemoizedKernel:
    def test_cold_vs_warm_identical_value(self):
        calls = []

        @memoized_kernel
        def kernel(a, b):
            calls.append((a, b))
            return Fraction(a) + Fraction(b)

        cold = kernel("1/3", "1/6")
        warm = kernel(Fraction(1, 3), Fraction(1, 6))
        assert cold == warm == Fraction(1, 2)
        assert len(calls) == 1  # the second spelling hit the cache

    def test_bypass_recomputes_and_writes_nothing(self):
        calls = []

        @memoized_kernel
        def kernel(a):
            calls.append(a)
            return Fraction(a) * 2

        with bypass_cache():
            assert kernel(3) == 6
            assert kernel(3) == 6
        assert len(calls) == 2  # no read, no write
        assert kernel(3) == 6
        assert len(calls) == 3  # cache was still cold after the bypass

    def test_disabled_cache_recomputes(self):
        calls = []

        @memoized_kernel
        def kernel(a):
            calls.append(a)
            return Fraction(a)

        configure_cache(enabled=False)
        try:
            kernel(1)
            kernel(1)
        finally:
            configure_cache(enabled=True)
        assert len(calls) == 2

    def test_uncacheable_arguments_fall_through(self):
        calls = []

        @memoized_kernel
        def kernel(a):
            calls.append(a)
            return 0

        probe = object()
        kernel(probe)
        kernel(probe)
        assert len(calls) == 2

    def test_exceptions_are_not_cached(self):
        calls = []

        @memoized_kernel
        def kernel(a):
            calls.append(a)
            raise ValueError("boom")

        for _ in range(2):
            with pytest.raises(ValueError):
                kernel(1)
        assert len(calls) == 2

    def test_counters_flow_into_metrics_registry(self):
        from repro.observability import use_instrumentation

        @memoized_kernel
        def kernel(a):
            return Fraction(a)

        with use_instrumentation() as instr:
            kernel(5)
            kernel(5)
        counters = instr.metrics.snapshot().counters
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
class TestDiskTier:
    @pytest.fixture
    def disk_kernel(self, tmp_path):
        """A persisted kernel plus its call log and cache directory."""
        calls = []

        @memoized_kernel
        def kernel(a, b):
            calls.append((a, b))
            return Fraction(a) + Fraction(b)

        configure_cache(directory=tmp_path)
        yield kernel, calls, tmp_path
        configure_cache(directory=None)

    def _only_entry(self, directory):
        entries = [p for p in directory.iterdir() if p.suffix == ".json"]
        assert len(entries) == 1
        return entries[0]

    def test_warm_start_from_disk_is_identical(self, disk_kernel):
        kernel, calls, _ = disk_kernel
        cold = kernel(1, "1/2")
        clear_cache(include_disk=False)  # simulate a fresh process
        warm = kernel(1, "1/2")
        assert cold == warm == Fraction(3, 2)
        assert len(calls) == 1  # second call served from disk

    def test_corrupt_entry_detected_and_recomputed(self, disk_kernel):
        kernel, calls, directory = disk_kernel
        value = kernel(1, 2)
        path = self._only_entry(directory)
        payload = json.loads(path.read_text())
        payload["value"] = encode_value(Fraction(999))  # tamper
        path.write_text(json.dumps(payload))

        clear_cache(include_disk=False)
        assert kernel(1, 2) == value  # recomputed, not the tampered 999
        assert len(calls) == 2
        assert cache_stats()["disk"]["corrupt"] == 1
        # The damaged file was deleted and replaced by the recompute.
        fresh = json.loads(self._only_entry(directory).read_text())
        assert decode_value(fresh["value"]) == value

    def test_truncated_entry_detected_and_recomputed(self, disk_kernel):
        kernel, calls, directory = disk_kernel
        value = kernel(1, 2)
        path = self._only_entry(directory)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        clear_cache(include_disk=False)
        assert kernel(1, 2) == value
        assert len(calls) == 2
        assert cache_stats()["disk"]["corrupt"] == 1

    def test_stale_fingerprint_rejected_even_under_right_key(
        self, disk_kernel
    ):
        """Defence in depth: an entry whose checksum is self-consistent
        but whose payload fingerprint is old must be rejected."""
        kernel, calls, directory = disk_kernel
        value = kernel(1, 2)
        path = self._only_entry(directory)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 64
        payload["checksum"] = _entry_checksum(
            payload["key"],
            payload["kernel"],
            payload["fingerprint"],
            payload["value"],
        )
        path.write_text(json.dumps(payload))

        clear_cache(include_disk=False)
        assert kernel(1, 2) == value
        assert len(calls) == 2
        assert cache_stats()["disk"]["stale"] == 1

    def test_code_change_invalidates_old_entries(self, tmp_path):
        """Two kernels sharing a cache label but differing in source
        must never share entries: the fingerprint is part of the key."""
        configure_cache(directory=tmp_path)
        try:

            @memoized_kernel(name="shared.label")
            def version_one(a):
                return Fraction(a) + 1

            @memoized_kernel(name="shared.label")
            def version_two(a):
                return Fraction(a) + 2

            assert version_one(10) == 11
            clear_cache(include_disk=False)
            # Same label, same argument -- but the new source produces
            # a different key, so the old persisted value is unreachable.
            assert version_two(10) == 12
        finally:
            configure_cache(directory=None)

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        disk = DiskCache(blocker / "sub")
        disk.put("k" * 64, "fp", "kernel", encode_value(Fraction(1)))
        assert disk.get("k" * 64, "fp") == (False, None)

    def test_clear_cache_reports_both_tiers(self, disk_kernel):
        kernel, _, _ = disk_kernel
        kernel(1, 2)
        removed = clear_cache()
        assert removed == {"memory": 1, "disk": 1}


# ----------------------------------------------------------------------
# Cached kernels agree with fresh computation across the package
# ----------------------------------------------------------------------
class TestKernelIntegration:
    def test_probability_kernels_cold_vs_warm(self):
        from repro.probability.uniform_sums import (
            irwin_hall_cdf,
            sum_uniform_cdf,
        )

        grid = [Fraction(i, 7) for i in range(1, 14)]
        cold = [
            (sum_uniform_cdf(t, [1, 1, 1]), irwin_hall_cdf(t, 3))
            for t in grid
        ]
        warm = [
            (sum_uniform_cdf(t, [1, 1, 1]), irwin_hall_cdf(t, 3))
            for t in grid
        ]
        with bypass_cache():
            fresh = [
                (sum_uniform_cdf(t, [1, 1, 1]), irwin_hall_cdf(t, 3))
                for t in grid
            ]
        assert cold == warm == fresh

    def test_core_kernels_cold_vs_warm(self):
        from repro.core.nonoblivious import (
            symmetric_threshold_winning_probability,
        )
        from repro.core.oblivious import oblivious_winning_probability

        warm = symmetric_threshold_winning_probability(
            Fraction(1, 2), 3, 1
        )
        obl = oblivious_winning_probability(1, [Fraction(1, 2)] * 3)
        with bypass_cache():
            assert (
                symmetric_threshold_winning_probability(
                    Fraction(1, 2), 3, 1
                )
                == warm
            )
            assert (
                oblivious_winning_probability(1, [Fraction(1, 2)] * 3)
                == obl
            )

    def test_optimizer_memoizes_in_memory_only(self, tmp_path):
        from repro.optimize.threshold_opt import (
            optimal_symmetric_threshold,
        )

        configure_cache(directory=tmp_path)
        try:
            first = optimal_symmetric_threshold(3, 1)
            second = optimal_symmetric_threshold(3, 1)
            # persist=False: memory hit returns the same object, and
            # nothing is written to disk for the optimiser record.
            assert second is first
            assert not any(
                p.suffix == ".json" for p in tmp_path.iterdir()
            )
        finally:
            configure_cache(directory=None)

    def test_disk_roundtrip_of_exact_kernels(self, tmp_path):
        from repro.core.nonoblivious import (
            symmetric_threshold_winning_probability,
        )

        configure_cache(directory=tmp_path)
        try:
            cold = symmetric_threshold_winning_probability(
                Fraction(2, 5), 4, Fraction(4, 3)
            )
            clear_cache(include_disk=False)
            warm = symmetric_threshold_winning_probability(
                Fraction(2, 5), 4, Fraction(4, 3)
            )
            assert warm == cold
            assert cache_stats()["disk"]["hits"] >= 1
        finally:
            configure_cache(directory=None)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCacheCli:
    def test_stats_prints_json(self, capsys):
        from repro.cli import main

        assert main(["cache", "stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["enabled"] is True
        assert payload["kernels"] > 0
        assert payload["disk"] is None

    def test_warm_requires_persistent_tier(self, capsys):
        from repro.cli import main

        assert main(["cache", "warm"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_warm_then_stats_then_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "kc")
        assert main(
            [
                "cache", "warm",
                "--cache-dir", cache_dir,
                "--ns", "2", "3",
                "--grid-size", "5",
            ]
        ) == 0
        assert "persistent tier now holds" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["disk"]["entries"] > 0
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "disk entries" in capsys.readouterr().out
        assert not any(
            p.suffix == ".json" for p in (tmp_path / "kc").iterdir()
        )

    def test_no_cache_flag_disables_memoization(self, capsys):
        from repro.cache import cache_enabled
        from repro.cli import main

        assert main(["case", "--n", "2", "--delta", "1", "--no-cache"]) == 0
        assert not cache_enabled()

    def test_cold_and_warm_cli_output_identical(self, tmp_path, capsys):
        """The acceptance property: a cold-cache run and a warm-cache
        run of the same command print byte-identical artefacts."""
        from repro.cli import main

        cache_dir = str(tmp_path / "kc")
        assert main(
            ["case", "--n", "3", "--delta", "1", "--cache-dir", cache_dir]
        ) == 0
        cold = capsys.readouterr().out
        clear_cache(include_disk=False)  # fresh process, warm disk
        assert main(
            ["case", "--n", "3", "--delta", "1", "--cache-dir", cache_dir]
        ) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        clear_cache(include_disk=False)
        assert main(["case", "--n", "3", "--delta", "1", "--no-cache"]) == 0
        uncached = capsys.readouterr().out
        assert uncached == cold


# ----------------------------------------------------------------------
# Bounded persistent tier (max_bytes, oldest-first eviction)
# ----------------------------------------------------------------------
class TestBoundedDiskTier:
    def fill(self, tmp_path, count=6, **kwargs):
        """A DiskCache holding *count* same-shaped entries, oldest
        first by mtime (nudged so ordering is deterministic)."""
        cache = DiskCache(tmp_path, **kwargs)
        fingerprint = "f" * 16
        paths = []
        for index in range(count):
            key = f"entry-{index}"
            cache.put(
                key, fingerprint, "kernel", encode_value(Fraction(index, 7))
            )
            path = cache._path_for(key)
            import os as _os

            _os.utime(path, ns=(10**9 * (index + 1),) * 2)
            paths.append(path)
        return cache, fingerprint, paths

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache, fingerprint, paths = self.fill(tmp_path)
        sizes = [p.stat().st_size for p in paths]
        keep = sum(sizes[-2:])  # room for exactly the two newest
        evicted = cache.prune(keep)
        assert evicted == 4
        survivors = sorted(p.name for p in tmp_path.iterdir())
        assert survivors == sorted(p.name for p in paths[-2:])
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 4
        assert stats["total_bytes"] <= keep

    def test_prune_to_zero_empties_the_tier(self, tmp_path):
        cache, _, _ = self.fill(tmp_path, count=3)
        assert cache.prune(0) == 3
        assert cache.stats()["entries"] == 0

    def test_capped_cache_prunes_on_every_put(self, tmp_path):
        cache, fingerprint, paths = self.fill(tmp_path, count=1)
        entry_size = paths[0].stat().st_size
        capped = DiskCache(tmp_path, max_bytes=entry_size * 2)
        for index in range(5):
            capped.put(
                f"late-{index}", fingerprint, "kernel",
                encode_value(Fraction(1, 3)),
            )
        stats = capped.stats()
        assert stats["total_bytes"] <= entry_size * 2
        assert stats["evictions"] >= 3
        assert stats["max_bytes"] == entry_size * 2

    def test_evicted_entry_recomputes_instead_of_serving(self, tmp_path):
        calls = []

        @memoized_kernel
        def kernel(a):
            calls.append(a)
            return Fraction(a, 9)

        configure_cache(directory=tmp_path, max_bytes=0)
        try:
            assert kernel(4) == Fraction(4, 9)
            clear_cache(include_disk=False)  # drop the memory tier
            assert kernel(4) == Fraction(4, 9)  # disk held nothing
            assert calls == [4, 4]
        finally:
            configure_cache(directory=None, max_bytes=None)

    def test_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError):
            DiskCache(tmp_path).prune(-1)

    def test_prune_disk_cache_requires_persistent_tier(self):
        from repro.cache import prune_disk_cache

        with pytest.raises(ValueError):
            prune_disk_cache(1024)

    def test_evictions_flow_into_metrics_registry(self, tmp_path):
        from repro.observability import use_instrumentation

        with use_instrumentation() as instr:
            cache, _, _ = self.fill(tmp_path, count=2)
            cache.prune(0)
        counters = instr.metrics.snapshot().counters
        assert counters["cache.disk_evictions"] == 2


class TestCachePruneCli:
    def warm(self, cache_dir):
        from repro.cli import main

        assert main(
            [
                "cache", "warm",
                "--cache-dir", cache_dir,
                "--ns", "2", "3",
                "--grid-size", "5",
            ]
        ) == 0

    def test_prune_requires_max_bytes(self, capsys):
        from repro.cli import main

        assert main(["cache", "prune"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_requires_persistent_tier(self, capsys):
        from repro.cli import main

        assert main(["cache", "prune", "--max-bytes", "1024"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_prune_shrinks_the_tier(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "kc")
        self.warm(cache_dir)
        capsys.readouterr()
        assert main(
            ["cache", "stats", "--cache-dir", cache_dir]
        ) == 0
        before = json.loads(capsys.readouterr().out)["disk"]
        assert before["entries"] > 1
        keep = before["total_bytes"] // 2
        assert main(
            [
                "cache", "prune",
                "--cache-dir", cache_dir,
                "--max-bytes", str(keep),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert main(
            ["cache", "stats", "--cache-dir", cache_dir]
        ) == 0
        after = json.loads(capsys.readouterr().out)["disk"]
        assert after["total_bytes"] <= keep
        assert after["entries"] < before["entries"]

    def test_max_bytes_with_warm_caps_during_the_run(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        cache_dir = str(tmp_path / "kc")
        assert main(
            [
                "cache", "warm",
                "--cache-dir", cache_dir,
                "--ns", "2", "3",
                "--grid-size", "5",
                "--max-bytes", "0",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["cache", "stats", "--cache-dir", cache_dir]
        ) == 0
        stats = json.loads(capsys.readouterr().out)["disk"]
        assert stats["entries"] == 0  # every write was pruned away
