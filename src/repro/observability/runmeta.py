"""Run identity: one fingerprint stamped on every telemetry artifact.

The PR-3 checkpoint machinery fingerprints one *sharded call* (root
seed, stream, shard plan, system digest), which is exactly right for
deciding whether two shard results are interchangeable -- but too fine
for joining the artifacts of one CLI invocation: a ``repro validate``
run produces one metrics export, one trace, possibly a checkpoint and
an event log, and they should all carry the same identity so the run
store can collect them and ``repro runs compare`` can line two runs up.

:class:`RunContext` is that identity: a short SHA-256-derived run id
plus the facts worth joining on (ISO-8601 UTC start time, repro
version, argv, command).  The CLI installs one context per invocation;
library writers resolve it lazily via :func:`current_run` and fall
back to a process-wide default context, so artifacts written outside
the CLI are still stamped and joinable.

Nothing here touches a random stream: the run id hashes wall-clock
time, pid and argv -- identity, not randomness.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "RunContext",
    "current_run",
    "new_run_context",
    "run_header",
    "set_current_run",
    "utc_now_iso",
]


def utc_now_iso() -> str:
    """The current wall-clock time as ISO-8601 UTC.

    Microsecond precision: the run store orders runs by their
    directory name (which starts with this timestamp), so two runs
    recorded in the same second must still sort in recording order.
    """
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S.%fZ"
    )


def _repro_version() -> str:
    """The installed package version (resolved lazily: importing
    ``repro`` at module-import time would be circular, since the
    observability layer sits below everything else)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - partially initialised package
        return "unknown"


@dataclass(frozen=True)
class RunContext:
    """The identity of one run, shared by all of its artifacts.

    ``run_id`` is 16 hex chars of SHA-256 over (start time, pid, argv,
    version, a monotonic disambiguator), so two runs launched in the
    same second still get distinct ids.  ``started_monotonic_ns`` is
    the origin for event timestamps -- integer nanoseconds, matching
    the metrics layer's exact-arithmetic discipline.
    """

    run_id: str
    command: str
    argv: List[str] = field(default_factory=list)
    version: str = ""
    started_utc: str = ""
    started_monotonic_ns: int = 0

    @property
    def directory_name(self) -> str:
        """The run's directory name under the run store: the compact
        UTC start time then the id, so a plain ``ls`` sorts runs
        chronologically."""
        compact = (
            self.started_utc.replace("-", "").replace(":", "")
        )
        return f"{compact}-{self.run_id}"

    def elapsed_ns(self) -> int:
        """Integer nanoseconds since this context was created."""
        return time.monotonic_ns() - self.started_monotonic_ns


def new_run_context(
    command: str = "",
    argv: Optional[Sequence[str]] = None,
) -> RunContext:
    """A fresh context identifying one run starting now."""
    started_utc = utc_now_iso()
    monotonic_ns = time.monotonic_ns()
    arguments = list(argv) if argv is not None else list(os.sys.argv)
    payload = "\x1f".join(
        [
            started_utc,
            str(os.getpid()),
            str(monotonic_ns),
            command,
            _repro_version(),
            *arguments,
        ]
    )
    run_id = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return RunContext(
        run_id=run_id,
        command=command,
        argv=arguments,
        version=_repro_version(),
        started_utc=started_utc,
        started_monotonic_ns=monotonic_ns,
    )


_lock = threading.Lock()
_current: Optional[RunContext] = None


def current_run() -> RunContext:
    """The active run context, creating a process-default lazily.

    The CLI installs a context naming its subcommand; library code
    writing artifacts outside the CLI still gets a stable, stamped
    identity for the lifetime of the process.
    """
    global _current
    with _lock:
        if _current is None:
            _current = new_run_context(command="library")
        return _current


def set_current_run(context: Optional[RunContext]) -> Optional[RunContext]:
    """Install *context* as the active run; returns the previous one
    (``None`` resets to the lazy process default)."""
    global _current
    with _lock:
        previous = _current
        _current = context
        return previous


def run_header(context: Optional[RunContext] = None) -> Dict[str, Any]:
    """The common stamp shared by every exported artifact.

    One dict -- run id, ISO-8601 UTC start time, repro version, argv --
    embedded in the metrics JSONL meta line, the Chrome trace metadata,
    the checkpoint header and the event-log header, so any two
    artifacts of one run are joinable on ``run_id``.
    """
    ctx = current_run() if context is None else context
    return {
        "run_id": ctx.run_id,
        "started_utc": ctx.started_utc,
        "version": ctx.version,
        "argv": list(ctx.argv),
        "command": ctx.command,
    }
