"""Tests for repro.optimize (exact and numeric optimisers)."""

from fractions import Fraction

import pytest

from repro.core.nonoblivious import symmetric_threshold_winning_probability
from repro.core.oblivious import optimal_oblivious_winning_probability
from repro.optimize.numeric import (
    maximize_oblivious_numeric,
    maximize_thresholds_numeric,
)
from repro.optimize.oblivious_opt import (
    boundary_split_value,
    improvement_over_oblivious,
    solve_oblivious_optimum,
    symmetric_oblivious_polynomial,
    verify_fair_coin_stationary,
)
from repro.optimize.threshold_opt import (
    local_maxima,
    optimal_symmetric_threshold,
)


class TestOptimalSymmetricThreshold:
    def test_paper_case_n3(self, tight_tolerance):
        opt = optimal_symmetric_threshold(3, 1, tight_tolerance)
        assert abs(float(opt.beta) - (1 - (1 / 7) ** 0.5)) < 1e-13
        assert abs(float(opt.probability) - 0.544631) < 1e-6
        assert opt.is_interior()
        assert opt.piece.lower == Fraction(1, 2)

    def test_paper_case_n4(self, tight_tolerance):
        opt = optimal_symmetric_threshold(4, Fraction(4, 3), tight_tolerance)
        # the paper reports beta* ~ 0.678
        assert abs(float(opt.beta) - 0.678) < 1e-3

    def test_optimum_dominates_grid(self):
        for n, delta in ((3, Fraction(1)), (4, Fraction(4, 3)), (5, Fraction(1))):
            opt = optimal_symmetric_threshold(n, delta)
            for i in range(0, 41):
                beta = Fraction(i, 40)
                assert symmetric_threshold_winning_probability(
                    beta, n, delta
                ) <= opt.probability + Fraction(1, 10**10)

    def test_stationarity_at_interior_optimum(self):
        opt = optimal_symmetric_threshold(3, 1)
        value = opt.stationarity_polynomial(opt.beta)
        assert abs(value) < Fraction(1, 10**9)

    def test_str(self):
        opt = optimal_symmetric_threshold(3, 1)
        assert "beta*" in str(opt)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_symmetric_threshold(0, 1)
        with pytest.raises(ValueError):
            optimal_symmetric_threshold(3, 0)

    def test_n1_degenerate(self):
        # single player, big capacity: everything wins
        opt = optimal_symmetric_threshold(1, 2)
        assert opt.probability == 1

    def test_local_maxima_contains_global(self):
        opt = optimal_symmetric_threshold(3, 1)
        maxima = local_maxima(3, 1)
        assert any(
            abs(x - opt.beta) < Fraction(1, 10**6) for x, _ in maxima
        )


class TestObliviousOptimum:
    def test_fair_coin_is_stationary(self):
        for n in (2, 3, 4, 5):
            for t in (Fraction(1, 2), 1, Fraction(4, 3)):
                grad = verify_fair_coin_stationary(t, n)
                assert all(g == 0 for g in grad)

    def test_symmetric_profile_polynomial(self):
        # n = 3, t = 1: P(alpha) = 1/6 + (1/3)(1 - a^3 - (1-a)^3)
        profile = symmetric_oblivious_polynomial(1, 3)
        for i in range(11):
            a = Fraction(i, 10)
            expected = Fraction(1, 6) + Fraction(1, 3) * (
                1 - a**3 - (1 - a) ** 3
            )
            assert profile(a) == expected

    def test_solver_finds_half(self):
        for n in (2, 3, 4, 5):
            result = solve_oblivious_optimum(1, n)
            assert result.alpha == Fraction(1, 2)
            assert result.probability == (
                optimal_oblivious_winning_probability(1, n)
            )

    def test_solver_degenerate_capacities(self):
        big = solve_oblivious_optimum(10, 3)
        assert big.probability == 1
        tiny = solve_oblivious_optimum(Fraction(0), 3) if False else None
        # t = 0 is rejected upstream by phi? t=0 gives probability 0
        zero = solve_oblivious_optimum(Fraction(1, 1000000), 3)
        assert zero.probability >= 0

    def test_boundary_split_beats_fair_coin_n3(self):
        split = boundary_split_value(1, 3)
        assert split == Fraction(1, 2)
        assert split > optimal_oblivious_winning_probability(1, 3)

    def test_boundary_split_n2_wins_always(self):
        assert boundary_split_value(1, 2) == 1

    def test_improvement_positive_for_n3_case(self):
        assert improvement_over_oblivious(3, 1) > 0

    def test_paper_discrepancy_improvement_negative_for_n4_case(self):
        """Documented deviation from the paper (see EXPERIMENTS.md).

        Section 5's claim that optimal non-oblivious (single-threshold)
        algorithms beat the oblivious optimum fails at the paper's own
        second worked case: for n = 4, delta = 4/3 the fair coin
        achieves 559/1296 ~ 0.43133 while the optimal common threshold
        reaches only ~ 0.42854.
        """
        assert optimal_oblivious_winning_probability(Fraction(4, 3), 4) == (
            Fraction(559, 1296)
        )
        assert improvement_over_oblivious(4, Fraction(4, 3)) < 0


class TestNumericOptimizers:
    def test_threshold_numeric_matches_exact_n3(self):
        thresholds, value = maximize_thresholds_numeric(
            1, 3, starts=4, seed=1
        )
        exact = optimal_symmetric_threshold(3, 1)
        assert value == pytest.approx(float(exact.probability), abs=2e-4)
        for a in thresholds:
            assert a == pytest.approx(float(exact.beta), abs=5e-3)

    def test_oblivious_numeric_at_least_fair_coin(self):
        _, value = maximize_oblivious_numeric(1, 3, starts=4, seed=1)
        fair = float(optimal_oblivious_winning_probability(1, 3))
        assert value >= fair - 1e-9
        # and it should find (or beat) the deterministic split
        assert value == pytest.approx(0.5, abs=2e-3)
