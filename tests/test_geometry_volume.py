"""Tests for Proposition 2.2 / Lemma 2.3 (repro.geometry.volume).

The volume formula is the load-bearing identity of the paper, so it is
validated against three independent witnesses: hand-computable cases,
the recursive-integration implementation, and Monte Carlo sampling.
"""

from fractions import Fraction
from math import factorial

import pytest

from repro.geometry.montecarlo import (
    estimate_simplex_box_volume,
    estimate_volume,
)
from repro.geometry.volume import (
    SimplexBoxIntersection,
    corner_simplex_volume,
    intersection_volume,
    intersection_volume_by_integration,
)


class TestCornerSimplexVolume:
    def test_empty_subset_gives_full_simplex(self):
        # I = {} leaves the whole simplex: (1/m!) prod sigma
        assert corner_simplex_volume([2, 2], [1, 1], []) == Fraction(2)

    def test_lemma_2_3_similarity(self):
        # cut at x_0 >= 1/2 in the unit-sides simplex: ratio 1/2, m=2
        v = corner_simplex_volume([1, 1], [Fraction(1, 2), 1], [0])
        assert v == Fraction(1, 2) * Fraction(1, 4)

    def test_empty_corner(self):
        # pi_0/sigma_0 = 1 -> the corner degenerates
        assert corner_simplex_volume([1, 1], [1, 1], [0]) == 0
        assert corner_simplex_volume([1, 1], [Fraction(2, 3), 1], [0, 1]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            corner_simplex_volume([1, 0], [1, 1], [])
        with pytest.raises(ValueError):
            corner_simplex_volume([1], [1, 1], [])


class TestIntersectionVolumeExactCases:
    def test_box_inside_simplex(self):
        # tiny box fully inside: volume is the box volume
        v = intersection_volume([1, 1], [Fraction(1, 4), Fraction(1, 4)])
        assert v == Fraction(1, 16)

    def test_simplex_inside_box(self):
        # big box: volume is the simplex volume
        v = intersection_volume([1, 1], [5, 5])
        assert v == Fraction(1, 2)

    def test_2d_hand_computation(self):
        # unit simplex x+y<=1 cut by [0,1/2]^2: square minus nothing
        # above the diagonal: area = 1/4 - 0 ... actually the corner
        # (1/2,1/2) touches the diagonal, so the intersection is the
        # full square minus the empty region = 1/4 - (area of square
        # above x+y=1) = 1/4 - 0? The triangle above the diagonal
        # inside the square has vertices (1/2,1/2) only -> measure 0.
        v = intersection_volume([1, 1], [Fraction(1, 2), Fraction(1, 2)])
        assert v == Fraction(1, 4)

    def test_2d_asymmetric(self):
        # x + y <= 1 over [0, 3/4] x [0, 3/4]:
        # area = 9/16 - (1/2)(1/2)^2 = 9/16 - 1/8 = 7/16
        v = intersection_volume([1, 1], [Fraction(3, 4), Fraction(3, 4)])
        assert v == Fraction(7, 16)

    def test_irwin_hall_connection(self):
        # Vol(sum x_i <= 3/2 in [0,1]^3) = IrwinHallCDF(3/2, 3) = 1/2
        v = intersection_volume([Fraction(3, 2)] * 3, [1, 1, 1])
        assert v == Fraction(1, 2)

    def test_one_dimension(self):
        assert intersection_volume([Fraction(1, 2)], [1]) == Fraction(1, 2)
        assert intersection_volume([2], [1]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            intersection_volume([1], [1, 1])
        with pytest.raises(ValueError):
            intersection_volume([], [])
        with pytest.raises(ValueError):
            intersection_volume([1, -1], [1, 1])
        with pytest.raises(ValueError):
            intersection_volume([1, 1], [0, 1])


class TestAgainstIntegrationWitness:
    @pytest.mark.parametrize(
        "sigma, pi",
        [
            ([1, 1], [Fraction(1, 2), Fraction(3, 4)]),
            ([2, 3], [1, 1]),
            ([1, 1, 1], [Fraction(1, 3), Fraction(1, 2), Fraction(2, 3)]),
            ([Fraction(3, 2), 2, 1], [1, 1, 1]),
            (
                [1, 1, 1, 1],
                [Fraction(1, 2), Fraction(1, 2), Fraction(1, 2), Fraction(1, 2)],
            ),
            ([Fraction(5, 2)] * 4, [1, Fraction(1, 2), Fraction(3, 4), 1]),
        ],
    )
    def test_formula_equals_recursive_integration(self, sigma, pi):
        assert intersection_volume(sigma, pi) == (
            intersection_volume_by_integration(sigma, pi)
        )


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "sigma, pi, seed",
        [
            ([1, 1, 1], [1, 1, 1], 1),
            ([Fraction(3, 2), 1, 2], [1, 1, 1], 2),
            ([1, 1], [Fraction(1, 3), Fraction(2, 3)], 3),
            ([2, 2, 2, 2], [1, 1, 1, 1], 4),
        ],
    )
    def test_formula_inside_confidence_interval(self, sigma, pi, seed):
        exact = float(intersection_volume(sigma, pi))
        est = estimate_simplex_box_volume(
            sigma, pi, samples=60_000, seed=seed
        )
        assert est.covers(exact), f"exact={exact}, estimate={est}"


class TestGenericPolytopeEstimator:
    def test_unit_square_volume(self):
        from repro.geometry.box import Box

        est = estimate_volume(
            Box.from_sides([Fraction(1, 2), Fraction(1, 2)]).as_polytope(),
            samples=10_000,
            seed=7,
        )
        assert est.covers(0.25)
        assert est.samples == 10_000
        assert est.hits == 10_000  # box sampled within itself: all hits

    def test_simplex_in_box(self):
        inter = SimplexBoxIntersection([1, 1], [1, 1])
        est = estimate_volume(inter.as_polytope(), samples=40_000, seed=8)
        assert est.covers(0.5)

    def test_explicit_bounding_box(self):
        from repro.geometry.box import Box
        from repro.geometry.polytope import Polytope

        # halfspace x <= 1/2 with no explicit bounds: needs the box
        poly = Polytope(1)
        poly.add_inequality([1], Fraction(1, 2))
        est = estimate_volume(
            poly, samples=20_000, seed=9, bounding_box=Box.from_sides([1])
        )
        assert est.covers(0.5)

    def test_missing_bounds_rejected(self):
        from repro.geometry.polytope import Polytope

        poly = Polytope(1)
        poly.add_inequality([1], 1)  # no lower bound anywhere
        with pytest.raises(ValueError):
            estimate_volume(poly, samples=100)

    def test_samples_validation(self):
        from repro.geometry.box import Box

        with pytest.raises(ValueError):
            estimate_volume(
                Box.unit(1).as_polytope(), samples=0
            )


class TestSimplexBoxIntersectionObject:
    def test_membership_requires_both(self):
        inter = SimplexBoxIntersection([1, 1], [Fraction(1, 2), Fraction(1, 2)])
        assert inter.contains([Fraction(1, 4), Fraction(1, 4)])
        # inside box, outside simplex is impossible here (corner touches);
        # inside simplex, outside box:
        assert not inter.contains([Fraction(3, 4), Fraction(1, 10)])

    def test_volume_matches_function(self):
        inter = SimplexBoxIntersection([2, 3], [1, 1])
        assert inter.volume() == intersection_volume([2, 3], [1, 1])

    def test_dimension(self):
        assert SimplexBoxIntersection([1, 1, 1], [1, 1, 1]).dimension == 3

    def test_early_termination_path(self):
        # every singleton ratio >= 1: the sum collapses to the simplex
        # volume (exercises the short-circuit)
        sigma = [Fraction(1, 2)] * 5
        pi = [1] * 5
        v = intersection_volume(sigma, pi)
        assert v == Fraction(1, 2**5) / factorial(5)
