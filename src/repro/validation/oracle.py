"""The analytic <-> Monte Carlo cross-validation oracle.

``repro check`` (and CI's ``integrity`` job) runs every case of a
``(n, delta, algorithm)`` grid through **three independent routes** and
demands they agree:

1. **analytic** -- the paper's closed form, evaluated exactly
   (Theorem 4.1 / Theorem 5.1), with runtime contracts active;
2. **an independent analytic witness** -- a second exact route derived
   differently (the enumerated ``2^n`` sum against the collapsed
   Poisson-binomial form for oblivious algorithms; the ``O(4^n)``
   per-player Theorem 5.1 sum against the collapsed symmetric form for
   thresholds) which must agree *exactly*;
3. **Monte Carlo** -- the simulation engine, reusing the sharded
   executor and (optionally) the fault-tolerance machinery of the
   earlier PRs; the estimate must sit within ``z_threshold`` standard
   errors of the analytic value and its Wilson interval must cover it.

On top of the route comparison each case checks, where applicable:

* the **centralized upper bound** (``n <= 3``): no distributed
  protocol can beat full-information packing, so
  ``analytic <= centralized_feasibility_exact(n, delta)``;
* the **geometry witness** (``n <= 4``): Proposition 2.2's
  inclusion-exclusion volume against the recursive-integration route,
  exactly, plus the guarded float fast paths against their exact
  values within the certified tolerance;
* a clean **contract tally**: the analytic evaluations above run with
  contracts enabled and must record zero violations.

``run_cross_validation`` returns a machine-readable
:class:`AgreementReport`; the CLI serialises it to JSON and maps
``passed=False`` to its own exit code so CI can tell an integrity
regression apart from every other failure.

The *perturbation* knob injects a deliberate error into the analytic
value right before the Monte Carlo comparison.  It exists so the
acceptance test (and a paranoid operator) can confirm the oracle
actually fails when the analytic side is wrong -- a validator that
cannot fail validates nothing.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.validation.contracts import use_contracts, violation_count

__all__ = [
    "AgreementReport",
    "CaseReport",
    "OracleCase",
    "default_case_grid",
    "run_cross_validation",
]

#: Largest ``n`` for which the geometry witness (recursive integration
#: and the volume fast path) runs; the integration route is exact but
#: exponentially slow to expand, so the oracle caps it.
GEOMETRY_WITNESS_MAX_N = 4

#: Relative tolerance the fast paths are asked to certify, and within
#: which their results must match the exact values.
FASTPATH_REL_TOL = 1e-9


@dataclass(frozen=True)
class OracleCase:
    """One cross-validation case: an algorithm family at ``(n, delta)``.

    *parameter* is the family's free parameter -- ``alpha`` for
    oblivious coins, ``beta`` for single-threshold rules.
    """

    n: int
    delta: Fraction
    algorithm: str  # "oblivious" | "threshold"
    parameter: Fraction

    @property
    def name(self) -> str:
        return (
            f"{self.algorithm}(n={self.n}, delta={self.delta}, "
            f"param={self.parameter})"
        )


@dataclass
class CaseReport:
    """Everything the oracle measured for one case."""

    case: OracleCase
    analytic: Fraction = Fraction(0)
    witness: Fraction = Fraction(0)
    routes_agree: bool = False
    mc_estimate: float = 0.0
    mc_interval: Tuple[float, float] = (0.0, 0.0)
    mc_trials: int = 0
    z_score: float = 0.0
    mc_covered: bool = False
    centralized_bound: Optional[Fraction] = None
    centralized_ok: Optional[bool] = None
    geometry_agree: Optional[bool] = None
    fastpath_ok: Optional[bool] = None
    contracts_clean: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "case": {
                "n": self.case.n,
                "delta": str(self.case.delta),
                "algorithm": self.case.algorithm,
                "parameter": str(self.case.parameter),
            },
            "analytic": str(self.analytic),
            "analytic_float": float(self.analytic),
            "witness": str(self.witness),
            "routes_agree": self.routes_agree,
            "mc_estimate": self.mc_estimate,
            "mc_interval": list(self.mc_interval),
            "mc_trials": self.mc_trials,
            "z_score": self.z_score,
            "mc_covered": self.mc_covered,
            "centralized_bound": (
                None
                if self.centralized_bound is None
                else str(self.centralized_bound)
            ),
            "centralized_ok": self.centralized_ok,
            "geometry_agree": self.geometry_agree,
            "fastpath_ok": self.fastpath_ok,
            "contracts_clean": self.contracts_clean,
            "passed": self.passed,
            "failures": list(self.failures),
        }


@dataclass
class AgreementReport:
    """The oracle's verdict over a whole case grid."""

    cases: List[CaseReport]
    trials: int
    seed: int
    z_threshold: float
    perturbation: float = 0.0

    @property
    def passed(self) -> bool:
        return all(case.passed for case in self.cases)

    @property
    def failed_cases(self) -> List[CaseReport]:
        return [case for case in self.cases if not case.passed]

    def to_dict(self) -> Dict:
        return {
            "schema_version": 1,
            "passed": self.passed,
            "trials": self.trials,
            "seed": self.seed,
            "z_threshold": self.z_threshold,
            "perturbation": self.perturbation,
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable one-line-per-case summary."""
        lines = []
        for report in self.cases:
            status = "ok  " if report.passed else "FAIL"
            lines.append(
                f"{status} {report.case.name}: "
                f"analytic={float(report.analytic):.6f} "
                f"mc={report.mc_estimate:.6f} z={report.z_score:+.2f}"
                + (
                    ""
                    if report.passed
                    else " [" + "; ".join(report.failures) + "]"
                )
            )
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(
            f"{verdict}: {len(self.cases) - len(self.failed_cases)}"
            f"/{len(self.cases)} cases agree "
            f"(trials={self.trials}, z_threshold={self.z_threshold})"
        )
        return "\n".join(lines)


def default_case_grid(
    ns: Sequence[int],
    deltas: Sequence[Fraction],
    algorithms: Sequence[str] = ("oblivious", "threshold"),
) -> List[OracleCase]:
    """The standard grid: fair coin plus optimal symmetric threshold.

    The oblivious parameter is the paper's optimal ``alpha = 1/2``
    (Theorem 4.3); the threshold parameter is the exact optimum of
    Section 5.2, so the oracle exercises the optimiser too.
    """
    from repro.optimize.threshold_opt import optimal_symmetric_threshold

    cases: List[OracleCase] = []
    for n in ns:
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        for delta in deltas:
            d = Fraction(delta)
            if d <= 0:
                raise ValidationError(
                    f"delta must be positive, got {d}"
                )
            for algorithm in algorithms:
                if algorithm == "oblivious":
                    parameter = Fraction(1, 2)
                elif algorithm == "threshold":
                    parameter = optimal_symmetric_threshold(n, d).beta
                else:
                    raise ValidationError(
                        f"unknown algorithm {algorithm!r}; expected "
                        "'oblivious' or 'threshold'"
                    )
                cases.append(
                    OracleCase(
                        n=n,
                        delta=d,
                        algorithm=algorithm,
                        parameter=parameter,
                    )
                )
    return cases


def _analytic_routes(case: OracleCase) -> Tuple[Fraction, Fraction]:
    """The closed form and its independent witness, both exact."""
    from repro.core.nonoblivious import (
        symmetric_threshold_winning_probability,
        threshold_winning_probability,
    )
    from repro.core.oblivious import (
        oblivious_winning_probability,
        oblivious_winning_probability_enumerated,
    )

    if case.algorithm == "oblivious":
        alphas = [case.parameter] * case.n
        return (
            oblivious_winning_probability(case.delta, alphas),
            oblivious_winning_probability_enumerated(case.delta, alphas),
        )
    if case.algorithm == "threshold":
        return (
            symmetric_threshold_winning_probability(
                case.parameter, case.n, case.delta
            ),
            threshold_winning_probability(
                case.delta, [case.parameter] * case.n
            ),
        )
    raise ValidationError(
        f"unknown algorithm {case.algorithm!r}; expected "
        "'oblivious' or 'threshold'"
    )


def _build_system(case: OracleCase):
    from repro.model.algorithms import ObliviousCoin, SingleThresholdRule
    from repro.model.system import DistributedSystem

    if case.algorithm == "oblivious":
        algs = [ObliviousCoin(case.parameter) for _ in range(case.n)]
    else:
        algs = [
            SingleThresholdRule(case.parameter) for _ in range(case.n)
        ]
    return DistributedSystem(algs, case.delta)


def _geometry_checks(case: OracleCase) -> Tuple[bool, bool]:
    """Route agreement and fast-path fidelity for the case's geometry.

    Uses the simplex/box pair underlying ``P(sum x_i <= delta)`` with
    unit boxes: ``sigma = (delta, ..., delta)``, ``pi = (1, ..., 1)``.
    """
    from repro.geometry.volume import (
        intersection_volume,
        intersection_volume_by_integration,
        intersection_volume_fast,
    )
    from repro.probability.uniform_sums import (
        sum_uniform_cdf,
        sum_uniform_cdf_fast,
    )

    sigma = [case.delta] * case.n
    pi = [Fraction(1)] * case.n
    exact = intersection_volume(sigma, pi)
    witness = intersection_volume_by_integration(sigma, pi)
    geometry_agree = exact == witness

    tolerance = FASTPATH_REL_TOL
    fast_volume = intersection_volume_fast(sigma, pi)
    ok_volume = abs(fast_volume - float(exact)) <= max(
        tolerance, tolerance * abs(float(exact))
    )
    exact_cdf = sum_uniform_cdf(case.delta, [1] * case.n)
    fast_cdf = sum_uniform_cdf_fast(float(case.delta), [1.0] * case.n)
    ok_cdf = abs(fast_cdf - float(exact_cdf)) <= max(
        tolerance, tolerance * abs(float(exact_cdf))
    )
    return geometry_agree, ok_volume and ok_cdf


def _case_z_score(
    estimate: float, analytic: float, trials: int
) -> float:
    """Standardised deviation of the MC estimate from the analytic value.

    ``z = (p_hat - p) / sqrt(p (1 - p) / trials)`` with the analytic
    *p* as the null; degenerate ``p in {0, 1}`` has zero variance, so
    any deviation at all is infinitely significant.
    """
    variance = analytic * (1.0 - analytic) / trials
    deviation = estimate - analytic
    if variance <= 0.0:
        return 0.0 if deviation == 0.0 else math.inf
    return deviation / math.sqrt(variance)


def run_cross_validation(
    cases: Sequence[OracleCase],
    trials: int = 20_000,
    seed: int = 0,
    workers: Optional[int] = None,
    z_threshold: float = 3.89,
    perturbation: float = 0.0,
    fault_tolerance=None,
) -> AgreementReport:
    """Run every case through the three routes and compare.

    *z_threshold* matches the repo-wide Wilson default (3.89, the
    ~=99.99% two-sided point): at 20 000 trials and a handful of cases,
    a false alarm is a once-in-many-thousands-of-runs event while a
    perturbation of a few percent is tens of standard errors away.

    *perturbation* is added to the analytic value before the Monte
    Carlo comparison -- the deliberate-bug injection used to prove the
    oracle can fail (see module docstring).  *workers* and
    *fault_tolerance* pass straight to
    :meth:`~repro.simulation.engine.MonteCarloEngine.estimate_winning_probability`.
    """
    from repro.baselines.exact_centralized import (
        centralized_feasibility_exact,
    )
    from repro.simulation.engine import MonteCarloEngine

    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    if not cases:
        raise ValidationError("need at least one oracle case")

    engine = MonteCarloEngine(seed=seed)
    reports: List[CaseReport] = []
    for index, case in enumerate(cases):
        report = CaseReport(case=case)

        with use_contracts(strict=False):
            analytic, witness = _analytic_routes(case)
            report.analytic = analytic
            report.witness = witness
            report.routes_agree = analytic == witness
            if not report.routes_agree:
                report.failures.append(
                    f"analytic routes disagree: {analytic} != {witness}"
                )

            if case.n <= 3:
                bound = centralized_feasibility_exact(case.n, case.delta)
                report.centralized_bound = bound
                report.centralized_ok = analytic <= bound
                if not report.centralized_ok:
                    report.failures.append(
                        f"analytic value {analytic} exceeds the "
                        f"centralized bound {bound}"
                    )

            if case.n <= GEOMETRY_WITNESS_MAX_N:
                geometry_agree, fastpath_ok = _geometry_checks(case)
                report.geometry_agree = geometry_agree
                report.fastpath_ok = fastpath_ok
                if not geometry_agree:
                    report.failures.append(
                        "Proposition 2.2 volume disagrees with the "
                        "integration witness"
                    )
                if not fastpath_ok:
                    report.failures.append(
                        "float fast path strayed outside its certified "
                        "tolerance"
                    )

            report.contracts_clean = violation_count() == 0
            if not report.contracts_clean:
                report.failures.append(
                    f"{violation_count()} contract violation(s) during "
                    "analytic evaluation"
                )

        compare_to = float(analytic) + perturbation
        summary = engine.estimate_winning_probability(
            _build_system(case),
            trials=trials,
            stream=f"oracle-case-{index}",
            z_score=z_threshold,
            workers=workers,
            fault_tolerance=fault_tolerance,
        )
        report.mc_estimate = summary.estimate
        report.mc_interval = summary.interval
        report.mc_trials = trials
        report.z_score = _case_z_score(
            summary.estimate, compare_to, trials
        )
        report.mc_covered = summary.covers(compare_to)
        if abs(report.z_score) > z_threshold:
            report.failures.append(
                f"Monte Carlo estimate {summary.estimate:.6f} is "
                f"{report.z_score:+.2f} standard errors from the "
                f"analytic value (threshold {z_threshold})"
            )
        elif not report.mc_covered:
            report.failures.append(
                f"Wilson interval {summary.interval} does not cover "
                f"the analytic value {compare_to:.6f}"
            )
        reports.append(report)

    return AgreementReport(
        cases=reports,
        trials=trials,
        seed=seed,
        z_threshold=z_threshold,
        perturbation=perturbation,
    )
