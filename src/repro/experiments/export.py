"""Machine-readable export of every experiment record.

``repro export --out results/`` writes the full reproduction record as
CSV (one file per experiment) plus a ``manifest.json`` with the paper
anchors, so downstream analyses don't have to re-run the exact
pipeline or scrape stdout.
"""

from __future__ import annotations

import csv
import json
from fractions import Fraction
from pathlib import Path
from typing import Dict, Sequence

from repro.experiments.figures import FigureSeries, figure1, figure2
from repro.experiments.tables import (
    CaseStudy,
    case_study,
    uniformity_table,
)

__all__ = ["export_all", "write_figure_csv", "write_uniformity_csv"]


def _as_float(value) -> float:
    return float(value)


def write_figure_csv(
    path: Path, series: Sequence[FigureSeries]
) -> None:
    """One row per (curve, beta) sample: n, delta, beta, probability."""
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["n", "delta", "beta", "winning_probability"])
        for s in series:
            for beta, value in zip(s.betas, s.values):
                writer.writerow(
                    [s.n, _as_float(s.delta), _as_float(beta), _as_float(value)]
                )


def write_uniformity_csv(
    path: Path, studies: Sequence[CaseStudy]
) -> None:
    """One row per n: the oblivious and threshold optima.

    ``alpha_star`` is the solved symmetric oblivious optimiser carried
    by each study (Theorem 4.3 predicts 1/2; it is derived, not
    hardcoded, so the CSV stays honest for any ``(n, delta)``)."""
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "n",
                "delta",
                "alpha_star",
                "p_oblivious",
                "beta_star",
                "p_threshold",
                "improvement",
            ]
        )
        for s in studies:
            writer.writerow(
                [
                    s.n,
                    _as_float(s.delta),
                    _as_float(s.oblivious_alpha),
                    _as_float(s.oblivious_value),
                    _as_float(s.optimum.beta),
                    _as_float(s.optimum.probability),
                    _as_float(s.improvement),
                ]
            )


def _manifest(case3: CaseStudy, case4: CaseStudy) -> Dict:
    return {
        "paper": {
            "title": (
                "Optimal, Distributed Decision-Making: "
                "The Case of No Communication"
            ),
            "authors": "Georgiades, Mavronicolas, Spirakis",
            "venue": "FCT 1999 (LNCS 1684)",
        },
        "anchors": {
            "n3_delta1": {
                "beta_star": _as_float(case3.optimum.beta),
                "beta_star_paper": 0.622,
                "p_star": _as_float(case3.optimum.probability),
                "p_star_paper": 0.545,
                "oblivious": _as_float(case3.oblivious_value),
            },
            "n4_delta_4_3": {
                "beta_star": _as_float(case4.optimum.beta),
                "beta_star_paper": 0.678,
                "p_star": _as_float(case4.optimum.probability),
                "oblivious": _as_float(case4.oblivious_value),
                "discrepancy_D2_oblivious_beats_threshold": bool(
                    case4.oblivious_value > case4.optimum.probability
                ),
            },
        },
        "files": {
            "figure1": "figure1.csv",
            "figure2": "figure2.csv",
            "uniformity": "uniformity.csv",
        },
    }


def export_all(
    out_dir,
    ns: Sequence[int] = (3, 4, 5),
    grid_size: int = 101,
    uniformity_ns: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
) -> Dict:
    """Write every artifact under *out_dir*; returns the manifest dict."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    write_figure_csv(out / "figure1.csv", figure1(ns=ns, grid_size=grid_size))
    write_figure_csv(out / "figure2.csv", figure2(ns=ns, grid_size=grid_size))
    write_uniformity_csv(
        out / "uniformity.csv",
        uniformity_table(ns=uniformity_ns, delta_of_n=lambda n: 1),
    )
    manifest = _manifest(
        case_study(3, 1), case_study(4, Fraction(4, 3))
    )
    with (out / "manifest.json").open("w") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest
