"""Piecewise polynomial functions with exact rational breakpoints.

Theorem 5.1's winning probability, as a function of the common threshold
``beta``, is polynomial on each interval between *breakpoints* -- the
points where one of the strict inclusion-exclusion conditions
``delta - i*beta > 0`` or ``k - delta - i*(1 - beta) > 0`` changes sign.
:class:`PiecewisePolynomial` represents exactly this object and provides
the operations the reproduction needs: exact evaluation, arithmetic,
differentiation piece-by-piece, and exact global maximisation (compare
all stationary points, breakpoints and endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro.symbolic.polynomial import Polynomial
from repro.symbolic.rational import RationalLike, as_fraction
from repro.symbolic.roots import real_roots

__all__ = ["Piece", "PiecewisePolynomial"]


@dataclass(frozen=True)
class Piece:
    """One polynomial piece valid on the closed interval ``[lower, upper]``.

    Adjacent pieces of a continuous piecewise function agree at the
    shared breakpoint, so representing the pieces as closed intervals is
    unambiguous for the functions this package builds (winning
    probabilities are continuous in the threshold).
    """

    lower: Fraction
    upper: Fraction
    polynomial: Polynomial

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"empty piece: [{self.lower}, {self.upper}]")

    def contains(self, point: Fraction) -> bool:
        """Whether *point* lies in this piece's closed interval."""
        return self.lower <= point <= self.upper

    def width(self) -> Fraction:
        """Length of the piece's interval."""
        return self.upper - self.lower


class PiecewisePolynomial:
    """A function that is polynomial on each of finitely many intervals.

    Pieces must be contiguous (each piece starts where the previous one
    ends) and are sorted on construction.  The function's domain is the
    closed interval from the first piece's lower bound to the last
    piece's upper bound.
    """

    def __init__(self, pieces: Sequence[Piece]):
        if not pieces:
            raise ValueError("a PiecewisePolynomial needs at least one piece")
        ordered = sorted(pieces, key=lambda p: (p.lower, p.upper))
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev.upper != nxt.lower:
                raise ValueError(
                    f"pieces are not contiguous: [{prev.lower}, {prev.upper}] "
                    f"then [{nxt.lower}, {nxt.upper}]"
                )
        self._pieces: Tuple[Piece, ...] = tuple(ordered)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_breakpoints(
        cls,
        breakpoints: Sequence[RationalLike],
        polynomials: Sequence[Polynomial],
    ) -> "PiecewisePolynomial":
        """Build from ``n+1`` breakpoints and ``n`` polynomials."""
        points = [as_fraction(b) for b in breakpoints]
        if len(points) != len(polynomials) + 1:
            raise ValueError(
                f"need len(breakpoints) == len(polynomials) + 1, got "
                f"{len(points)} and {len(polynomials)}"
            )
        pieces = [
            Piece(points[i], points[i + 1], polynomials[i])
            for i in range(len(polynomials))
        ]
        return cls(pieces)

    @classmethod
    def from_sampler(
        cls,
        builder: Callable[[Fraction], Polynomial],
        breakpoints: Sequence[RationalLike],
    ) -> "PiecewisePolynomial":
        """Build by asking *builder* for the polynomial valid around the
        midpoint of each consecutive breakpoint pair.

        This is how the winning-probability construction works: the
        inclusion-exclusion conditions are constant on each open
        interval, so evaluating the condition pattern at the midpoint
        determines the piece's polynomial exactly.
        """
        points = sorted({as_fraction(b) for b in breakpoints})
        if len(points) < 2:
            raise ValueError("need at least two distinct breakpoints")
        pieces = []
        for lo, hi in zip(points, points[1:]):
            mid = (lo + hi) / 2
            pieces.append(Piece(lo, hi, builder(mid)))
        return cls(pieces)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pieces(self) -> Tuple[Piece, ...]:
        return self._pieces

    @property
    def lower(self) -> Fraction:
        """Left end of the domain."""
        return self._pieces[0].lower

    @property
    def upper(self) -> Fraction:
        """Right end of the domain."""
        return self._pieces[-1].upper

    @property
    def breakpoints(self) -> List[Fraction]:
        """All breakpoints including the two domain endpoints."""
        return [p.lower for p in self._pieces] + [self.upper]

    def piece_at(self, point: RationalLike) -> Piece:
        """The piece containing *point* (the left piece at shared breakpoints)."""
        x = as_fraction(point)
        if not self.lower <= x <= self.upper:
            raise ValueError(f"{x} outside domain [{self.lower}, {self.upper}]")
        for piece in self._pieces:
            if x <= piece.upper:
                return piece
        return self._pieces[-1]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, point: RationalLike) -> Fraction:
        """Exact evaluation."""
        x = as_fraction(point)
        return self.piece_at(x).polynomial(x)

    def evaluate_float(self, point: float) -> float:
        """Float evaluation (for plotting grids)."""
        return float(self(as_fraction(point)))

    def sample(self, count: int) -> List[Tuple[Fraction, Fraction]]:
        """Evaluate on *count* evenly spaced points across the domain."""
        from repro.symbolic.rational import rational_range

        xs = rational_range(self.lower, self.upper, count)
        return [(x, self(x)) for x in xs]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map_pieces(
        self, transform: Callable[[Polynomial], Polynomial]
    ) -> "PiecewisePolynomial":
        """Apply *transform* to every piece's polynomial."""
        return PiecewisePolynomial(
            [Piece(p.lower, p.upper, transform(p.polynomial)) for p in self._pieces]
        )

    def derivative(self) -> "PiecewisePolynomial":
        """Piecewise derivative (defined piece-by-piece; breakpoint values
        follow the convention of :meth:`piece_at`)."""
        return self.map_pieces(lambda poly: poly.derivative())

    def simplify(self) -> "PiecewisePolynomial":
        """Merge adjacent pieces whose polynomials are identical."""
        merged: List[Piece] = []
        for piece in self._pieces:
            if merged and merged[-1].polynomial == piece.polynomial:
                merged[-1] = Piece(merged[-1].lower, piece.upper, piece.polynomial)
            else:
                merged.append(piece)
        return PiecewisePolynomial(merged)

    def _binary_op(
        self,
        other: "PiecewisePolynomial",
        op: Callable[[Polynomial, Polynomial], Polynomial],
    ) -> "PiecewisePolynomial":
        if (self.lower, self.upper) != (other.lower, other.upper):
            raise ValueError(
                f"domain mismatch: [{self.lower}, {self.upper}] vs "
                f"[{other.lower}, {other.upper}]"
            )
        points = sorted(set(self.breakpoints) | set(other.breakpoints))
        pieces = []
        for lo, hi in zip(points, points[1:]):
            mid = (lo + hi) / 2
            left = self.piece_at(mid).polynomial
            right = other.piece_at(mid).polynomial
            pieces.append(Piece(lo, hi, op(left, right)))
        return PiecewisePolynomial(pieces)

    def __add__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a + b)

    def __sub__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a - b)

    def __mul__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self._binary_op(other, lambda a, b: a * b)

    def scale(self, factor: RationalLike) -> "PiecewisePolynomial":
        """Multiply the whole function by a rational constant."""
        f = as_fraction(factor)
        return self.map_pieces(lambda poly: poly * f)

    # ------------------------------------------------------------------
    # Optimisation
    # ------------------------------------------------------------------
    def critical_points(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> List[Fraction]:
        """All candidate extrema: breakpoints plus interior stationary points.

        Stationary points are found exactly per piece with Sturm-based
        root isolation on the piece's derivative; irrational roots are
        refined to *tolerance*.
        """
        candidates = set(self.breakpoints)
        for piece in self._pieces:
            deriv = piece.polynomial.derivative()
            if deriv.is_zero() or deriv.is_constant():
                continue
            for root in real_roots(deriv, piece.lower, piece.upper, tolerance):
                if piece.lower <= root <= piece.upper:
                    candidates.add(root)
        return sorted(candidates)

    def maximize(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> Tuple[Fraction, Fraction]:
        """Return ``(argmax, max)`` over the whole domain.

        Ties break toward the smallest argmax, which keeps results
        deterministic.
        """
        best_x: Optional[Fraction] = None
        best_v: Optional[Fraction] = None
        for x in self.critical_points(tolerance):
            v = self(x)
            if best_v is None or v > best_v:
                best_x, best_v = x, v
        assert best_x is not None and best_v is not None
        return best_x, best_v

    def minimize(
        self, tolerance: RationalLike = Fraction(1, 10**12)
    ) -> Tuple[Fraction, Fraction]:
        """Return ``(argmin, min)`` over the whole domain."""
        negated = self.map_pieces(lambda poly: -poly)
        x, v = negated.maximize(tolerance)
        return x, -v

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"PiecewisePolynomial({len(self._pieces)} pieces on [{self.lower}, {self.upper}])"

    def pretty(self, variable: str = "x") -> str:
        """Multi-line rendering listing every piece."""
        lines = []
        for piece in self._pieces:
            lines.append(
                f"[{piece.lower}, {piece.upper}]: {piece.polynomial.pretty(variable)}"
            )
        return "\n".join(lines)
