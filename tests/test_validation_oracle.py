"""Tests for the cross-validation oracle and ``repro check``.

The acceptance property: the oracle passes on a healthy grid, and a
seeded, deliberately injected analytic perturbation makes ``repro
check`` exit with the dedicated integrity code (6) -- a validator that
cannot fail validates nothing.
"""

import json
from fractions import Fraction

import pytest

from repro.cli import EXIT_INTEGRITY_MISMATCH, main
from repro.errors import ValidationError
from repro.validation import (
    OracleCase,
    default_case_grid,
    run_cross_validation,
)

TRIALS = 4_000  # s.e. ~ 0.008: cheap, yet a 0.05 perturbation is ~ 6 s.e.


class TestCaseGrid:
    def test_default_grid_shape(self):
        cases = default_case_grid([2, 3], [Fraction(1), Fraction(4, 3)])
        assert len(cases) == 8  # 2 ns x 2 deltas x 2 algorithms
        oblivious = [c for c in cases if c.algorithm == "oblivious"]
        assert all(c.parameter == Fraction(1, 2) for c in oblivious)
        thresholds = [c for c in cases if c.algorithm == "threshold"]
        assert all(0 < c.parameter < 1 for c in thresholds)

    def test_grid_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            default_case_grid([0], [Fraction(1)])
        with pytest.raises(ValidationError):
            default_case_grid([2], [Fraction(0)])
        with pytest.raises(ValidationError):
            default_case_grid([2], [Fraction(1)], algorithms=["magic"])


class TestRunCrossValidation:
    def test_healthy_grid_passes(self):
        cases = default_case_grid([2, 3], [Fraction(1)])
        report = run_cross_validation(cases, trials=TRIALS, seed=0)
        assert report.passed
        for case_report in report.cases:
            assert case_report.routes_agree
            assert case_report.mc_covered
            assert case_report.contracts_clean
            assert abs(case_report.z_score) <= report.z_threshold
            # n <= 3 here, so both optional checks ran.
            assert case_report.centralized_ok is True
            assert case_report.geometry_agree is True
            assert case_report.fastpath_ok is True

    def test_perturbation_fails(self):
        cases = default_case_grid([2], [Fraction(1)])
        report = run_cross_validation(
            cases, trials=TRIALS, seed=0, perturbation=0.05
        )
        assert not report.passed
        for failed in report.failed_cases:
            assert any(
                "standard errors" in f or "does not cover" in f
                for f in failed.failures
            )

    def test_deterministic_for_fixed_seed(self):
        cases = default_case_grid([2], [Fraction(1)])
        a = run_cross_validation(cases, trials=TRIALS, seed=42)
        b = run_cross_validation(cases, trials=TRIALS, seed=42)
        assert a.to_dict() == b.to_dict()

    def test_sharded_mc_matches_serial(self):
        # The oracle reuses the sharded executor: same seed, same
        # estimate regardless of worker count.
        cases = [
            OracleCase(
                n=3,
                delta=Fraction(1),
                algorithm="oblivious",
                parameter=Fraction(1, 2),
            )
        ]
        sharded = run_cross_validation(
            cases, trials=TRIALS, seed=7, workers=2
        )
        again = run_cross_validation(
            cases, trials=TRIALS, seed=7, workers=1
        )
        assert (
            sharded.cases[0].mc_estimate == again.cases[0].mc_estimate
        )

    def test_report_serialisation(self):
        cases = default_case_grid([2], [Fraction(1)])
        report = run_cross_validation(cases, trials=TRIALS, seed=0)
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == 1
        assert payload["passed"] is True
        assert len(payload["cases"]) == len(cases)
        first = payload["cases"][0]
        assert Fraction(first["analytic"]) == report.cases[0].analytic
        assert first["case"]["algorithm"] in ("oblivious", "threshold")
        rendered = report.render()
        assert "PASSED" in rendered

    def test_rejects_empty_and_bad_trials(self):
        with pytest.raises(ValidationError):
            run_cross_validation([], trials=TRIALS)
        cases = default_case_grid([2], [Fraction(1)])
        with pytest.raises(ValidationError):
            run_cross_validation(cases, trials=0)


class TestCheckCommand:
    def test_check_passes(self, capsys):
        code = main(
            [
                "check",
                "--ns", "2", "3",
                "--deltas", "1",
                "--trials", str(TRIALS),
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASSED" in out

    def test_injected_error_exits_with_integrity_code(self, capsys):
        code = main(
            [
                "check",
                "--ns", "2",
                "--deltas", "1",
                "--algorithms", "oblivious",
                "--trials", str(TRIALS),
                "--seed", "0",
                "--inject-analytic-error", "0.05",
            ]
        )
        assert code == EXIT_INTEGRITY_MISMATCH
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "INTEGRITY CHECK FAILED" in captured.err

    def test_strict_mode_passes_on_healthy_grid(self, capsys):
        code = main(
            [
                "check",
                "--ns", "2",
                "--deltas", "1",
                "--trials", str(TRIALS),
                "--strict",
            ]
        )
        assert code == 0

    def test_report_out(self, tmp_path, capsys):
        report_path = tmp_path / "agreement.json"
        code = main(
            [
                "check",
                "--ns", "2",
                "--deltas", "1",
                "--trials", str(TRIALS),
                "--report-out", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["passed"] is True
        assert payload["trials"] == TRIALS

    def test_bad_argument_exits_2(self, capsys):
        code = main(
            ["check", "--ns", "0", "--deltas", "1", "--trials", "100"]
        )
        assert code == 2
        assert "invalid request" in capsys.readouterr().err

    def test_profile_reports_oracle_metrics(self, capsys):
        code = main(
            [
                "check",
                "--ns", "2",
                "--deltas", "1",
                "--trials", str(TRIALS),
                "--profile",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        # The fast-path counters surface in the instrumentation report.
        assert "fastpath.calls" in err
